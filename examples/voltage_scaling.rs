//! Table-1-style design-space exploration: run the synthetic radar kernel
//! with the memory module at full, half, and quarter frequency (§5.2's
//! restricted memory-access times), scaling its supply from 5 V down to
//! 2 V, and watch the energy fall while the allocator compensates with
//! registers.
//!
//! ```text
//! cargo run --example voltage_scaling
//! ```

use lemra::core::{allocate, AllocationProblem, AllocationReport};
use lemra::energy::{EnergyModel, VoltageSchedule};
use lemra::workloads::rsp::{rsp, RspConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let radar = rsp(&RspConfig::default());
    println!(
        "synthetic radar kernel: {} variables, max density {}",
        radar.lifetimes.len(),
        lemra::ir::DensityProfile::new(&radar.lifetimes).max()
    );

    let schedule = VoltageSchedule::paper(); // 5 V / 3.3 V / 2 V
    println!(
        "\n{:<6} {:>6} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "freq", "volts", "mem", "reg", "forced", "E", "aE"
    );
    let mut rows = Vec::new();
    for (label, c) in [("f", 1u32), ("f/2", 2), ("f/4", 4)] {
        let volts = schedule.voltage_for(c);
        let problem = AllocationProblem::new(radar.lifetimes.clone(), 16)
            .with_access_period(c)
            .with_energy(EnergyModel::default_16bit().with_memory_voltage(volts))
            .with_activity(radar.activity.clone());
        let allocation = allocate(&problem)?;
        let forced = allocation
            .segmentation()
            .iter()
            .filter(|(_, s)| s.forced_register)
            .count();
        let report = AllocationReport::new(&problem, &allocation);
        println!(
            "{:<6} {:>6.1} {:>8} {:>8} {:>8} {:>10.1} {:>10.1}",
            label,
            volts,
            report.mem_accesses(),
            report.reg_accesses(),
            forced,
            report.static_energy,
            report.activity_energy
        );
        rows.push(report);
    }

    println!(
        "\nenergy saving f -> f/4: {:.1}x static, {:.1}x activity (paper: 4.9x / 2.8x)",
        rows[0].static_energy / rows[2].static_energy,
        rows[0].activity_energy / rows[2].activity_energy
    );
    println!("(the slow memory costs nothing extra: the flow moves the affected");
    println!(" variables into registers — \"no expense to performance or cost\", §7)");
    Ok(())
}
