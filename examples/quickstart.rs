//! Quickstart: describe variable lifetimes, allocate, inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lemra::core::{allocate, AllocationProblem, AllocationReport, Placement};
use lemra::ir::{LifetimeTable, VarId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six variables over an 8-step schedule, as (def, reads, live-out).
    // This is the paper's Problem 1 input: an already-scheduled basic block.
    let names = ["acc", "coef", "sample", "prod", "sum", "out"];
    let lifetimes = LifetimeTable::from_intervals(
        8,
        vec![
            (1, vec![4, 7], false), // acc: read twice -> split lifetime
            (1, vec![3], false),    // coef
            (2, vec![3], false),    // sample
            (3, vec![4], false),    // prod
            (4, vec![7], false),    // sum
            (7, vec![], true),      // out: read by the next block
        ],
    )?;

    // Two registers; defaults: static energy model, §5.1 region graph.
    let problem = AllocationProblem::new(lifetimes, 2);
    let allocation = allocate(&problem)?;
    lemra::core::validate(&problem, &allocation)?;

    println!("placements (by segment):");
    for (id, seg) in allocation.segmentation().iter() {
        let place = match allocation.placement(id) {
            Placement::Register(r) => format!("register r{r}"),
            Placement::Memory => format!(
                "memory @{}",
                allocation
                    .memory_address(seg.var)
                    .expect("memory segments have addresses")
            ),
        };
        println!(
            "  {:<7} [{} .. {}]  -> {place}",
            names[seg.var.index()],
            seg.start_step.0,
            seg.end_step.0,
        );
    }

    let report = AllocationReport::new(&problem, &allocation);
    println!("\nregisters used: {}", report.registers_used);
    println!("memory accesses: {}", report.mem_accesses());
    println!("storage locations: {}", report.storage_locations);
    println!("static energy: {:.2} units", report.static_energy);

    // The all-in-memory baseline for comparison:
    let baseline = lemra::core::baseline_energy(&problem).as_units();
    println!(
        "all-in-memory baseline: {baseline:.2} units ({:.2}x worse)",
        baseline / report.static_energy
    );

    // `acc` is read at steps 4 and 7 — check where each segment went.
    let acc_segments = allocation.segmentation().segments_of(VarId(0));
    println!("\n`acc` was split into {} segments", acc_segments.len());
    Ok(())
}
