//! The whole methodology (§5) on a two-block program: allocate a chain of
//! basic blocks with boundary threading, lower the result to explicit
//! load/store instructions, tier the memory residents between on-chip and
//! off-chip storage, render the lifetime diagram, and finally *execute* the
//! allocation bit-by-bit on the storage simulator to confirm the analytic
//! numbers.
//!
//! ```text
//! cargo run --example full_pipeline
//! ```

use lemra::core::{
    allocate_chain, assign_memory_tiers, render_allocation, storage_plan, AllocationProblem,
    BlockChain, OffchipModel,
};
use lemra::ir::{LifetimeTable, VarId};
use lemra::simulator::simulate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Block 0: a small producer whose results `sum`, `max` feed block 1.
    let block0 = LifetimeTable::from_intervals(
        6,
        vec![
            (1, vec![3], false), // x
            (2, vec![3], false), // y
            (3, vec![5], true),  // sum (live-out, linked)
            (4, vec![5], true),  // max (live-out, linked)
            (5, vec![6], false), // t
        ],
    )?;
    // Block 1: consumes sum (its v0) and max (its v1), produces output.
    let block1 = LifetimeTable::from_intervals(
        7,
        vec![
            (1, vec![2, 5], false), // sum'
            (1, vec![4], false),    // max'
            (2, vec![4], false),    // a
            (4, vec![6], false),    // b
            (5, vec![7], true),     // out
        ],
    )?;

    let chain = BlockChain {
        blocks: vec![
            AllocationProblem::new(block0, 2),
            AllocationProblem::new(block1, 2),
        ],
        links: vec![vec![(VarId(2), VarId(0)), (VarId(3), VarId(1))]],
    };
    let result = allocate_chain(&chain)?;
    println!(
        "chain of {} blocks: {:.1} energy units, {} memory accesses total\n",
        result.allocations.len(),
        result.total_static_energy(),
        result.total_mem_accesses()
    );

    let names0 = ["x", "y", "sum", "max", "t"];
    let names1 = ["sum'", "max'", "a", "b", "out"];
    for (i, names) in [(0, &names0[..]), (1, &names1[..])] {
        println!("block {i}:");
        println!(
            "{}",
            render_allocation(&result.problems[i], &result.allocations[i], names)
        );
        println!(
            "  carried in registers: {:?}, in memory: {:?}",
            result.problems[i].carried_in_register, result.problems[i].carried_in_memory
        );

        // Lower to explicit storage instructions.
        let plan = storage_plan(&result.problems[i], &result.allocations[i]);
        if plan.instrs.is_empty() {
            println!("  no loads or stores needed");
        }
        for instr in &plan.instrs {
            println!("  {instr}");
        }

        // Execute on the simulator and cross-check one headline number.
        let run = simulate(&result.problems[i], &result.allocations[i])?;
        println!(
            "  simulator: {} mem accesses (analytic {}), {} reads verified\n",
            run.mem_reads + run.mem_writes,
            result.reports[i].mem_accesses(),
            run.reads_verified
        );
    }

    // Tier block 1's memory residents across on-chip/off-chip storage.
    let tiers = assign_memory_tiers(
        &result.problems[1],
        &result.allocations[1],
        1,
        &OffchipModel::default(),
    )?;
    println!(
        "block 1 tiering with 1 on-chip location: {} on-chip, {} off-chip, saves {:.1} units vs all-off-chip",
        tiers.onchip.len(),
        tiers.offchip.len(),
        tiers.energy_saved()
    );
    Ok(())
}
