//! Split lifetimes, forced segments, port constraints and the second-stage
//! memory re-allocation — the §5.2/§7 machinery on one small example.
//!
//! ```text
//! cargo run --example spill_and_split
//! ```

use lemra::core::{
    allocate, allocate_with_ports, reallocate_memory, AllocationProblem, AllocationReport,
    Placement, PortLimits,
};
use lemra::ir::{ActivitySource, LifetimeTable, VarId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five variables; `x` is read three times (split lifetime); memory only
    // reachable every 3rd step (steps 1, 4, 7, 10) — Figure 1c territory.
    let lifetimes = LifetimeTable::from_intervals(
        10,
        vec![
            (1, vec![4, 7, 10], false), // x: three reads
            (2, vec![3], false),        // t1: lives entirely off-grid -> forced
            (2, vec![6], false),        // t2
            (4, vec![8], false),        // y
            (5, vec![9], false),        // z
        ],
    )?;
    let names = ["x", "t1", "t2", "y", "z"];

    let problem = AllocationProblem::new(lifetimes, 2)
        .with_access_period(3)
        .with_activity(ActivitySource::Uniform { hamming: 6.0 });
    let allocation = allocate(&problem)?;

    println!("segments under a period-3 memory (grid: steps 1, 4, 7, 10):");
    for (id, seg) in allocation.segmentation().iter() {
        println!(
            "  {:<3} segment {} [{:>2} .. {:>2}] {}-> {:?}",
            names[seg.var.index()],
            seg.index,
            seg.start_step.0,
            seg.end_step.0,
            if seg.forced_register { "FORCED " } else { "" },
            allocation.placement(id),
        );
    }

    let report = AllocationReport::new(&problem, &allocation);
    println!(
        "\nmem accesses {}, reg accesses {}, peak ports {}r/{}w",
        report.mem_accesses(),
        report.reg_accesses(),
        report.max_reads_per_step,
        report.max_writes_per_step
    );

    // Constrain the memory to a single read and write port (§7).
    match allocate_with_ports(&problem, PortLimits::single()) {
        Ok((ported, iterations)) => {
            let pr = AllocationReport::new(&problem, &ported);
            println!(
                "with 1r/1w ports ({} solver iterations): peak {}r/{}w, energy {:.1} -> {:.1}",
                iterations,
                pr.max_reads_per_step,
                pr.max_writes_per_step,
                report.static_energy,
                pr.static_energy
            );
        }
        Err(e) => println!("single-port memory not achievable here: {e}"),
    }

    // Second-stage memory re-allocation (activity-based address assignment).
    let realloc = reallocate_memory(&problem, &allocation)?;
    println!(
        "\nmemory re-allocation: {} locations, switching {:.2} (left-edge gave {:.2})",
        realloc.locations, realloc.switching, report.memory_switching
    );
    for (v, name) in names.iter().enumerate() {
        if let Some(addr) = realloc.address_of.get(&VarId(v as u32)) {
            println!("  {name} -> address {addr}");
        }
    }

    // Where did x's three segments go?
    let seg = allocation.segmentation();
    let x_places: Vec<Placement> = (0..seg.segments_of(VarId(0)).len())
        .map(|i| allocation.placement(seg.id_of(VarId(0), i)))
        .collect();
    println!("\nx's split lifetime travels: {x_places:?}");
    Ok(())
}
