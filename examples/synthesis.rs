//! The §5 methodology end-to-end with one call: a two-task DSP program
//! (windowing then accumulation) goes through data regeneration, list
//! scheduling, chained flow allocation, memory re-allocation and storage
//! code generation.
//!
//! ```text
//! cargo run --example synthesis
//! ```

use lemra::core::{render_allocation, synthesize, SynthesisConfig};
use lemra::ir::{BasicBlock, OpKind, ResourceSet};

fn window_task() -> Result<BasicBlock, lemra::ir::IrError> {
    let mut bb = BasicBlock::new("window");
    let mut sums = Vec::new();
    for i in 0..4 {
        let x = bb.input(format!("x{i}"));
        let w = bb.input(format!("w{i}"));
        sums.push(bb.op(OpKind::Mul, &[x, w], format!("wx{i}"))?);
    }
    let s0 = bb.op(OpKind::Add, &[sums[0], sums[1]], "s0")?;
    let s1 = bb.op(OpKind::Add, &[sums[2], sums[3]], "s1")?;
    bb.output(s0)?;
    bb.output(s1)?;
    Ok(bb)
}

fn accumulate_task() -> Result<BasicBlock, lemra::ir::IrError> {
    let mut bb = BasicBlock::new("accumulate");
    let s0 = bb.input("s0_in");
    let s1 = bb.input("s1_in");
    let acc = bb.input("acc_state");
    let sum = bb.op(OpKind::Add, &[s0, s1], "sum")?;
    let next = bb.op(OpKind::Add, &[acc, sum], "next")?;
    let clipped = bb.op(OpKind::Cmp, &[next, acc], "clipped")?;
    bb.output(next)?;
    bb.output(clipped)?;
    Ok(bb)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let blocks = vec![window_task()?, accumulate_task()?];
    let links = vec![vec![
        ("s0".to_owned(), "s0_in".to_owned()),
        ("s1".to_owned(), "s1_in".to_owned()),
    ]];
    let config = SynthesisConfig {
        registers: 3,
        resources: ResourceSet::new(2, 1),
        ..SynthesisConfig::default()
    };
    let result = synthesize(&blocks, &links, &[], &config)?;

    println!(
        "synthesised {} tasks: {:.1} energy units, {} memory accesses, \
         {} values regenerated\n",
        result.blocks.len(),
        result.total_static_energy(),
        result.total_mem_accesses(),
        result.regenerated.iter().sum::<usize>()
    );

    for (i, block) in result.blocks.iter().enumerate() {
        let names: Vec<&str> = block.vars().map(|(_, v)| v.name.as_str()).collect();
        println!(
            "task `{}` ({} steps):",
            block.name(),
            result.schedule_lengths[i]
        );
        println!(
            "{}",
            render_allocation(
                &result.chain.problems[i],
                &result.chain.allocations[i],
                &names
            )
        );
        for instr in &result.plans[i].instrs {
            println!("  {instr}");
        }
        println!(
            "  memory addressing: {} locations, switching {:.2}\n",
            result.reallocations[i].locations, result.reallocations[i].switching
        );
    }
    Ok(())
}
