//! A realistic flow: build a 12-tap FIR filter data-flow graph, schedule it
//! under resource constraints, derive lifetimes, and compare the paper's
//! simultaneous allocator against the prior-work baselines.
//!
//! ```text
//! cargo run --example fir_filter
//! ```

use lemra::baselines::{color_with_spills, left_edge, two_phase};
use lemra::core::{allocate, AllocationProblem, AllocationReport};
use lemra::energy::RegisterEnergyKind;
use lemra::ir::{list_schedule, LifetimeTable, ResourceSet};
use lemra::workloads::{dsp, random::random_patterns};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 12-tap FIR on a data path with 2 ALUs and 1 multiplier.
    let block = dsp::fir(12)?;
    let schedule = list_schedule(&block, ResourceSet::new(2, 1))?;
    println!(
        "fir12: {} operations scheduled into {} control steps",
        block.op_count(),
        schedule.length()
    );

    let lifetimes = LifetimeTable::from_schedule(&block, &schedule)?;
    let density = lemra::ir::DensityProfile::new(&lifetimes).max();
    println!(
        "{} variables, max lifetime density {density}",
        lifetimes.len()
    );

    // A register file half the size of the peak pressure.
    let registers = density / 2;
    let n = lifetimes.len();
    let problem = AllocationProblem::new(lifetimes, registers)
        .with_activity(random_patterns(n, 2024))
        .with_register_energy(RegisterEnergyKind::Activity);

    let ours = AllocationReport::new(&problem, &allocate(&problem)?);
    let rows = [
        ("simultaneous (this paper)", ours.clone()),
        (
            "two-phase [Chang-Pedram 95]",
            AllocationReport::new(&problem, &two_phase(&problem)?.allocation),
        ),
        (
            "graph coloring [Chaitin 82]",
            AllocationReport::new(&problem, &color_with_spills(&problem)?.allocation),
        ),
        (
            "left-edge [HLS classic]",
            AllocationReport::new(&problem, &left_edge(&problem)?.allocation),
        ),
    ];

    println!(
        "\n{:<28} {:>5} {:>5} {:>9} {:>9}",
        "allocator", "mem", "reg", "E", "aE"
    );
    for (name, r) in &rows {
        println!(
            "{:<28} {:>5} {:>5} {:>9.1} {:>9.1}",
            name,
            r.mem_accesses(),
            r.reg_accesses(),
            r.static_energy,
            r.activity_energy
        );
    }
    println!(
        "\nsimultaneous saves {:.1}% energy vs the best baseline",
        100.0
            * (1.0
                - ours.activity_energy
                    / rows[1..]
                        .iter()
                        .map(|(_, r)| r.activity_energy)
                        .fold(f64::INFINITY, f64::min))
    );
    Ok(())
}
