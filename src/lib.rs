//! # lemra — Low Energy Memory and Register Allocation
//!
//! A from-scratch Rust reproduction of **C. H. Gebotys, “Low Energy Memory
//! and Register Allocation Using Network Flow”, DAC 1997**: simultaneous
//! partitioning of data variables between an on-chip register file and
//! memory, combined with register allocation, solved *globally optimally in
//! polynomial time* as a minimum-cost network-flow problem.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`netflow`] — min-cost flow solvers (lower bounds, negative costs);
//! * [`ir`] — scheduled basic blocks, lifetimes, density analysis;
//! * [`energy`] — static/activity energy models and voltage scaling;
//! * [`core`] — the allocator itself (§5 of the paper);
//! * [`baselines`] — Chang–Pedram two-phase, graph coloring, left-edge;
//! * [`workloads`] — the paper's figures, DSP kernels, the synthetic RSP
//!   trace, random generators;
//! * [`simulator`] — a bit-true storage-subsystem simulator that executes
//!   allocations and independently validates the analytic reports.
//!
//! # Quickstart
//!
//! ```
//! use lemra::core::{allocate, AllocationProblem, AllocationReport};
//! use lemra::ir::LifetimeTable;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Variables as (definition step, read steps, live-out) triples.
//! let lifetimes = LifetimeTable::from_intervals(
//!     8,
//!     vec![
//!         (1, vec![3], false),
//!         (2, vec![5, 8], false),
//!         (3, vec![6], false),
//!         (5, vec![8], true),
//!     ],
//! )?;
//! let problem = AllocationProblem::new(lifetimes, 2);
//! let allocation = allocate(&problem)?;
//! let report = AllocationReport::new(&problem, &allocation);
//! println!(
//!     "memory accesses: {}, energy: {:.1}",
//!     report.mem_accesses(),
//!     report.static_energy
//! );
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench/src/bin/repro.rs`
//! for the scripts regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lemra_baselines as baselines;
pub use lemra_core as core;
pub use lemra_energy as energy;
pub use lemra_ir as ir;
pub use lemra_netflow as netflow;
pub use lemra_simulator as simulator;
pub use lemra_workloads as workloads;
