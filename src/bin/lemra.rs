//! Command-line front end: allocate a lifetime table written in the text
//! format of [`lemra::ir::parse_block_spec`].
//!
//! ```text
//! lemra <file.lt> [--registers N] [--period C] [--all-pairs]
//!                 [--activity-model] [--backend B] [--timings]
//!                 [--codegen] [--simulate] [--json]
//! ```
//!
//! With `-` as the file, the spec is read from standard input. `--backend`
//! selects the min-cost-flow solver (`ssp`, `scaling`, `cycle`, `simplex`,
//! `auto`; also settable via `LEMRA_BACKEND`); `--timings` prints per-stage
//! pipeline timings to stderr.

use lemra::core::{
    allocate, render_allocation, storage_plan, AllocationProblem, AllocationReport, GraphStyle,
};
use lemra::energy::RegisterEnergyKind;
use lemra::ir::parse_block_spec;
use lemra::netflow::LemraConfig;
use lemra::simulator::simulate;
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "usage: lemra <file.lt | -> [--registers N] [--period C] \
[--all-pairs] [--activity-model] [--backend ssp|scaling|cycle|simplex|auto] \
[--timings] [--codegen] [--simulate]";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("lemra: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<String> = None;
    let mut registers = 2u32;
    let mut period = 1u32;
    let mut style = GraphStyle::Regions;
    let mut kind = RegisterEnergyKind::Static;
    let mut codegen = false;
    let mut run_sim = false;
    let mut config = LemraConfig::from_env().map_err(|e| e.to_string())?;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--registers" | "-r" => {
                registers = next_num(&mut it, arg)?;
            }
            "--period" | "-p" => {
                period = next_num(&mut it, arg)?;
            }
            "--all-pairs" => style = GraphStyle::AllPairs,
            "--activity-model" => kind = RegisterEnergyKind::Activity,
            "--backend" => {
                let name = it
                    .next()
                    .ok_or_else(|| "--backend needs a value".to_owned())?;
                config.backend = name
                    .parse()
                    .map_err(|_| format!("unknown backend `{name}`\n{USAGE}"))?;
            }
            "--timings" => config.timings = true,
            "--codegen" => codegen = true,
            "--simulate" => run_sim = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other if (other == "-" || !other.starts_with('-')) && file.is_none() => {
                file = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let timings = config.timings;
    config.install();
    let file = file.ok_or_else(|| format!("no input file\n{USAGE}"))?;
    let input = if file == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&file).map_err(|e| format!("reading {file}: {e}"))?
    };

    let spec = parse_block_spec(&input).map_err(|e| format!("{file}: {e}"))?;
    let names: Vec<&str> = spec.names.iter().map(String::as_str).collect();
    let problem = AllocationProblem::new(spec.table, registers)
        .with_access_period(period)
        .with_style(style)
        .with_register_energy(kind);
    let allocation = allocate(&problem).map_err(|e| e.to_string())?;
    lemra::core::validate(&problem, &allocation).map_err(|e| e.to_string())?;

    print!("{}", render_allocation(&problem, &allocation, &names));
    let report = AllocationReport::new(&problem, &allocation);
    println!(
        "\nregisters {} / {}   memory accesses {}   storage locations {}",
        report.registers_used,
        registers,
        report.mem_accesses(),
        report.storage_locations
    );
    println!(
        "energy: {:.2} static, {:.2} activity (all-memory baseline {:.2})",
        report.static_energy,
        report.activity_energy,
        lemra::core::baseline_energy(&problem).as_units()
    );

    if codegen {
        let plan = storage_plan(&problem, &allocation);
        println!("\nstorage instructions:");
        if plan.instrs.is_empty() {
            println!("  (none)");
        }
        for instr in &plan.instrs {
            println!("  {instr}");
        }
    }
    if run_sim {
        let sim = simulate(&problem, &allocation).map_err(|e| e.to_string())?;
        println!(
            "\nsimulated: {} mem accesses, {} reg accesses, {} reads verified OK",
            sim.mem_reads + sim.mem_writes,
            sim.reg_reads + sim.reg_writes,
            sim.reads_verified
        );
    }
    if timings {
        let stats = lemra::core::pipeline_stats();
        eprintln!("-- pipeline stage timings --");
        for stage in lemra::core::Stage::ALL {
            let t = stats.stage(stage);
            eprintln!(
                "  {:<10} {:>4} runs {:>10.3} ms {:>10.1} peak KiB",
                stage.name(),
                t.runs,
                t.nanos as f64 / 1e6,
                t.bytes as f64 / 1024.0
            );
        }
        eprintln!(
            "  solves: {} warm, {} cold; {} dijkstra rounds, {} units pushed, {} incidents",
            stats.warm_solves,
            stats.cold_solves,
            stats.solver.dijkstra_rounds,
            stats.solver.pushed_units,
            stats.solver.incidents
        );
    }
    Ok(())
}

fn next_num<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<u32, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag} needs a number"))
}
