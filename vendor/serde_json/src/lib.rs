//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: [`to_string`] and [`to_string_pretty`] over the offline serde
//! stand-in's JSON-writing `Serialize` trait. Deserialization is not
//! provided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Serialization error. The offline writer is infallible; the type exists
/// so call sites keep serde_json's `Result` signature.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` as an indented JSON string (two spaces, like
/// serde_json's default pretty printer).
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indents compact JSON produced by the stand-in writer.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                if matches!(chars.peek(), Some('}') | Some(']')) {
                    // Keep empty containers on one line.
                    out.push(chars.next().expect("peeked"));
                } else {
                    indent += 1;
                    newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(to_string(&v).unwrap(), "[[1,2],[3,4]]");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("[\n  [\n    1,\n    2\n  ],"), "{pretty}");
    }

    #[test]
    fn strings_with_structural_chars_survive_prettify() {
        let s = "a{,}:\"[]".to_string();
        let pretty = to_string_pretty(&s).unwrap();
        assert_eq!(pretty, "\"a{,}:\\\"[]\"");
    }
}
