//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container cannot reach the crates-io registry, so the workspace
//! patches `criterion` to this crate. It implements the API subset the
//! `lemra-bench` benchmarks use ([`Criterion::bench_function`], benchmark
//! groups with [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`],
//! [`Throughput`], [`criterion_group!`]/[`criterion_main!`]) with a simple
//! wall-clock measurement loop: a warm-up to calibrate the per-iteration
//! time, then fixed-size batches whose per-iteration median is reported.
//!
//! Output goes to stdout, one line per benchmark, and — when
//! `LEMRA_CRITERION_OUT` names a file — as JSON lines
//! `{"id": ..., "median_ns": ..., "samples": [...]}` for tooling (the
//! repository's `BENCH_solver.json` is assembled from these).
//!
//! CLI: a single positional argument filters benchmarks by substring;
//! `--test` (passed by `cargo test` when it runs `harness = false` bench
//! targets) runs every closure exactly once so test runs stay fast; other
//! flags cargo passes (`--bench`, `--quiet`, ...) are accepted and ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Measurement settings plus the run's collected results.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    sample_count: usize,
    target_batch: Duration,
    results: Vec<BenchResult>,
}

/// One benchmark's measurements.
#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    median_ns: f64,
    samples_ns: Vec<f64>,
    throughput: Option<Throughput>,
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiples.
    BytesDecimal(u64),
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Self {
            filter,
            test_mode,
            sample_count: 11,
            target_batch: Duration::from_millis(25),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single closure under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_owned(), None, f);
        self
    }

    fn run_one<F>(&mut self, id: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: if self.test_mode {
                Mode::Once
            } else {
                Mode::Measure {
                    sample_count: self.sample_count,
                    target_batch: self.target_batch,
                }
            },
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{id}: ok (test mode)");
            return;
        }
        let mut samples = bencher.samples_ns;
        samples.sort_by(f64::total_cmp);
        let median_ns = if samples.is_empty() {
            0.0
        } else {
            samples[samples.len() / 2]
        };
        let mut line = format!("{id:<48} median {}", format_ns(median_ns));
        if let Some(tp) = throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (n, "B/s"),
            };
            if median_ns > 0.0 {
                let rate = count as f64 / (median_ns * 1e-9);
                let _ = write!(line, "  ({rate:.3e} {unit})");
            }
        }
        println!("{line}");
        self.results.push(BenchResult {
            id,
            median_ns,
            samples_ns: samples,
            throughput,
        });
    }

    /// Writes collected results as JSON lines to `LEMRA_CRITERION_OUT`
    /// (append), if set. Called by [`criterion_main!`].
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("LEMRA_CRITERION_OUT") else {
            return;
        };
        let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            eprintln!("criterion shim: cannot open {path}");
            return;
        };
        for r in &self.results {
            let samples: Vec<String> = r.samples_ns.iter().map(|s| format!("{s:.1}")).collect();
            let throughput = match r.throughput {
                Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
                Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                    format!(",\"bytes\":{n}")
                }
                None => String::new(),
            };
            let _ = writeln!(
                file,
                "{{\"id\":\"{}\",\"median_ns\":{:.1},\"samples_ns\":[{}]{}}}",
                r.id.replace('"', "'"),
                r.median_ns,
                samples.join(","),
                throughput
            );
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim keeps its own timing budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = id.into().full_id(&self.name);
        let throughput = self.throughput;
        self.criterion.run_one(full, throughput, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into().full_id(&self.name);
        let throughput = self.throughput;
        self.criterion.run_one(full, throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_id(&self, group: &str) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{group}/{f}/{p}"),
            (Some(f), None) => format!("{group}/{f}"),
            (None, Some(p)) => format!("{group}/{p}"),
            (None, None) => group.to_owned(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        Self {
            function: Some(function.to_owned()),
            parameter: None,
        }
    }
}

enum Mode {
    Once,
    Measure {
        sample_count: usize,
        target_batch: Duration,
    },
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    mode: Mode,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, keeping its return value alive via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Once => {
                black_box(f());
            }
            Mode::Measure {
                sample_count,
                target_batch,
            } => {
                // Warm-up and calibration: run until the budget is spent.
                let calib_start = Instant::now();
                let mut calib_iters = 0u64;
                while calib_start.elapsed() < target_batch {
                    black_box(f());
                    calib_iters += 1;
                }
                let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
                let batch = ((target_batch.as_secs_f64() / per_iter) as u64).max(1);
                self.samples_ns.clear();
                for _ in 0..sample_count {
                    let start = Instant::now();
                    for _ in 0..batch {
                        black_box(f());
                    }
                    let elapsed = start.elapsed().as_secs_f64();
                    self.samples_ns.push(elapsed * 1e9 / batch as f64);
                }
            }
        }
    }
}

/// Opaque value barrier, re-exported for closures that want it.
pub use std::hint::black_box;

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a runner function over one or more benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.finalize();
        }
    };
}

/// Declares `main` over one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose() {
        assert_eq!(
            BenchmarkId::new("ssp", 128).full_id("mincost"),
            "mincost/ssp/128"
        );
        assert_eq!(BenchmarkId::from_parameter(512).full_id("g"), "g/512");
        assert_eq!(BenchmarkId::from("f").full_id("g"), "g/f");
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            mode: Mode::Measure {
                sample_count: 3,
                target_batch: Duration::from_micros(200),
            },
            samples_ns: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(black_box(1));
        });
        assert_eq!(b.samples_ns.len(), 3);
        assert!(b.samples_ns.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
