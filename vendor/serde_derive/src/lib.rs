//! `#[derive(Serialize)]` for the offline serde stand-in.
//!
//! Supports the shapes the workspace actually derives on: plain
//! (non-generic) structs with named fields. The macro is written against
//! `proc_macro` directly — `syn`/`quote` are unavailable offline — so it
//! walks the token stream by hand: find `struct <Name>`, take the brace
//! group, and collect field identifiers (the ident preceding each `:` at
//! angle-bracket depth zero).

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the offline stand-in's JSON trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter().peekable();

    // Skip attributes and visibility until the `struct` keyword.
    let mut name = None;
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let word = id.to_string();
            if word == "struct" {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("expected struct name, found {other:?}"),
                }
                break;
            }
            if word == "enum" || word == "union" {
                panic!("offline serde derive supports plain structs only");
            }
        }
    }
    let name = name.expect("derive input contains a struct");

    // The next brace group holds the named fields. Tuple structs (a paren
    // group ending in `;`) and generics are unsupported offline.
    let mut fields = Vec::new();
    for tt in iter {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("offline serde derive does not support generic structs")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                fields = field_names(g.stream());
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("offline serde derive does not support tuple structs")
            }
            _ => {}
        }
    }

    let mut body = String::new();
    for (i, field) in fields.iter().enumerate() {
        body.push_str(&format!(
            "::serde::write_field_key(out, \"{field}\", {first});\n\
             ::serde::Serialize::serialize_json(&self.{field}, out);\n",
            first = i == 0,
        ));
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                 out.push('{{');\n\
                 {body}\
                 out.push('}}');\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Collects field identifiers: the token immediately before each `:` that
/// sits at angle-bracket depth zero and starts a field (i.e. follows a `,`
/// boundary, attributes and visibility skipped).
fn field_names(fields: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut angle_depth = 0i32;
    let mut prev_ident: Option<String> = None;
    let mut expecting_name = true;
    let mut tokens = fields.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    expecting_name = true;
                    prev_ident = None;
                }
                ':' if angle_depth == 0 && expecting_name => {
                    // `::` (paths in attributes/visibility) is two joint
                    // puncts; a field's colon stands alone.
                    let double = matches!(
                        tokens.peek(),
                        Some(TokenTree::Punct(q)) if q.as_char() == ':'
                    );
                    if double {
                        tokens.next();
                    } else if let Some(name) = prev_ident.take() {
                        names.push(name);
                        expecting_name = false;
                    }
                }
                _ => {}
            },
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word != "pub" {
                    prev_ident = Some(word);
                }
            }
            // Attribute bodies `#[...]` and `pub(...)` scopes.
            TokenTree::Group(_) | TokenTree::Literal(_) => {}
        }
    }
    names
}
