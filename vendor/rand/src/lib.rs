//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no access to the crates-io registry, so the
//! workspace patches `rand` to this crate (see `[patch.crates-io]` in the
//! workspace manifest). It implements exactly the 0.8-era API surface the
//! workspace uses — [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`], [`Rng::gen`] and [`Rng::gen_bool`] — with the same
//! generator family as upstream (`SmallRng` is xoshiro256++ seeded via
//! SplitMix64 on 64-bit targets).
//!
//! Streams are deterministic per seed but not guaranteed bit-identical to
//! upstream `rand` (the integer-range sampling differs); everything in this
//! repository that consumes randomness asserts *properties*, not exact
//! sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of `T` from its full standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Constructing generators from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution (`rand::distributions::Standard`).
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sampling of `[0, span)` by rejection on the widening multiply.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's method with the rejection step, so the result is exactly
    // uniform (the naive multiply-shift alone is biased for large spans).
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types [`Rng::gen_range`] can sample uniformly, mirroring
/// `rand::distributions::uniform::SampleUniform`.
///
/// The single blanket [`SampleRange`] impl below (rather than one impl per
/// integer type) is what lets literals like `gen_range(0..100) < some_u32`
/// infer their type from context, exactly as with upstream rand.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The small, fast generator — xoshiro256++ like upstream's 64-bit
    /// `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream does for integer seeds.
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&y));
            let z = rng.gen_range(5usize..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
