/root/repo/vendor/proptest/target/debug/deps/proptest-e0a0b2615dccba7c.d: src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/libproptest-e0a0b2615dccba7c.rlib: src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/libproptest-e0a0b2615dccba7c.rmeta: src/lib.rs

src/lib.rs:
