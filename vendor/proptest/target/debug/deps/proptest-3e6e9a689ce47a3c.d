/root/repo/vendor/proptest/target/debug/deps/proptest-3e6e9a689ce47a3c.d: src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/proptest-3e6e9a689ce47a3c: src/lib.rs

src/lib.rs:
