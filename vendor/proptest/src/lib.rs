//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container cannot reach the crates-io registry, so the workspace
//! patches `proptest` to this crate. It implements the subset the
//! repository's property tests use — the [`proptest!`] macro, [`Strategy`]
//! with [`Strategy::prop_map`]/[`Strategy::prop_flat_map`], integer-range and
//! tuple strategies, [`Just`], [`any`], [`collection::vec`],
//! [`collection::btree_set`] and [`ProptestConfig::with_cases`] — as plain
//! seeded random sampling.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! sampled inputs reported by the assertion itself), and case generation is
//! deterministic per (test, case index) rather than persisted in a regression
//! file. `PROPTEST_CASES` in the environment overrides every configured case
//! count, as upstream does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Cases to actually run: `PROPTEST_CASES` overrides the configured
    /// count.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// The generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the test name
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = (self.next_u64() as u128) * (span as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A generator of random values: the sampling core of upstream's `Strategy`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds sampled values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The whole-domain strategy for `T`, as `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        strings::sample_regex(self, rng)
    }
}

/// Regex-derived string generation, backing the upstream convention that a
/// bare string literal is a strategy for strings matching it as a regex.
mod strings {
    use super::TestRng;

    /// Unbounded repetitions (`*`, `+`, `{n,}`) are capped at this many
    /// extra iterations; upstream uses a similar implicit bound (0..=32).
    const MAX_REPEAT: u32 = 16;

    #[derive(Debug)]
    enum Node {
        Concat(Vec<Node>),
        Alt(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
        /// Inclusive char ranges; a literal is a single-char range.
        Class(Vec<(char, char)>),
        /// Any printable char (`.`, `\PC`).
        Printable,
    }

    /// Samples one string matching `pattern`.
    ///
    /// Supports the subset of regex syntax used as generators in this
    /// workspace: literals, `(..|..)` groups, `[..]` classes with ranges,
    /// `.`/`\PC` printable classes, `\d`/`\w`/`\s`, and the `*` `+` `?`
    /// `{n}` `{n,}` `{n,m}` repetitions. Anything else panics with the
    /// offending pattern, mirroring upstream's parse failure.
    pub(super) fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let node = parse_alt(&chars, &mut pos, pattern);
        assert!(
            pos == chars.len(),
            "unsupported regex (trailing input at {pos}): {pattern:?}"
        );
        let mut out = String::new();
        emit(&node, rng, &mut out);
        out
    }

    fn parse_alt(chars: &[char], pos: &mut usize, pat: &str) -> Node {
        let mut branches = vec![parse_concat(chars, pos, pat)];
        while chars.get(*pos) == Some(&'|') {
            *pos += 1;
            branches.push(parse_concat(chars, pos, pat));
        }
        if branches.len() == 1 {
            branches.pop().expect("non-empty")
        } else {
            Node::Alt(branches)
        }
    }

    fn parse_concat(chars: &[char], pos: &mut usize, pat: &str) -> Node {
        let mut seq = Vec::new();
        while let Some(&c) = chars.get(*pos) {
            if c == '|' || c == ')' {
                break;
            }
            let atom = parse_atom(chars, pos, pat);
            seq.push(parse_repeat(atom, chars, pos, pat));
        }
        Node::Concat(seq)
    }

    fn parse_atom(chars: &[char], pos: &mut usize, pat: &str) -> Node {
        let c = chars[*pos];
        *pos += 1;
        match c {
            '(' => {
                let inner = parse_alt(chars, pos, pat);
                assert!(
                    chars.get(*pos) == Some(&')'),
                    "unsupported regex (unclosed group): {pat:?}"
                );
                *pos += 1;
                inner
            }
            '[' => parse_class(chars, pos, pat),
            '.' => Node::Printable,
            '\\' => parse_escape(chars, pos, pat),
            '*' | '+' | '?' | '{' => panic!("unsupported regex (dangling repeat): {pat:?}"),
            lit => Node::Class(vec![(lit, lit)]),
        }
    }

    fn parse_escape(chars: &[char], pos: &mut usize, pat: &str) -> Node {
        let c = *chars
            .get(*pos)
            .unwrap_or_else(|| panic!("unsupported regex (trailing backslash): {pat:?}"));
        *pos += 1;
        match c {
            // `\PC` / `\P{C}`: not in Unicode category "Other" — printable.
            'P' => {
                if chars.get(*pos) == Some(&'{') {
                    while chars.get(*pos).is_some_and(|&c| c != '}') {
                        *pos += 1;
                    }
                    *pos += 1;
                } else {
                    *pos += 1;
                }
                Node::Printable
            }
            'd' => Node::Class(vec![('0', '9')]),
            'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            's' => Node::Class(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')]),
            'n' => Node::Class(vec![('\n', '\n')]),
            't' => Node::Class(vec![('\t', '\t')]),
            'r' => Node::Class(vec![('\r', '\r')]),
            lit @ ('\\' | '.' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '*' | '+' | '?'
            | '-' | '^' | '$' | '"' | '/') => Node::Class(vec![(lit, lit)]),
            other => panic!("unsupported regex escape \\{other} in {pat:?}"),
        }
    }

    fn parse_class(chars: &[char], pos: &mut usize, pat: &str) -> Node {
        let mut ranges = Vec::new();
        assert!(
            chars.get(*pos) != Some(&'^'),
            "unsupported regex (negated class): {pat:?}"
        );
        loop {
            let c = *chars
                .get(*pos)
                .unwrap_or_else(|| panic!("unsupported regex (unclosed class): {pat:?}"));
            *pos += 1;
            if c == ']' {
                break;
            }
            let lo = if c == '\\' {
                let e = chars[*pos];
                *pos += 1;
                match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            } else {
                c
            };
            if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1) != Some(&']') {
                *pos += 1;
                let hi = chars[*pos];
                *pos += 1;
                assert!(lo <= hi, "unsupported regex (inverted range): {pat:?}");
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        assert!(!ranges.is_empty(), "unsupported regex (empty class): {pat:?}");
        Node::Class(ranges)
    }

    fn parse_repeat(atom: Node, chars: &[char], pos: &mut usize, pat: &str) -> Node {
        let (lo, hi) = match chars.get(*pos) {
            Some('*') => (0, MAX_REPEAT),
            Some('+') => (1, MAX_REPEAT),
            Some('?') => (0, 1),
            Some('{') => {
                *pos += 1;
                let lo = parse_number(chars, pos, pat);
                let hi = match chars.get(*pos) {
                    Some('}') => lo,
                    Some(',') => {
                        *pos += 1;
                        if chars.get(*pos) == Some(&'}') {
                            lo + MAX_REPEAT
                        } else {
                            parse_number(chars, pos, pat)
                        }
                    }
                    _ => panic!("unsupported regex (bad counted repeat): {pat:?}"),
                };
                assert!(
                    chars.get(*pos) == Some(&'}'),
                    "unsupported regex (unclosed counted repeat): {pat:?}"
                );
                (lo, hi)
            }
            _ => return atom,
        };
        *pos += 1;
        assert!(lo <= hi, "unsupported regex (inverted repeat): {pat:?}");
        Node::Repeat(Box::new(atom), lo, hi)
    }

    fn parse_number(chars: &[char], pos: &mut usize, pat: &str) -> u32 {
        let start = *pos;
        while chars.get(*pos).is_some_and(char::is_ascii_digit) {
            *pos += 1;
        }
        chars[start..*pos]
            .iter()
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| panic!("unsupported regex (bad repeat count): {pat:?}"))
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Concat(seq) => {
                for n in seq {
                    emit(n, rng, out);
                }
            }
            Node::Alt(branches) => {
                let pick = rng.below(branches.len() as u64) as usize;
                emit(&branches[pick], rng, out);
            }
            Node::Repeat(inner, lo, hi) => {
                let n = lo + rng.below(u64::from(hi - lo) + 1) as u32;
                for _ in 0..n {
                    emit(inner, rng, out);
                }
            }
            Node::Class(ranges) => {
                // Weight ranges by width so wide ranges aren't under-sampled.
                let total: u64 = ranges.iter().map(|&(lo, hi)| width(lo, hi)).sum();
                let mut pick = rng.below(total);
                for &(lo, hi) in ranges {
                    let w = width(lo, hi);
                    if pick < w {
                        // Step through the scalar-value gap (surrogates).
                        let mut v = lo as u32 + pick as u32;
                        if lo <= '\u{D7FF}' && v > 0xD7FF {
                            v += 0x800;
                        }
                        out.push(char::from_u32(v).expect("in-range scalar"));
                        return;
                    }
                    pick -= w;
                }
                unreachable!("weighted pick within total");
            }
            Node::Printable => {
                // Mostly printable ASCII with an occasional non-ASCII char,
                // enough to exercise multi-byte handling in parsers.
                const EXOTIC: &[char] = &['é', 'Δ', 'λ', '—', '≤', '世', '🦀'];
                if rng.below(8) == 0 {
                    out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
                } else {
                    out.push(char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable"));
                }
            }
        }
    }

    /// Count of Unicode scalar values in the inclusive range.
    fn width(lo: char, hi: char) -> u64 {
        let raw = u64::from(hi as u32) - u64::from(lo as u32) + 1;
        if lo <= '\u{D7FF}' && hi >= '\u{E000}' {
            raw - 0x800 // exclude the surrogate gap
        } else {
            raw
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    /// Fair coin flip.
    pub const ANY: crate::Any<::core::primitive::bool> = crate::Any(::core::marker::PhantomData);
}

/// Size specifications accepted by the [`collection`] strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// A `Vec` of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element` with a target size drawn from
    /// `size`.
    ///
    /// As upstream, the resulting set may be smaller than the drawn target
    /// when the element domain has too few distinct values.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts so small element domains terminate.
            for _ in 0..(4 * target + 16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// The test-defining macro: runs each body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.effective_cases() {
                    let mut __proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), case as u64);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    // The closure gives bodies upstream's `return Ok(())`
                    // early-exit; assertion failures still panic directly.
                    let __proptest_case = move ||
                        -> ::core::result::Result<(), ::std::boxed::Box<dyn ::std::error::Error>>
                    {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(e) = __proptest_case() {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Strategy;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::TestRng::for_case("unit", 0);
        for _ in 0..1_000 {
            let (a, b) = (1u32..5, -3i64..=3).sample(&mut rng);
            assert!((1..5).contains(&a));
            assert!((-3..=3).contains(&b));
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategies() {
        let strat = (2usize..6).prop_flat_map(|n| (Just(n), 0usize..n));
        let mut rng = crate::TestRng::for_case("unit2", 1);
        for _ in 0..1_000 {
            let (n, k) = strat.sample(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::for_case("unit3", 2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..10, 1..4).sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            let s = crate::collection::btree_set(0usize..3, 0..=5).sample(&mut rng);
            assert!(s.len() <= 3, "only 3 distinct values exist");
        }
    }

    #[test]
    fn regex_strategies_match_their_patterns() {
        let mut rng = crate::TestRng::for_case("regex", 0);
        for _ in 0..500 {
            let s = "(var|block|def|reads)[ a-z0-9=,]{0,20}".sample(&mut rng);
            assert!(
                ["var", "block", "def", "reads"].iter().any(|p| s.starts_with(p)),
                "{s:?}"
            );
            let tail = s
                .trim_start_matches("reads")
                .trim_start_matches("var")
                .trim_start_matches("block")
                .trim_start_matches("def");
            assert!(tail.len() <= 20, "{s:?}");
            assert!(
                tail.chars()
                    .all(|c| c == ' ' || c == '=' || c == ',' || c.is_ascii_lowercase()
                        || c.is_ascii_digit()),
                "{s:?}"
            );

            let p = "\\PC*".sample(&mut rng);
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");

            let d = "a{3}\\d+".sample(&mut rng);
            assert!(d.starts_with("aaa") && d.len() > 3, "{d:?}");
            assert!(d[3..].chars().all(|c| c.is_ascii_digit()), "{d:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: args bind, bodies run per case.
        #[test]
        fn macro_binds_arguments(x in 0u64..100, flip in crate::bool::ANY) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip as u64 <= 1, true);
        }
    }
}
