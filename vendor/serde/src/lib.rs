//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build container cannot reach the crates-io registry, so the workspace
//! patches `serde` to this crate. Unlike real serde this is **not** a
//! data-model abstraction: [`Serialize`] writes JSON directly, which is the
//! only format the workspace emits (`repro --json`, benchmark result files).
//!
//! `#[derive(Serialize)]` is provided by the sibling `serde_derive` stub for
//! plain structs with named fields — exactly the shape of every row type in
//! `lemra-bench`. Deserialization is not provided; the `serde` cargo
//! features of `lemra-ir`/`lemra-core` (which want `Deserialize` too) are
//! unsupported offline and documented as such there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::Serialize;

/// Types that can write themselves as JSON.
///
/// Implemented by hand for primitives and containers below, and by
/// `#[derive(Serialize)]` for structs.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

macro_rules! serialize_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buffer(&mut [0u8; 24], *self as i128));
            }
        }
    )*};
}
serialize_display_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Formats an integer without going through `fmt` machinery.
fn itoa_buffer(buf: &mut [u8; 24], mut v: i128) -> &str {
    let neg = v < 0;
    if neg {
        v = -v;
    }
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{}` prints the shortest representation that round-trips;
            // keep integral floats recognisable ("1.0" not "1"), matching
            // serde_json.
            let repr = format!("{self}");
            out.push_str(&repr);
            if !repr.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        } else {
            // serde_json maps non-finite floats to null.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}
serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Writes a JSON string literal with escapes.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Helper used by generated code: writes `"key":` with a leading comma when
/// `first` is false.
pub fn write_field_key(out: &mut String, key: &str, first: bool) {
    if !first {
        out.push(',');
    }
    write_json_string(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize + ?Sized>(v: &T) -> String {
        let mut out = String::new();
        v.serialize_json(&mut out);
        out
    }

    #[test]
    fn primitives() {
        assert_eq!(json(&3u32), "3");
        assert_eq!(json(&-17i64), "-17");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&2.0f64), "2.0");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json(&(4u32, 5u32)), "[4,5]");
        assert_eq!(json(&Some(7u8)), "7");
        assert_eq!(json(&Option::<u8>::None), "null");
    }

    #[derive(Serialize)]
    struct Demo {
        name: String,
        count: u32,
        ratio: f64,
        ports: (u32, u32),
        tags: Vec<String>,
    }

    #[test]
    fn derived_struct() {
        let d = Demo {
            name: "x".into(),
            count: 2,
            ratio: 0.5,
            ports: (1, 2),
            tags: vec!["a".into()],
        };
        assert_eq!(
            json(&d),
            "{\"name\":\"x\",\"count\":2,\"ratio\":0.5,\"ports\":[1,2],\"tags\":[\"a\"]}"
        );
    }
}
