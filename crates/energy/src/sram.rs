//! First-principles SRAM array energy: derive per-access energies from
//! array geometry instead of taking them as given.
//!
//! The paper justifies its premise — register-file accesses are cheaper
//! than accesses to the 256×16 on-chip memory — by the capacitance data of
//! Chandrakasan et al. \[3\]. Those tables are not reproducible, but the
//! *physics* is: an access charges one word line (∝ bits per word), swings
//! all bit lines (∝ words per column, i.e. the number of cells hanging off
//! each line), and drives a decoder (∝ log₂ words). This module models
//! exactly that, normalised so the paper's reference configurations land on
//! the ref \[14\] ratios used throughout `lemra` (256×16 memory read = 5
//! adds, write = 10).
//!
//! # Examples
//!
//! ```
//! use lemra_energy::SramArray;
//!
//! let memory = SramArray::new(256, 16);
//! let regfile = SramArray::new(16, 16);
//! // The premise of the whole paper, derived rather than asserted:
//! assert!(regfile.read_energy() < memory.read_energy());
//! assert!(regfile.write_energy() < memory.write_energy());
//! ```

use crate::model::EnergyModel;

/// An SRAM array of `words` × `bits`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramArray {
    words: u32,
    bits: u32,
}

/// Relative capacitance contributions, calibrated so that the paper's
/// 256×16 reference memory reads at 5.0 and writes at 10.0 energy units
/// (ref \[14\]'s ratios to a 16-bit add).
const BITLINE_WEIGHT: f64 = 0.95;
const WORDLINE_WEIGHT: f64 = 0.4;
const DECODER_WEIGHT: f64 = 0.3;
/// Writes swing the bit lines full rail where reads only develop a sense
/// margin; ref \[14\] measured the resulting write/read energy ratio at 2.
const WRITE_FACTOR: f64 = 2.0;

impl SramArray {
    /// An array of `words` entries of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `bits` is zero.
    pub fn new(words: u32, bits: u32) -> Self {
        assert!(words > 0 && bits > 0, "array dimensions must be positive");
        Self { words, bits }
    }

    /// The paper's on-chip memory: 256×16.
    pub fn paper_memory() -> Self {
        Self::new(256, 16)
    }

    /// The paper's register file: 16×16.
    pub fn paper_register_file() -> Self {
        Self::new(16, 16)
    }

    /// Number of words.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Word width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Switched capacitance of one read access, in arbitrary units
    /// proportional to energy at fixed voltage. Every bit line sees `words`
    /// cell junctions and all `bits` lines swing (the `words · bits` term);
    /// the word line crosses `bits` cells; the decoder depth is
    /// `log2(words)`. Weights are normalised to the 256×16 reference array.
    fn read_capacitance(&self) -> f64 {
        let words = f64::from(self.words);
        let bits = f64::from(self.bits);
        BITLINE_WEIGHT * (words * bits) / (256.0 * 16.0)
            + WORDLINE_WEIGHT * bits / 16.0
            + DECODER_WEIGHT * words.log2() / 8.0
    }

    /// Per-read energy in `lemra` units (one 16-bit add = 1), at nominal
    /// voltage. Calibrated so [`SramArray::paper_memory`] reads at exactly
    /// the ref \[14\] figure of 5 units.
    pub fn read_energy(&self) -> f64 {
        let reference = SramArray::paper_memory().read_capacitance();
        5.0 * self.read_capacitance() / reference
    }

    /// Per-write energy in `lemra` units, at nominal voltage (ref \[14\]'s
    /// measured write/read ratio of 2 applied to the array's read energy).
    pub fn write_energy(&self) -> f64 {
        WRITE_FACTOR * self.read_energy()
    }

    /// Builds an [`EnergyModel`] with this array as the memory and
    /// `register_file` as the register file, both at nominal voltage.
    pub fn energy_model_with(&self, register_file: &SramArray) -> EnergyModel {
        EnergyModel {
            mem_read: self.read_energy(),
            mem_write: self.write_energy(),
            reg_read: register_file.read_energy(),
            reg_write: register_file.write_energy(),
            ..EnergyModel::default_16bit()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_to_the_paper_reference() {
        let mem = SramArray::paper_memory();
        assert!(
            (mem.read_energy() - 5.0).abs() < 1e-9,
            "{}",
            mem.read_energy()
        );
        assert!((mem.write_energy() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn register_file_is_cheaper_than_memory() {
        let mem = SramArray::paper_memory();
        let rf = SramArray::paper_register_file();
        assert!(rf.read_energy() < mem.read_energy() / 2.0);
        assert!(rf.write_energy() < mem.write_energy() / 2.0);
    }

    #[test]
    fn energy_grows_with_words_and_bits() {
        let base = SramArray::new(64, 16).read_energy();
        assert!(SramArray::new(128, 16).read_energy() > base);
        assert!(SramArray::new(64, 32).read_energy() > base);
        assert!(SramArray::new(32, 16).read_energy() < base);
    }

    #[test]
    fn model_builder_wires_both_components() {
        let model = SramArray::paper_memory().energy_model_with(&SramArray::paper_register_file());
        assert!(model.e_reg_read() < model.e_mem_read());
        assert!(model.e_reg_write() < model.e_mem_write());
        // And still responds to voltage scaling.
        let scaled = model.clone().with_memory_voltage(2.0);
        assert!(scaled.e_mem_read() < model.e_mem_read());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimensions_rejected() {
        let _ = SramArray::new(0, 16);
    }
}
