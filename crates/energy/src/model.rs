//! The storage energy models of §3 (eqs. 1 and 2).
//!
//! Both the **static** model (separate read/write energies per component)
//! and the **activity-based** model (register energy proportional to the
//! Hamming distance of successive residents) are supported. All quantities
//! are expressed in multiples of the energy of one 16-bit addition at
//! nominal 5 V — the normalisation of ref \[14\], under which an on-chip
//! memory read costs 5 units and a memory write 10.
//!
//! The absolute register-file numbers are modelled (the Chandrakasan
//! capacitance tables the paper used are not reproducible from its text);
//! they preserve the published *ordering*: register accesses are markedly
//! cheaper than accesses to the 16× larger memory. See `DESIGN.md` §1,
//! substitution 2.

use crate::cost::MicroEnergy;

/// Per-access energies and voltages of the storage subsystem.
///
/// Effective energies scale with the square of the supply voltage; the
/// `e_*` accessors below apply the derating. Fields are public — this is a
/// parameter record meant to be tweaked per experiment.
///
/// # Examples
///
/// ```
/// use lemra_energy::EnergyModel;
///
/// let nominal = EnergyModel::default_16bit();
/// let scaled = EnergyModel::default_16bit().with_memory_voltage(2.0);
/// // 2 V memory: accesses cost (2/5)² = 0.16 of nominal.
/// assert!(scaled.e_mem_read().as_units() < 0.2 * nominal.e_mem_read().as_units() + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// On-chip memory read energy at nominal voltage (`E^m_r`).
    pub mem_read: f64,
    /// On-chip memory write energy at nominal voltage (`E^m_w`).
    pub mem_write: f64,
    /// Register-file read energy at nominal voltage (`E^r_r`).
    pub reg_read: f64,
    /// Register-file write energy at nominal voltage (`E^r_w`).
    pub reg_write: f64,
    /// Register-file switched capacitance per unit Hamming distance
    /// (`C^r_rw` of eq. 2), in energy units at nominal voltage.
    pub c_reg_rw: f64,
    /// Memory supply voltage (`Vm`).
    pub v_mem: f64,
    /// Register-file supply voltage (`Vr`).
    pub v_reg: f64,
}

/// Nominal supply voltage of the modelled 1997 process.
pub const V_NOMINAL: f64 = 5.0;

impl EnergyModel {
    /// The default 16-bit model: memory read/write 5/10 units (ref \[14\]);
    /// register read/write 0.5/0.8 units; `C^r_rw` = 0.1 units per switched
    /// bit (a full 16-bit flip ≈ 2 register writes). Both components at 5 V.
    pub fn default_16bit() -> Self {
        Self {
            mem_read: 5.0,
            mem_write: 10.0,
            reg_read: 0.5,
            reg_write: 0.8,
            c_reg_rw: 0.1,
            v_mem: V_NOMINAL,
            v_reg: V_NOMINAL,
        }
    }

    /// Variant for the paper's figure examples, whose Hamming values are
    /// *fractions* of the word (0.2 = 20% of bits): `C^r_rw` is the energy
    /// of flipping the whole 16-bit word (16 × 0.1).
    pub fn figures() -> Self {
        Self {
            c_reg_rw: 1.6,
            ..Self::default_16bit()
        }
    }

    /// Returns the model with the memory module scaled to `volts`.
    pub fn with_memory_voltage(mut self, volts: f64) -> Self {
        self.v_mem = volts;
        self
    }

    /// Returns the model with the register file scaled to `volts`.
    pub fn with_register_voltage(mut self, volts: f64) -> Self {
        self.v_reg = volts;
        self
    }

    fn mem_factor(&self) -> f64 {
        (self.v_mem / V_NOMINAL).powi(2)
    }

    fn reg_factor(&self) -> f64 {
        (self.v_reg / V_NOMINAL).powi(2)
    }

    /// Effective memory read energy `E^m_r` (voltage-derated).
    pub fn e_mem_read(&self) -> MicroEnergy {
        MicroEnergy::from_units(self.mem_read * self.mem_factor())
    }

    /// Effective memory write energy `E^m_w`.
    pub fn e_mem_write(&self) -> MicroEnergy {
        MicroEnergy::from_units(self.mem_write * self.mem_factor())
    }

    /// Effective register read energy `E^r_r` (static model).
    pub fn e_reg_read(&self) -> MicroEnergy {
        MicroEnergy::from_units(self.reg_read * self.reg_factor())
    }

    /// Effective register write energy `E^r_w` (static model).
    pub fn e_reg_write(&self) -> MicroEnergy {
        MicroEnergy::from_units(self.reg_write * self.reg_factor())
    }

    /// Activity-model register energy `H(v1, v2) · C^r_rw · Vr²` for one
    /// register overwrite with Hamming term `hamming`.
    pub fn e_reg_activity(&self, hamming: f64) -> MicroEnergy {
        MicroEnergy::from_units(hamming * self.c_reg_rw * self.reg_factor())
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::default_16bit()
    }
}

/// Which accounting eq. (1)/(2) uses for the register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RegisterEnergyKind {
    /// Eq. (1): fixed `E^r_w` / `E^r_r` per access.
    #[default]
    Static,
    /// Eq. (2): `H(v1, v2) · C^r_rw · Vr²` per overwrite, reads free.
    Activity,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preserves_published_ratios() {
        let m = EnergyModel::default_16bit();
        // Ref [14]: memory read = 5×, write = 10× a 16-bit add.
        assert_eq!(m.e_mem_read().as_units(), 5.0);
        assert_eq!(m.e_mem_write().as_units(), 10.0);
        // Registers strictly cheaper than memory — the paper's premise.
        assert!(m.e_reg_read() < m.e_mem_read());
        assert!(m.e_reg_write() < m.e_mem_write());
    }

    #[test]
    fn voltage_scaling_is_quadratic() {
        let m = EnergyModel::default_16bit().with_memory_voltage(2.5);
        assert!((m.e_mem_read().as_units() - 5.0 * 0.25).abs() < 1e-9);
        // Register file unaffected by memory scaling.
        assert_eq!(m.e_reg_read().as_units(), 0.5);
    }

    #[test]
    fn register_voltage_scales_activity() {
        let m = EnergyModel::default_16bit().with_register_voltage(2.5);
        assert!((m.e_reg_activity(8.0).as_units() - 8.0 * 0.1 * 0.25).abs() < 1e-9);
    }

    #[test]
    fn figures_model_full_word_flip() {
        let m = EnergyModel::figures();
        // H = 1.0 means all 16 bits flip.
        assert!((m.e_reg_activity(1.0).as_units() - 1.6).abs() < 1e-9);
        assert!((m.e_reg_activity(0.5).as_units() - 0.8).abs() < 1e-9);
    }
}
