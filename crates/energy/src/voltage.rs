//! Voltage scaling of memory modules (§5.2, Table 1).
//!
//! "For low energy applications, memory modules may be operating at lower
//! frequencies (and lower supply voltages to save energy)." Energy per
//! access scales with `V²` (refs \[3, 15\]); the feasible voltage for a given
//! slowdown follows the classical delay model `delay ∝ V / (V − Vt)²`.
//!
//! Table 1 runs the memory at `f`, `f/2` and `f/4` with "scaled supply
//! voltage ranging from 5 V to 2 V"; [`VoltageSchedule::paper`] reproduces
//! exactly those operating points, while [`VoltageSchedule::analytic`]
//! derives the voltage for arbitrary divisors from the delay model.

/// Maps a memory frequency divisor (`c` in Problem 1: one access every `c`
/// control steps) to a supply voltage.
#[derive(Debug, Clone, PartialEq)]
pub enum VoltageSchedule {
    /// Explicit operating points `(divisor, volts)`; unlisted divisors fall
    /// back to the nominal voltage of the closest smaller divisor.
    Table {
        /// Operating points sorted by divisor.
        points: Vec<(u32, f64)>,
    },
    /// Delay-model-derived: solve `V/(V−Vt)² = divisor · V0/(V0−Vt)²`.
    Analytic {
        /// Nominal supply (divisor 1).
        v_nom: f64,
        /// Threshold voltage of the process.
        v_t: f64,
    },
}

impl VoltageSchedule {
    /// The operating points of Table 1: 5 V at `f`, 3.3 V at `f/2`, 2 V at
    /// `f/4`.
    pub fn paper() -> Self {
        VoltageSchedule::Table {
            points: vec![(1, 5.0), (2, 3.3), (4, 2.0)],
        }
    }

    /// An analytic schedule for a 5 V process with the given threshold
    /// voltage.
    pub fn analytic(v_t: f64) -> Self {
        VoltageSchedule::Analytic { v_nom: 5.0, v_t }
    }

    /// Supply voltage for a memory running every `divisor` control steps.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn voltage_for(&self, divisor: u32) -> f64 {
        assert!(divisor >= 1, "frequency divisor must be at least 1");
        match self {
            VoltageSchedule::Table { points } => {
                let mut best = points
                    .first()
                    .map(|&(_, v)| v)
                    .expect("voltage table is non-empty");
                for &(d, v) in points {
                    if d <= divisor {
                        best = v;
                    }
                }
                best
            }
            VoltageSchedule::Analytic { v_nom, v_t } => {
                let nominal_delay = delay(*v_nom, *v_t);
                let target = nominal_delay * f64::from(divisor);
                // delay(V) is decreasing in V above Vt: bisect.
                let (mut lo, mut hi) = (*v_t + 1e-6, *v_nom);
                for _ in 0..200 {
                    let mid = 0.5 * (lo + hi);
                    if delay(mid, *v_t) > target {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                0.5 * (lo + hi)
            }
        }
    }

    /// The `V²` energy derating factor relative to 5 V nominal.
    pub fn energy_factor(&self, divisor: u32) -> f64 {
        let v = self.voltage_for(divisor);
        (v / 5.0).powi(2)
    }
}

fn delay(v: f64, v_t: f64) -> f64 {
    v / (v - v_t).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_points() {
        let s = VoltageSchedule::paper();
        assert_eq!(s.voltage_for(1), 5.0);
        assert_eq!(s.voltage_for(2), 3.3);
        assert_eq!(s.voltage_for(4), 2.0);
        // In-between divisor keeps the last feasible point.
        assert_eq!(s.voltage_for(3), 3.3);
        assert_eq!(s.voltage_for(8), 2.0);
    }

    #[test]
    fn paper_energy_factors_are_quadratic() {
        let s = VoltageSchedule::paper();
        assert!((s.energy_factor(1) - 1.0).abs() < 1e-12);
        assert!((s.energy_factor(4) - 0.16).abs() < 1e-12);
    }

    #[test]
    fn analytic_is_monotone_decreasing() {
        let s = VoltageSchedule::analytic(1.0);
        let v1 = s.voltage_for(1);
        let v2 = s.voltage_for(2);
        let v4 = s.voltage_for(4);
        assert!((v1 - 5.0).abs() < 1e-6);
        assert!(v2 < v1 && v4 < v2);
        assert!(v4 > 1.0, "stays above threshold");
    }

    #[test]
    fn analytic_solves_the_delay_equation() {
        let s = VoltageSchedule::analytic(1.0);
        let v2 = s.voltage_for(2);
        let ratio = delay(v2, 1.0) / delay(5.0, 1.0);
        assert!((ratio - 2.0).abs() < 1e-3, "delay ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "divisor")]
    fn zero_divisor_panics() {
        let _ = VoltageSchedule::paper().voltage_for(0);
    }
}
