//! Storage energy models for `lemra` (§3 of the paper).
//!
//! * [`EnergyModel`] — the static (eq. 1) and activity-based (eq. 2)
//!   per-access energies with voltage derating;
//! * [`VoltageSchedule`] — supply scaling for memories run at `f/c`
//!   (Table 1's 5 V → 2 V sweep);
//! * [`MicroEnergy`] — exact fixed-point quantities used as flow-arc costs;
//! * [`SramArray`] — first-principles per-access energies from array
//!   geometry (derives the register-file-cheaper-than-memory premise).
//!
//! # Examples
//!
//! ```
//! use lemra_energy::{EnergyModel, VoltageSchedule};
//!
//! // Table 1, row "f/4": memory at a quarter frequency, scaled to 2 V.
//! let volts = VoltageSchedule::paper().voltage_for(4);
//! let model = EnergyModel::default_16bit().with_memory_voltage(volts);
//! let nominal = EnergyModel::default_16bit();
//! assert!(model.e_mem_write() < nominal.e_mem_write());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod model;
mod sram;
mod voltage;

pub use cost::{MicroEnergy, MICRO_SCALE};
pub use model::{EnergyModel, RegisterEnergyKind, V_NOMINAL};
pub use sram::SramArray;
pub use voltage::VoltageSchedule;
