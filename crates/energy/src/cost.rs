//! Fixed-point energy quantities.
//!
//! The flow solver works on exact integers — the paper's optimality claim
//! ("a globally optimal solution can be obtained in polynomial time") relies
//! on integral capacities and costs. [`MicroEnergy`] quantises energies to
//! 10⁻⁶ of the base unit (the energy of one 16-bit addition at nominal
//! voltage, following ref \[14\]).

use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// Scale factor: one energy unit = 10⁶ micro-units.
pub const MICRO_SCALE: i64 = 1_000_000;

/// An energy amount in millionths of the base energy unit.
///
/// # Examples
///
/// ```
/// use lemra_energy::MicroEnergy;
///
/// let read = MicroEnergy::from_units(5.0);
/// let write = MicroEnergy::from_units(10.0);
/// assert_eq!((read + write).as_units(), 15.0);
/// assert_eq!((write - read).raw(), 5_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MicroEnergy(i64);

impl MicroEnergy {
    /// Zero energy.
    pub const ZERO: MicroEnergy = MicroEnergy(0);

    /// Quantises a floating-point energy (rounding to nearest micro-unit).
    ///
    /// # Panics
    ///
    /// Panics if `units` is not finite or overflows the fixed-point range.
    pub fn from_units(units: f64) -> Self {
        assert!(units.is_finite(), "energy must be finite, got {units}");
        let raw = (units * MICRO_SCALE as f64).round();
        assert!(
            raw.abs() < i64::MAX as f64 / 4.0,
            "energy {units} overflows fixed-point range"
        );
        MicroEnergy(raw as i64)
    }

    /// Constructs from a raw micro-unit count.
    pub fn from_raw(raw: i64) -> Self {
        MicroEnergy(raw)
    }

    /// The raw micro-unit count (suitable as a flow-arc cost).
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Converts back to floating-point units.
    pub fn as_units(self) -> f64 {
        self.0 as f64 / MICRO_SCALE as f64
    }

    /// Multiplies by an integer count (e.g. `rlast_v` reads).
    pub fn scale(self, count: i64) -> Self {
        MicroEnergy(self.0 * count)
    }
}

impl Add for MicroEnergy {
    type Output = MicroEnergy;
    fn add(self, rhs: MicroEnergy) -> MicroEnergy {
        MicroEnergy(self.0 + rhs.0)
    }
}

impl AddAssign for MicroEnergy {
    fn add_assign(&mut self, rhs: MicroEnergy) {
        self.0 += rhs.0;
    }
}

impl Sub for MicroEnergy {
    type Output = MicroEnergy;
    fn sub(self, rhs: MicroEnergy) -> MicroEnergy {
        MicroEnergy(self.0 - rhs.0)
    }
}

impl SubAssign for MicroEnergy {
    fn sub_assign(&mut self, rhs: MicroEnergy) {
        self.0 -= rhs.0;
    }
}

impl Neg for MicroEnergy {
    type Output = MicroEnergy;
    fn neg(self) -> MicroEnergy {
        MicroEnergy(-self.0)
    }
}

impl Sum for MicroEnergy {
    fn sum<I: Iterator<Item = MicroEnergy>>(iter: I) -> MicroEnergy {
        MicroEnergy(iter.map(|e| e.0).sum())
    }
}

impl std::fmt::Display for MicroEnergy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}", self.as_units())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = MicroEnergy::from_units(3.125);
        assert_eq!(e.raw(), 3_125_000);
        assert_eq!(e.as_units(), 3.125);
    }

    #[test]
    fn rounds_to_nearest() {
        assert_eq!(MicroEnergy::from_units(0.000_000_6).raw(), 1);
        assert_eq!(MicroEnergy::from_units(-0.000_000_6).raw(), -1);
        assert_eq!(MicroEnergy::from_units(0.000_000_4).raw(), 0);
    }

    #[test]
    fn arithmetic() {
        let a = MicroEnergy::from_units(2.0);
        let b = MicroEnergy::from_units(0.5);
        assert_eq!((a + b).as_units(), 2.5);
        assert_eq!((a - b).as_units(), 1.5);
        assert_eq!((-b).as_units(), -0.5);
        assert_eq!(a.scale(3).as_units(), 6.0);
        let total: MicroEnergy = [a, b, b].into_iter().sum();
        assert_eq!(total.as_units(), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = MicroEnergy::from_units(f64::NAN);
    }

    #[test]
    fn display_shows_units() {
        assert_eq!(MicroEnergy::from_units(1.5).to_string(), "1.500000");
    }
}
