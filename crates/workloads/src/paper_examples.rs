//! The paper's worked examples: Figure 1 (the running §5.1 illustration),
//! Figure 3 and Figure 4 (the §6 evaluation figures), plus a supplementary
//! storage-locations demonstrator.
//!
//! The figures are lifetime diagrams whose exact coordinates do not survive
//! in the published text; the pairwise switching-activity tables printed
//! beside them do. Each reconstruction below realises lifetimes *consistent
//! with every published compatibility arc* (an arc `x → y` requires `x` to
//! end no later than `y` begins) and documents the choices inline. The
//! benchmark harness then *measures* both approaches on these instances; see
//! EXPERIMENTS.md for measured-vs-published ratios.

use lemra_ir::{ActivitySource, LifetimeTable, VarId};

/// One reconstructed figure instance.
#[derive(Debug, Clone)]
pub struct FigureInstance {
    /// Human-readable name.
    pub name: &'static str,
    /// Variable names in [`VarId`] order.
    pub var_names: Vec<&'static str>,
    /// The lifetimes.
    pub lifetimes: LifetimeTable,
    /// The published pairwise switching activities.
    pub activity: ActivitySource,
    /// Register-file size used in the figure.
    pub registers: u32,
}

impl FigureInstance {
    /// Looks up a variable by its figure name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the figure's variables.
    pub fn var(&self, name: &str) -> VarId {
        let idx = self
            .var_names
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("no variable named {name}"));
        VarId(idx as u32)
    }
}

/// Figure 1: variables `a`–`e` over 7 control steps.
///
/// From the paper: at step 3, `a` and `b` are read and `d` is written; `c`
/// and `d` are read after step 7 by another task (live-out); the regions of
/// maximum lifetime density run "from time 2 to time 3" and "from time 5 to
/// time 6"; between them `a`, `b` end and `d`, `e` begin. The lifetimes
/// below satisfy all of those statements.
pub fn figure1() -> FigureInstance {
    let lifetimes = LifetimeTable::from_intervals(
        7,
        vec![
            (1, vec![3], false), // a: defined step 1, read step 3
            (1, vec![3], false), // b: read with a at step 3
            (2, vec![], true),   // c: live-out past step 7
            (3, vec![], true),   // d: written at step 3, live-out
            (5, vec![7], false), // e
        ],
    )
    .expect("figure 1 reconstruction is well-formed");
    FigureInstance {
        name: "figure1",
        var_names: vec!["a", "b", "c", "d", "e"],
        lifetimes,
        activity: ActivitySource::Uniform { hamming: 0.5 },
        registers: 2,
    }
}

/// Figure 3: six variables, one register; published activity table
/// {a→b 0.2, a→f 0.5, e→b 0.6, e→f 0.3, b→c 0.8, d→e 0.1}.
///
/// Reconstruction: `d`,`a` start first; `d` hands to `e`; `a`/`e` end where
/// `b`/`f` begin; `b` hands to `c` — this admits exactly the published arcs
/// and reproduces the paper's phase-1 optimum: two symbolic registers
/// `a→b→c` and `d→e→f` with total switching 0.5+0.2+0.8 + 0.5+0.1+0.3 =
/// **2.4**, the figure's headline number (initial writes switch 0.5, "for
/// illustration purposes we can assume that 0.5 of the bits change at time
/// 0").
pub fn figure3() -> FigureInstance {
    let lifetimes = LifetimeTable::from_intervals(
        6,
        vec![
            (1, vec![3], false), // a
            (3, vec![5], false), // b
            (5, vec![6], false), // c
            (1, vec![2], false), // d
            (2, vec![3], false), // e
            (3, vec![5], false), // f
        ],
    )
    .expect("figure 3 reconstruction is well-formed");
    FigureInstance {
        name: "figure3",
        var_names: vec!["a", "b", "c", "d", "e", "f"],
        lifetimes,
        activity: figure3_activity(),
        registers: 1,
    }
}

fn figure3_activity() -> ActivitySource {
    // VarIds: a=0, b=1, c=2, d=3, e=4, f=5. The figures list activities
    // only for the transitions they consider; unlisted pairs are taken as
    // full-word switching (1.0) so the listed arcs are the attractive ones,
    // which is what reproduces the published phase-1 optimum of 2.4.
    ActivitySource::PairTable {
        table: [
            ((VarId(0), VarId(1)), 0.2), // a -> b
            ((VarId(0), VarId(5)), 0.5), // a -> f
            ((VarId(4), VarId(1)), 0.6), // e -> b
            ((VarId(4), VarId(5)), 0.3), // e -> f
            ((VarId(1), VarId(2)), 0.8), // b -> c
            ((VarId(3), VarId(4)), 0.1), // d -> e
        ]
        .into_iter()
        .collect(),
        default: 1.0,
        initial: 0.5,
    }
}

/// Figure 4: the Figure 3 cast plus the extra published arc f→b 0.5 —
/// here `f` runs *between* the early cluster and `b`, so a register can
/// carry `a/e → f → b → c`.
///
/// The three§6 solutions over this instance:
/// (a) all-pairs graph, partition after allocation;
/// (b) all-pairs graph, simultaneous (minimum accesses, possibly more
///     storage locations);
/// (c) the paper's region graph with `f` split by hand (minimum accesses
///     *and* minimum storage locations).
pub fn figure4() -> FigureInstance {
    let lifetimes = LifetimeTable::from_intervals(
        8,
        vec![
            (1, vec![3], false), // a
            (5, vec![7], false), // b
            (7, vec![8], false), // c
            (1, vec![2], false), // d
            (2, vec![3], false), // e
            (3, vec![5], false), // f: bridges the clusters
        ],
    )
    .expect("figure 4 reconstruction is well-formed");
    let activity = ActivitySource::PairTable {
        table: [
            ((VarId(0), VarId(1)), 0.2), // a -> b
            ((VarId(0), VarId(5)), 0.5), // a -> f
            ((VarId(4), VarId(1)), 0.6), // e -> b
            ((VarId(4), VarId(5)), 0.3), // e -> f
            ((VarId(1), VarId(2)), 0.8), // b -> c
            ((VarId(3), VarId(4)), 0.1), // d -> e
            ((VarId(5), VarId(1)), 0.5), // f -> b (the new Figure 4 arc)
        ]
        .into_iter()
        .collect(),
        default: 1.0,
        initial: 0.5,
    };
    FigureInstance {
        name: "figure4",
        var_names: vec!["a", "b", "c", "d", "e", "f"],
        lifetimes,
        activity,
        registers: 1,
    }
}

/// The step at which Figure 4c splits `f` (mid-lifetime, step 4).
pub fn figure4c_split() -> (VarId, lemra_ir::Step) {
    (VarId(5), lemra_ir::Step(4))
}

/// Supplementary instance isolating the §7 minimum-storage-locations
/// property: two density-2 clusters joined by two bridge variables. The
/// all-pairs graph lets a register idle across the middle region (hand-off
/// `u → w`), scattering memory residencies over two addresses; the region
/// graph forbids that arc, and the optimum carries a bridge variable
/// instead, packing memory into a single address.
pub fn storage_demo() -> FigureInstance {
    let lifetimes = LifetimeTable::from_intervals(
        9,
        vec![
            (1, vec![3], false), // u
            (1, vec![3], false), // v
            (4, vec![6], false), // g (bridge)
            (4, vec![6], false), // h (bridge)
            (7, vec![9], false), // w
            (7, vec![9], false), // x
        ],
    )
    .expect("storage demo is well-formed");
    // u -> w transitions are nearly free; through-bridge transitions cost
    // enough (under the [`storage_demo_energy`] model) that the all-pairs
    // optimum prefers to idle the register across the middle region, while
    // the region graph — where the idle arc is forbidden — carries bridge
    // `g` and packs memory into a single address.
    let activity = ActivitySource::PairTable {
        table: [
            ((VarId(0), VarId(4)), 0.05), // u -> w: almost free
            ((VarId(0), VarId(2)), 0.5),  // u -> g
            ((VarId(2), VarId(4)), 0.5),  // g -> w
        ]
        .into_iter()
        .collect(),
        default: 1.0,
        initial: 0.5,
    };
    FigureInstance {
        name: "storage_demo",
        var_names: vec!["u", "v", "g", "h", "w", "x"],
        lifetimes,
        activity,
        registers: 1,
    }
}

/// The energy model the storage demonstrator is balanced for: a high
/// register-file switching capacitance (`C^r_rw` = 20 energy units per unit
/// Hamming) relative to memory accesses, so skipping the bridge is
/// energy-attractive exactly when the graph allows it.
pub fn storage_demo_energy() -> lemra_energy::EnergyModel {
    lemra_energy::EnergyModel {
        c_reg_rw: 20.0,
        ..lemra_energy::EnergyModel::default_16bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemra_ir::DensityProfile;

    #[test]
    fn figure1_matches_paper_statements() {
        let f = figure1();
        let p = DensityProfile::new(&f.lifetimes);
        assert_eq!(p.max(), 3);
        let regions = p.max_regions();
        assert_eq!(regions.len(), 2);
        // "from time 2 to time 3": tick range [2w .. 3r].
        assert_eq!(regions[0].start, lemra_ir::Step(2).write_tick());
        assert_eq!(regions[0].end, lemra_ir::Step(3).read_tick());
        assert_eq!(f.var("c"), VarId(2));
    }

    #[test]
    fn figure3_phase1_switching_is_2_4() {
        let f = figure3();
        let problem = lemra_core::AllocationProblem::new(f.lifetimes.clone(), f.registers)
            .with_activity(f.activity.clone());
        let chains = lemra_baselines_shim::min_switching_register_allocation(&problem);
        let total: f64 = chains
            .iter()
            .map(|c| lemra_baselines_shim::chain_switching(&problem, c))
            .sum();
        assert!((total - 2.4).abs() < 1e-9, "phase-1 switching {total}");
    }

    // The workloads crate cannot depend on lemra-baselines (it would be a
    // cycle: baselines use workloads in their benches? they do not — but
    // keep layering clean). Re-derive the tiny bits needed for the test.
    mod lemra_baselines_shim {
        use lemra_core::AllocationProblem;
        use lemra_ir::VarId;

        pub fn min_switching_register_allocation(p: &AllocationProblem) -> Vec<Vec<VarId>> {
            // Brute force over the 6-variable instance: enumerate chain
            // partitions via the known compatibility and pick min switching.
            // For the figure-3 test only: pairs (a,b,c) x (d,e,f) style.
            // Simpler: exhaustively assign each var to one of 2 registers
            // and keep time-sorted chains that do not overlap.
            let table = &p.lifetimes;
            let n = table.len();
            let mut best: Option<(f64, Vec<Vec<VarId>>)> = None;
            for mask in 0..(1u32 << n) {
                let mut chains: Vec<Vec<VarId>> = vec![Vec::new(), Vec::new()];
                for v in 0..n {
                    chains[usize::from(mask & (1 << v) != 0)].push(VarId(v as u32));
                }
                if !chains.iter().all(|c| valid_chain(table, c)) {
                    continue;
                }
                let total: f64 = chains.iter().map(|c| chain_switching(p, c)).sum();
                if best.as_ref().is_none_or(|(b, _)| total < *b) {
                    best = Some((total, chains.clone()));
                }
            }
            best.expect("some partition is valid").1
        }

        fn valid_chain(table: &lemra_ir::LifetimeTable, chain: &[VarId]) -> bool {
            let len = table.block_len();
            let mut sorted = chain.to_vec();
            sorted.sort_by_key(|&v| table.lifetime(v).start());
            sorted
                .windows(2)
                .all(|w| table.lifetime(w[0]).end(len) < table.lifetime(w[1]).start())
        }

        pub fn chain_switching(p: &AllocationProblem, chain: &[VarId]) -> f64 {
            let table = &p.lifetimes;
            let mut sorted = chain.to_vec();
            sorted.sort_by_key(|&v| table.lifetime(v).start());
            if sorted.is_empty() {
                return 0.0;
            }
            let mut total = p.activity.initial(sorted[0]);
            for w in sorted.windows(2) {
                total += p.activity.hamming(w[0], w[1]);
            }
            total
        }
    }

    #[test]
    fn figure4_has_the_bridge_arc() {
        let f = figure4();
        let table = &f.lifetimes;
        let len = table.block_len();
        // f ends before b begins — the new f -> b arc is realisable.
        assert!(table.lifetime(f.var("f")).end(len) < table.lifetime(f.var("b")).start());
        assert!((f.activity.hamming(f.var("f"), f.var("b")) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn storage_demo_density() {
        let f = storage_demo();
        let p = DensityProfile::new(&f.lifetimes);
        assert_eq!(p.max(), 2);
        assert_eq!(p.max_regions().len(), 3);
    }
}
