//! Whole-program workload tier: thousands of variables across dozens of
//! linked blocks.
//!
//! Two generator families stress the multi-block pipeline at the scale the
//! single-block benches never reach:
//!
//! * [`loop_nest`] — register-pressure-aware loop-nest tiling in the style
//!   of Domagała et al. (arXiv 1406.0582): a nest is tiled into
//!   structurally **identical** blocks (one per tile) whose accumulators
//!   are live-out and linked to the next tile. Identical topology across
//!   tiles is the warm-start fast path — each worker re-prices one
//!   retained network per tile instead of rebuilding it.
//! * [`min_reg_trace`] — min-register scheduling traces in the style of
//!   Chen's GPU value-lifetime work (arXiv 2303.06855): bursty, per-block
//!   *distinct* lifetime patterns with alternating register budgets, so
//!   some boundaries carry values in memory and the parallel walk's
//!   misprediction/re-solve path gets exercised.
//!
//! Both are deterministic in their seed. Tier presets span 1k–8k variables
//! over 8–64 blocks (`tier_1k`/`tier_4k`/`tier_8k`).

use crate::random::random_patterns;
use lemra_core::{AllocationProblem, BlockChain};
use lemra_ir::{LifetimeTable, VarId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the tiled loop-nest generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopNestConfig {
    /// Number of tiles (= blocks in the chain).
    pub tiles: usize,
    /// Variables per tile, accumulators included.
    pub vars_per_tile: usize,
    /// Accumulators carried tile-to-tile (live-out, linked 1:1).
    pub accumulators: usize,
    /// Control steps per tile.
    pub steps: u32,
    /// Register-file size of every tile.
    pub registers: u32,
    /// Seed for the per-tile activity patterns.
    pub seed: u64,
}

impl LoopNestConfig {
    /// 1k-variable tier: 8 tiles × 128 variables.
    pub fn tier_1k(seed: u64) -> Self {
        Self {
            tiles: 8,
            vars_per_tile: 128,
            accumulators: 8,
            steps: 96,
            registers: 12,
            seed,
        }
    }

    /// 4k-variable tier: 32 tiles × 128 variables — the acceptance-floor
    /// instance (≥4k variables, ≥32 blocks).
    pub fn tier_4k(seed: u64) -> Self {
        Self {
            tiles: 32,
            ..Self::tier_1k(seed)
        }
    }

    /// 8k-variable tier: 64 tiles × 128 variables.
    pub fn tier_8k(seed: u64) -> Self {
        Self {
            tiles: 64,
            ..Self::tier_1k(seed)
        }
    }

    /// Total variables over the whole chain.
    pub fn total_vars(&self) -> usize {
        self.tiles * self.vars_per_tile
    }
}

/// One tile's lifetime table. Every tile of a nest shares this exact
/// topology; only activity differs.
fn tile_table(cfg: &LoopNestConfig) -> LifetimeTable {
    let steps = cfg.steps;
    let body = cfg.vars_per_tile - cfg.accumulators;
    let mut intervals = Vec::with_capacity(cfg.vars_per_tile);
    // Accumulators: defined at tile entry (carried in from the previous
    // tile), re-read at two interior update points, live-out into the next
    // tile.
    for _ in 0..cfg.accumulators {
        intervals.push((1, vec![steps / 3, 2 * steps / 3], true));
    }
    // Tile body: a sliding window of loads and short arithmetic
    // temporaries, defs staggered over the schedule so pressure stays
    // roughly level.
    for k in 0..body {
        let def = 1 + (k as u32 * (steps - 3)) / body.max(1) as u32;
        let span = 2 + (k % 5) as u32;
        let last = (def + span).min(steps);
        let reads = if last > def + 1 {
            vec![def + 1, last]
        } else {
            vec![last.max(def + 1).min(steps)]
        };
        intervals.push((def, reads, false));
    }
    LifetimeTable::from_intervals(steps, intervals).expect("tile intervals are valid")
}

/// Generates a tiled loop-nest chain (see module docs).
///
/// # Panics
///
/// Panics if `vars_per_tile <= accumulators` or `steps < 8`.
pub fn loop_nest(cfg: &LoopNestConfig) -> BlockChain {
    assert!(cfg.vars_per_tile > cfg.accumulators, "tile needs body vars");
    assert!(cfg.steps >= 8, "tile needs a real schedule");
    let table = tile_table(cfg);
    let blocks = (0..cfg.tiles)
        .map(|i| {
            AllocationProblem::new(table.clone(), cfg.registers).with_activity(random_patterns(
                cfg.vars_per_tile,
                cfg.seed ^ (i as u64) << 17,
            ))
        })
        .collect();
    let links = (0..cfg.tiles - 1)
        .map(|_| {
            (0..cfg.accumulators)
                .map(|j| (VarId(j as u32), VarId(j as u32)))
                .collect()
        })
        .collect();
    BlockChain { blocks, links }
}

/// Parameters of the min-register scheduling-trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinRegTraceConfig {
    /// Blocks in the trace.
    pub blocks: usize,
    /// Values defined per block.
    pub vars_per_block: usize,
    /// Control steps per block.
    pub steps: u32,
    /// Base register budget; every third block gets a squeezed budget so
    /// boundary values spill to memory there.
    pub registers: u32,
    /// RNG seed (lifetime jitter and activity).
    pub seed: u64,
}

impl MinRegTraceConfig {
    /// 2k-value tier: 16 blocks × 128 values.
    pub fn tier_2k(seed: u64) -> Self {
        Self {
            blocks: 16,
            vars_per_block: 128,
            steps: 96,
            registers: 10,
            seed,
        }
    }
}

/// Generates a min-register scheduling trace: per-block distinct bursty
/// lifetimes, value 0 of each block handed to value 0 of the next, register
/// budgets alternating between ample and squeezed.
///
/// # Panics
///
/// Panics if `vars_per_block < 4`, `steps < 8`, or `registers < 2`.
pub fn min_reg_trace(cfg: &MinRegTraceConfig) -> BlockChain {
    assert!(cfg.vars_per_block >= 4 && cfg.steps >= 8 && cfg.registers >= 2);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let blocks = (0..cfg.blocks)
        .map(|i| {
            let mut intervals = Vec::with_capacity(cfg.vars_per_block);
            // The carried value: defined at entry, read once early, then a
            // long silent live-out tail — under a squeezed budget the
            // solver parks that tail in memory, spilling the boundary.
            intervals.push((1, vec![3], true));
            for _ in 1..cfg.vars_per_block {
                let def = rng.gen_range(1..cfg.steps - 1);
                let reach = rng.gen_range(1..=4).min(cfg.steps - def);
                intervals.push((def, vec![def + reach], false));
            }
            let table = LifetimeTable::from_intervals(cfg.steps, intervals)
                .expect("trace intervals are valid");
            let registers = if i % 3 == 2 { 2 } else { cfg.registers };
            AllocationProblem::new(table, registers).with_activity(random_patterns(
                cfg.vars_per_block,
                cfg.seed ^ (i as u64) << 9,
            ))
        })
        .collect();
    let links = (0..cfg.blocks - 1)
        .map(|_| vec![(VarId(0), VarId(0))])
        .collect();
    BlockChain { blocks, links }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemra_core::{allocate_chain_threads, allocate_program_threads};

    #[test]
    fn loop_nest_tiers_have_advertised_scale() {
        let cfg = LoopNestConfig::tier_4k(1);
        assert_eq!(cfg.total_vars(), 4096);
        assert_eq!(cfg.tiles, 32);
        let chain = loop_nest(&cfg);
        assert_eq!(chain.blocks.len(), 32);
        assert_eq!(chain.links.len(), 31);
        assert_eq!(chain.blocks[0].lifetimes.len(), 128);
    }

    #[test]
    fn loop_nest_is_deterministic_in_seed() {
        let a = loop_nest(&LoopNestConfig::tier_1k(5));
        let b = loop_nest(&LoopNestConfig::tier_1k(5));
        assert_eq!(format!("{:?}", a.blocks[3]), format!("{:?}", b.blocks[3]));
    }

    #[test]
    fn small_nest_allocates_parallel_equals_serial() {
        let cfg = LoopNestConfig {
            tiles: 6,
            vars_per_tile: 24,
            accumulators: 4,
            steps: 20,
            registers: 6,
            seed: 9,
        };
        let chain = loop_nest(&cfg);
        let serial = allocate_chain_threads(&chain, 1).unwrap();
        let parallel = allocate_chain_threads(&chain, 4).unwrap();
        assert_eq!(serial.reports, parallel.reports);
    }

    #[test]
    fn min_reg_trace_spills_some_boundaries() {
        let cfg = MinRegTraceConfig {
            blocks: 9,
            vars_per_block: 16,
            steps: 12,
            registers: 4,
            seed: 2,
        };
        let chain = min_reg_trace(&cfg);
        let program = allocate_program_threads(&chain, 2).unwrap();
        assert_eq!(program.realloc.len(), 9);
        // At least one squeezed block forces a memory carry somewhere.
        let memory_carries: usize = program
            .chain
            .problems
            .iter()
            .map(|p| p.carried_in_memory.len())
            .sum();
        assert!(memory_carries > 0, "expected at least one spilled boundary");
    }
}
