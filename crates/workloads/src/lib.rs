//! Workload generators for `lemra`.
//!
//! * [`paper_examples`] — reconstructions of the paper's Figure 1, 3 and 4
//!   instances (with the published switching-activity tables) plus a
//!   supplementary minimum-storage demonstrator;
//! * [`dsp`] — classic DSP kernels (FIR, IIR biquad, FFT stage, lattice,
//!   elliptic-like cascade) as schedulable data-flow graphs;
//! * [`rsp`] — the deterministic synthetic radar-signal-processing kernel
//!   substituting Table 1's proprietary industrial trace (max lifetime
//!   density 26);
//! * [`random`] — seeded random instances for property tests and the
//!   polynomial-scaling benchmarks;
//! * [`wholeprogram`] — the whole-program tier: tiled loop-nest chains and
//!   min-register scheduling traces, 1k–8k variables across 8–64 linked
//!   blocks for the multi-block pipeline benches.
//!
//! # Examples
//!
//! ```
//! use lemra_workloads::{dsp, rsp::{rsp, RspConfig}};
//! use lemra_ir::{asap, LifetimeTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let block = dsp::fir(8)?;
//! let schedule = asap(&block)?;
//! let lifetimes = LifetimeTable::from_schedule(&block, &schedule)?;
//! assert!(lifetimes.len() > 16);
//!
//! let radar = rsp(&RspConfig::default());
//! assert!(radar.lifetimes.len() > 40);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsp;
pub mod paper_examples;
pub mod random;
pub mod rsp;
pub mod wholeprogram;
