//! Classic DSP kernels as data-flow graphs — the workload family the
//! paper's introduction motivates ("audio and video algorithms which
//! process large amounts of data, performing computations in real time").
//!
//! Each builder returns a [`BasicBlock`]; pair it with a scheduler from
//! [`lemra_ir`] and [`LifetimeTable::from_schedule`] to obtain an
//! allocation problem.
//!
//! [`LifetimeTable::from_schedule`]: lemra_ir::LifetimeTable::from_schedule

use lemra_ir::{BasicBlock, IrError, OpKind, VarId};

/// `taps`-tap FIR filter: `y = Σ c_i · x_i` with a balanced adder tree.
///
/// # Errors
///
/// Propagates [`IrError`] from block construction (cannot happen for
/// `taps >= 1`).
///
/// # Panics
///
/// Panics if `taps` is zero.
pub fn fir(taps: usize) -> Result<BasicBlock, IrError> {
    assert!(taps >= 1, "FIR filter needs at least one tap");
    let mut bb = BasicBlock::new(format!("fir{taps}"));
    let mut products = Vec::with_capacity(taps);
    for i in 0..taps {
        let x = bb.input(format!("x{i}"));
        let c = bb.input(format!("c{i}"));
        products.push(bb.op(OpKind::Mul, &[x, c], format!("p{i}"))?);
    }
    let y = adder_tree(&mut bb, &products, "acc")?;
    bb.output(y)?;
    Ok(bb)
}

/// Direct-form-II IIR biquad cascade with `sections` second-order sections.
///
/// # Errors
///
/// Propagates [`IrError`] from block construction.
///
/// # Panics
///
/// Panics if `sections` is zero.
pub fn iir_biquad(sections: usize) -> Result<BasicBlock, IrError> {
    assert!(sections >= 1, "IIR cascade needs at least one section");
    let mut bb = BasicBlock::new(format!("iir{sections}"));
    let mut x = bb.input("x");
    for s in 0..sections {
        let z1 = bb.input(format!("s{s}_z1"));
        let z2 = bb.input(format!("s{s}_z2"));
        let a1 = bb.input(format!("s{s}_a1"));
        let a2 = bb.input(format!("s{s}_a2"));
        let b0 = bb.input(format!("s{s}_b0"));
        let b1 = bb.input(format!("s{s}_b1"));
        let b2 = bb.input(format!("s{s}_b2"));
        // w = x - a1*z1 - a2*z2
        let t1 = bb.op(OpKind::Mul, &[a1, z1], format!("s{s}_t1"))?;
        let t2 = bb.op(OpKind::Mul, &[a2, z2], format!("s{s}_t2"))?;
        let u = bb.op(OpKind::Add, &[x, t1], format!("s{s}_u"))?;
        let w = bb.op(OpKind::Add, &[u, t2], format!("s{s}_w"))?;
        // y = b0*w + b1*z1 + b2*z2
        let m0 = bb.op(OpKind::Mul, &[b0, w], format!("s{s}_m0"))?;
        let m1 = bb.op(OpKind::Mul, &[b1, z1], format!("s{s}_m1"))?;
        let m2 = bb.op(OpKind::Mul, &[b2, z2], format!("s{s}_m2"))?;
        let v = bb.op(OpKind::Add, &[m0, m1], format!("s{s}_v"))?;
        let y = bb.op(OpKind::Add, &[v, m2], format!("s{s}_y"))?;
        // New delay-line state flows out of the block.
        bb.output(w)?;
        bb.output(z1)?;
        x = y;
    }
    bb.output(x)?;
    Ok(bb)
}

/// One radix-2 FFT stage over `points` complex points (butterflies with
/// twiddle multiplication; real/imag carried as separate variables).
///
/// # Errors
///
/// Propagates [`IrError`] from block construction.
///
/// # Panics
///
/// Panics if `points` is not an even number ≥ 2.
pub fn fft_stage(points: usize) -> Result<BasicBlock, IrError> {
    assert!(points >= 2 && points % 2 == 0, "FFT stage needs 2k points");
    let mut bb = BasicBlock::new(format!("fft{points}"));
    let half = points / 2;
    for k in 0..half {
        let ar = bb.input(format!("a{k}_re"));
        let ai = bb.input(format!("a{k}_im"));
        let br = bb.input(format!("b{k}_re"));
        let bi = bb.input(format!("b{k}_im"));
        let wr = bb.input(format!("w{k}_re"));
        let wi = bb.input(format!("w{k}_im"));
        // t = w * b (complex)
        let p0 = bb.op(OpKind::Mul, &[wr, br], format!("bf{k}_p0"))?;
        let p1 = bb.op(OpKind::Mul, &[wi, bi], format!("bf{k}_p1"))?;
        let p2 = bb.op(OpKind::Mul, &[wr, bi], format!("bf{k}_p2"))?;
        let p3 = bb.op(OpKind::Mul, &[wi, br], format!("bf{k}_p3"))?;
        let tr = bb.op(OpKind::Add, &[p0, p1], format!("bf{k}_tr"))?;
        let ti = bb.op(OpKind::Add, &[p2, p3], format!("bf{k}_ti"))?;
        // out0 = a + t, out1 = a - t
        let o0r = bb.op(OpKind::Add, &[ar, tr], format!("bf{k}_o0r"))?;
        let o0i = bb.op(OpKind::Add, &[ai, ti], format!("bf{k}_o0i"))?;
        let o1r = bb.op(OpKind::Add, &[ar, tr], format!("bf{k}_o1r"))?;
        let o1i = bb.op(OpKind::Add, &[ai, ti], format!("bf{k}_o1i"))?;
        for v in [o0r, o0i, o1r, o1i] {
            bb.output(v)?;
        }
    }
    Ok(bb)
}

/// `stages`-stage normalised lattice filter.
///
/// # Errors
///
/// Propagates [`IrError`] from block construction.
///
/// # Panics
///
/// Panics if `stages` is zero.
pub fn lattice(stages: usize) -> Result<BasicBlock, IrError> {
    assert!(stages >= 1, "lattice filter needs at least one stage");
    let mut bb = BasicBlock::new(format!("lattice{stages}"));
    let mut f = bb.input("f0");
    let mut g = bb.input("g0");
    for s in 0..stages {
        let k = bb.input(format!("k{s}"));
        let kf = bb.op(OpKind::Mul, &[k, f], format!("st{s}_kf"))?;
        let kg = bb.op(OpKind::Mul, &[k, g], format!("st{s}_kg"))?;
        let nf = bb.op(OpKind::Add, &[f, kg], format!("st{s}_f"))?;
        let ng = bb.op(OpKind::Add, &[g, kf], format!("st{s}_g"))?;
        bb.output(ng)?;
        f = nf;
        g = ng;
    }
    bb.output(f)?;
    Ok(bb)
}

/// Fifth-order elliptic-wave-filter-like cascade (the shape of the classic
/// HLS benchmark: long add chains with a few multiplies and rich value
/// reuse).
///
/// # Errors
///
/// Propagates [`IrError`] from block construction.
pub fn elliptic_cascade() -> Result<BasicBlock, IrError> {
    let mut bb = BasicBlock::new("elliptic");
    let x = bb.input("x");
    let s: Vec<VarId> = (0..7).map(|i| bb.input(format!("state{i}"))).collect();
    let c0 = bb.input("c0");
    let c1 = bb.input("c1");

    let a1 = bb.op(OpKind::Add, &[x, s[0]], "a1")?;
    let a2 = bb.op(OpKind::Add, &[a1, s[1]], "a2")?;
    let m1 = bb.op(OpKind::Mul, &[a2, c0], "m1")?;
    let a3 = bb.op(OpKind::Add, &[m1, s[2]], "a3")?;
    let a4 = bb.op(OpKind::Add, &[a3, s[3]], "a4")?;
    let m2 = bb.op(OpKind::Mul, &[a4, c1], "m2")?;
    let a5 = bb.op(OpKind::Add, &[m2, a1], "a5")?;
    let a6 = bb.op(OpKind::Add, &[a5, s[4]], "a6")?;
    let a7 = bb.op(OpKind::Add, &[a6, a3], "a7")?;
    let a8 = bb.op(OpKind::Add, &[a7, s[5]], "a8")?;
    let m3 = bb.op(OpKind::Mul, &[a8, c0], "m3")?;
    let a9 = bb.op(OpKind::Add, &[m3, s[6]], "a9")?;
    let a10 = bb.op(OpKind::Add, &[a9, a5], "a10")?;
    // Updated states flow out.
    for v in [a2, a4, a6, a8, a10] {
        bb.output(v)?;
    }
    Ok(bb)
}

/// 2×2 matrix multiply `C = A · B` (8 multiplies, 4 adds) — a dense kernel
/// with high multiplier pressure.
///
/// # Errors
///
/// Propagates [`IrError`] from block construction.
pub fn matmul2() -> Result<BasicBlock, IrError> {
    let mut bb = BasicBlock::new("matmul2");
    let a: Vec<VarId> = (0..4).map(|i| bb.input(format!("a{i}"))).collect();
    let b: Vec<VarId> = (0..4).map(|i| bb.input(format!("b{i}"))).collect();
    for row in 0..2 {
        for col in 0..2 {
            let p = bb.op(OpKind::Mul, &[a[2 * row], b[col]], format!("p{row}{col}a"))?;
            let q = bb.op(
                OpKind::Mul,
                &[a[2 * row + 1], b[2 + col]],
                format!("p{row}{col}b"),
            )?;
            let c = bb.op(OpKind::Add, &[p, q], format!("c{row}{col}"))?;
            bb.output(c)?;
        }
    }
    Ok(bb)
}

/// `lags`-lag autocorrelation of an `n`-sample window:
/// `r[k] = Σ x[i]·x[i+k]` — every sample is read many times, exercising
/// split lifetimes heavily.
///
/// # Errors
///
/// Propagates [`IrError`] from block construction.
///
/// # Panics
///
/// Panics unless `0 < lags < n`.
pub fn autocorrelation(n: usize, lags: usize) -> Result<BasicBlock, IrError> {
    assert!(lags > 0 && lags < n, "need 0 < lags < n");
    let mut bb = BasicBlock::new(format!("autocorr{n}x{lags}"));
    let x: Vec<VarId> = (0..n).map(|i| bb.input(format!("x{i}"))).collect();
    for k in 0..lags {
        let mut products = Vec::new();
        for i in 0..n - k {
            products.push(bb.op(OpKind::Mul, &[x[i], x[i + k]], format!("m{k}_{i}"))?);
        }
        let r = adder_tree(&mut bb, &products, &format!("r{k}"))?;
        bb.output(r)?;
    }
    Ok(bb)
}

/// An 8-point DCT-II-shaped butterfly network (three stages of add/sub
/// butterflies followed by coefficient multiplies).
///
/// # Errors
///
/// Propagates [`IrError`] from block construction.
pub fn dct8() -> Result<BasicBlock, IrError> {
    let mut bb = BasicBlock::new("dct8");
    let x: Vec<VarId> = (0..8).map(|i| bb.input(format!("x{i}"))).collect();
    // Stage 1: mirror butterflies.
    let mut s1 = Vec::with_capacity(8);
    for i in 0..4 {
        s1.push(bb.op(OpKind::Add, &[x[i], x[7 - i]], format!("s1a{i}"))?);
    }
    for i in 0..4 {
        s1.push(bb.op(OpKind::Add, &[x[i], x[7 - i]], format!("s1b{i}"))?);
    }
    // Stage 2: half-size butterflies on each half.
    let mut s2 = Vec::with_capacity(8);
    for i in 0..2 {
        s2.push(bb.op(OpKind::Add, &[s1[i], s1[3 - i]], format!("s2a{i}"))?);
        s2.push(bb.op(OpKind::Add, &[s1[i], s1[3 - i]], format!("s2b{i}"))?);
    }
    for (i, &s1i) in s1.iter().enumerate().skip(4) {
        let c = bb.input(format!("c{i}"));
        s2.push(bb.op(OpKind::Mul, &[s1i, c], format!("s2m{i}"))?);
    }
    // Stage 3: outputs.
    for (i, pair) in s2.chunks(2).enumerate() {
        let y = if pair.len() == 2 {
            bb.op(OpKind::Add, &[pair[0], pair[1]], format!("y{i}"))?
        } else {
            pair[0]
        };
        bb.output(y)?;
    }
    Ok(bb)
}

/// Balanced binary adder tree reducing `leaves` to one value.
fn adder_tree(bb: &mut BasicBlock, leaves: &[VarId], prefix: &str) -> Result<VarId, IrError> {
    let mut level: Vec<VarId> = leaves.to_vec();
    let mut depth = 0;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for (i, pair) in level.chunks(2).enumerate() {
            if pair.len() == 2 {
                next.push(bb.op(
                    OpKind::Add,
                    &[pair[0], pair[1]],
                    format!("{prefix}_{depth}_{i}"),
                )?);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
        depth += 1;
    }
    Ok(level[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemra_ir::{asap, list_schedule, DensityProfile, LifetimeTable, ResourceSet};

    fn density_of(bb: &BasicBlock) -> u32 {
        let s = asap(bb).unwrap();
        let t = LifetimeTable::from_schedule(bb, &s).unwrap();
        DensityProfile::new(&t).max()
    }

    #[test]
    fn fir_builds_and_schedules() {
        for taps in [1, 4, 8, 16] {
            let bb = fir(taps).unwrap();
            bb.validate().unwrap();
            assert!(density_of(&bb) >= taps as u32 / 2);
        }
    }

    #[test]
    fn resource_constraints_stretch_fir() {
        let bb = fir(8).unwrap();
        let free = asap(&bb).unwrap().length();
        let tight = list_schedule(&bb, ResourceSet::new(1, 1)).unwrap().length();
        assert!(tight > free);
    }

    #[test]
    fn iir_builds() {
        let bb = iir_biquad(3).unwrap();
        bb.validate().unwrap();
        let s = asap(&bb).unwrap();
        LifetimeTable::from_schedule(&bb, &s).unwrap();
    }

    #[test]
    fn fft_stage_builds() {
        let bb = fft_stage(8).unwrap();
        bb.validate().unwrap();
        assert!(density_of(&bb) >= 8);
    }

    #[test]
    fn lattice_and_elliptic_build() {
        lattice(5).unwrap().validate().unwrap();
        let e = elliptic_cascade().unwrap();
        e.validate().unwrap();
        let s = asap(&e).unwrap();
        let t = LifetimeTable::from_schedule(&e, &s).unwrap();
        assert!(t.len() > 15);
    }

    #[test]
    fn matmul_autocorr_dct_build() {
        matmul2().unwrap().validate().unwrap();
        dct8().unwrap().validate().unwrap();
        let ac = autocorrelation(6, 3).unwrap();
        ac.validate().unwrap();
        // Each sample is read once per lag; under a serialising schedule
        // (one multiplier) those reads land on distinct steps, producing
        // split lifetimes.
        let s = list_schedule(&ac, ResourceSet::new(1, 1)).unwrap();
        let t = LifetimeTable::from_schedule(&ac, &s).unwrap();
        assert!(t.iter().take(6).any(|lt| lt.read_count() >= 3));
    }

    #[test]
    fn kernels_allocate_end_to_end() {
        let bb = fir(6).unwrap();
        let s = list_schedule(&bb, ResourceSet::new(2, 2)).unwrap();
        let t = LifetimeTable::from_schedule(&bb, &s).unwrap();
        let p = lemra_core::AllocationProblem::new(t, 4);
        let a = lemra_core::allocate(&p).unwrap();
        lemra_core::validate(&p, &a).unwrap();
    }
}
