//! Synthetic radar-signal-processing (RSP) workload — the Table 1
//! substitute.
//!
//! The paper's Table 1 evaluates "a real industrial example (radar signal
//! processing algorithm)" with a **maximum density of variable lifetimes of
//! 26** and a 16-register file, sweeping the memory frequency over `f`,
//! `f/2`, `f/4` with supply scaling from 5 V to 2 V. The industrial trace
//! was never published; this module generates a deterministic kernel with
//! the same structural signature (DESIGN.md §1, substitution 1):
//!
//! * long-lived *channel accumulators* read several times (split
//!   lifetimes),
//! * a sliding window of input samples (staggered medium lifetimes),
//! * short-lived twiddle/magnitude temporaries (bursty pressure),
//!
//! tuned so the default configuration's maximum lifetime density is
//! exactly 26.

use lemra_ir::{ActivitySource, LifetimeTable, VarId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic RSP kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RspConfig {
    /// Long-lived accumulator channels (read at three evenly spaced steps,
    /// live-out).
    pub channels: usize,
    /// Length of the sliding sample window in steps.
    pub window: u32,
    /// Schedule length in control steps.
    pub steps: u32,
    /// RNG seed for the representative bit patterns.
    pub seed: u64,
}

impl Default for RspConfig {
    fn default() -> Self {
        Self {
            channels: 16,
            window: 8,
            steps: 32,
            seed: 0x1997_0607,
        }
    }
}

/// The generated workload: lifetimes plus a bit-pattern activity source.
#[derive(Debug, Clone)]
pub struct RspWorkload {
    /// Variable lifetimes.
    pub lifetimes: LifetimeTable,
    /// Representative bit patterns for the activity model.
    pub activity: ActivitySource,
}

/// Generates the synthetic RSP kernel.
///
/// # Panics
///
/// Panics if the configuration is degenerate (`steps` too small to place
/// the accumulator reads).
pub fn rsp(config: &RspConfig) -> RspWorkload {
    let t = config.steps;
    assert!(t >= 8, "RSP kernel needs at least 8 steps");
    let mut intervals: Vec<(u32, Vec<u32>, bool)> = Vec::new();

    // Channel accumulators: defs staggered across the first two
    // memory-access grid points (steps 1 and 5 — aligned for every Table 1
    // period c in {1, 2, 4}), three spread reads, live-out.
    for j in 0..config.channels {
        let def = 1 + (j as u32 % 2) * 4;
        let r1 = def + t / 4;
        let r2 = def + t / 2;
        let r3 = def + (3 * t) / 4;
        intervals.push((def, vec![r1, r2, r3], true));
    }

    // Sliding window of samples: one new sample per step.
    for s in 1..t.saturating_sub(config.window) {
        intervals.push((s, vec![s + config.window], false));
    }

    // Twiddle/magnitude temporaries: two short pairs every fourth step.
    let mut s = 2;
    while s + 2 <= t {
        intervals.push((s, vec![s + 1], false));
        intervals.push((s, vec![s + 2], false));
        s += 4;
    }

    let lifetimes = LifetimeTable::from_intervals(t, intervals)
        .expect("generated RSP intervals are well-formed");

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let patterns: Vec<u64> = (0..lifetimes.len())
        .map(|_| rng.gen::<u64>() & 0xFFFF)
        .collect();
    RspWorkload {
        lifetimes,
        activity: ActivitySource::BitPatterns {
            patterns,
            width: 16,
        },
    }
}

/// The variable ids of the accumulator channels (useful for inspection).
pub fn channel_vars(config: &RspConfig) -> Vec<VarId> {
    (0..config.channels as u32).map(VarId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemra_ir::DensityProfile;

    #[test]
    fn default_config_matches_table1_signature() {
        let w = rsp(&RspConfig::default());
        let density = DensityProfile::new(&w.lifetimes).max();
        assert_eq!(
            density, 26,
            "default RSP config must match the paper's reported max density"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = rsp(&RspConfig::default());
        let b = rsp(&RspConfig::default());
        assert_eq!(a.lifetimes, b.lifetimes);
        assert_eq!(a.activity, b.activity);
    }

    #[test]
    fn accumulators_have_split_lifetimes() {
        let cfg = RspConfig::default();
        let w = rsp(&cfg);
        for v in channel_vars(&cfg) {
            let lt = w.lifetimes.lifetime(v);
            assert!(lt.read_count() >= 3);
            assert!(lt.live_out);
        }
    }

    #[test]
    fn allocates_under_all_table1_periods() {
        let w = rsp(&RspConfig::default());
        for c in [1, 2, 4] {
            let p = lemra_core::AllocationProblem::new(w.lifetimes.clone(), 16)
                .with_access_period(c)
                .with_activity(w.activity.clone());
            let a = lemra_core::allocate(&p).expect("table 1 rows are feasible");
            lemra_core::validate(&p, &a).unwrap();
        }
    }
}
