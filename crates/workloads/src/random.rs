//! Seeded random workload generation for property tests and the solver
//! scaling benchmarks (the paper's polynomial-time claim, §4/§7).

use lemra_ir::{ActivitySource, LifetimeTable};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomConfig {
    /// Number of variables.
    pub vars: usize,
    /// Schedule length in control steps.
    pub steps: u32,
    /// Maximum reads per variable (≥ 1).
    pub max_reads: u32,
    /// Probability (percent) that a variable is live-out.
    pub live_out_pct: u32,
    /// RNG seed.
    pub seed: u64,
}

impl RandomConfig {
    /// A medium instance for quick tests.
    pub fn small(seed: u64) -> Self {
        Self {
            vars: 24,
            steps: 20,
            max_reads: 3,
            live_out_pct: 15,
            seed,
        }
    }

    /// A scaling instance with `vars` variables (steps grow with it).
    pub fn scaled(vars: usize, seed: u64) -> Self {
        Self {
            vars,
            steps: (vars as u32).max(8),
            max_reads: 3,
            live_out_pct: 10,
            seed,
        }
    }
}

/// Generates a random lifetime table.
///
/// Deterministic in the seed; all lifetimes are valid (def before first
/// read, reads strictly increasing, within the block).
pub fn random_lifetimes(config: &RandomConfig) -> LifetimeTable {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut intervals = Vec::with_capacity(config.vars);
    for _ in 0..config.vars {
        let def = rng.gen_range(1..config.steps);
        let live_out = rng.gen_range(0..100) < config.live_out_pct;
        let n_reads = if live_out {
            rng.gen_range(0..=config.max_reads)
        } else {
            rng.gen_range(1..=config.max_reads)
        };
        let mut reads: Vec<u32> = (0..n_reads)
            .filter(|&_| def < config.steps)
            .map(|_| rng.gen_range(def + 1..=config.steps))
            .collect();
        reads.sort_unstable();
        reads.dedup();
        if reads.is_empty() && !live_out {
            reads.push((def + 1).min(config.steps));
        }
        if reads.last().is_some_and(|&r| r <= def) || (reads.is_empty() && !live_out) {
            // def == steps and not live-out: retry as live-out.
            intervals.push((def, Vec::new(), true));
        } else {
            intervals.push((def, reads, live_out));
        }
    }
    LifetimeTable::from_intervals(config.steps, intervals).expect("generator emits valid intervals")
}

/// Random 16-bit representative patterns for `n` variables.
pub fn random_patterns(n: usize, seed: u64) -> ActivitySource {
    let mut rng = SmallRng::seed_from_u64(seed);
    ActivitySource::BitPatterns {
        patterns: (0..n).map(|_| rng.gen::<u64>() & 0xFFFF).collect(),
        width: 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = random_lifetimes(&RandomConfig::small(7));
        let b = random_lifetimes(&RandomConfig::small(7));
        assert_eq!(a, b);
        let c = random_lifetimes(&RandomConfig::small(8));
        assert_ne!(a, c);
    }

    #[test]
    fn many_seeds_produce_valid_tables() {
        for seed in 0..50 {
            let t = random_lifetimes(&RandomConfig::small(seed));
            assert_eq!(t.len(), 24);
        }
    }

    #[test]
    fn scaled_instances_allocate() {
        let t = random_lifetimes(&RandomConfig::scaled(64, 3));
        let p = lemra_core::AllocationProblem::new(t, 8).with_activity(random_patterns(64, 3));
        let a = lemra_core::allocate(&p).unwrap();
        lemra_core::validate(&p, &a).unwrap();
    }
}
