//! The Chang–Pedram DAC'95 baseline \[8\]: low-power **register allocation**
//! by network flow, *without* memory partitioning — followed by a separate
//! partition step, the "previous research" the paper's Figure 3 compares
//! against.
//!
//! Phase 1 allocates every variable to `k` symbolic registers (`k` = the
//! maximum lifetime density — the fewest that fit) so that total switching
//! activity is minimal, using a min-cost flow over the compatibility graph
//! of *all* non-overlapping lifetimes (ref \[8\]'s graph; the paper's §6 uses
//! it for Figure 4a/b as well).
//!
//! Phase 2 partitions the symbolic registers: the `R` chains with the
//! *highest* switching activity stay in the register file ("ideally place
//! the registers with highest switching activity in the register file
//! (since average switched capacitance is smaller)", §6) and the rest are
//! demoted to memory.

use crate::BaselineError;
use lemra_core::{Allocation, AllocationProblem};
use lemra_ir::{DensityProfile, VarId};
use lemra_netflow::{ArcId, FlowNetwork, LemraConfig};

/// Result of the two-phase baseline.
#[derive(Debug, Clone)]
pub struct TwoPhaseResult {
    /// Per-variable placement after partitioning (register index or memory).
    pub allocation: Allocation,
    /// Symbolic register chains of phase 1, each with its switching total,
    /// ordered as allocated (before partitioning).
    pub symbolic_chains: Vec<(Vec<VarId>, f64)>,
    /// Total switching activity of phase 1 (all variables in registers) —
    /// Figure 3a's "2.4".
    pub phase1_switching: f64,
}

/// Runs register allocation first (minimum total switching over `k` =
/// max-density symbolic registers), then partitions the chains into the
/// `problem.registers` real registers plus memory.
///
/// # Errors
///
/// Returns [`BaselineError`] if phase 1 is infeasible (cannot happen for
/// valid lifetime tables) or the resulting placement is structurally
/// invalid.
pub fn two_phase(problem: &AllocationProblem) -> Result<TwoPhaseResult, BaselineError> {
    let chains = min_switching_register_allocation(problem)?;

    // Chain switching totals (initial write + transitions).
    let mut scored: Vec<(usize, f64)> = chains
        .iter()
        .enumerate()
        .map(|(i, chain)| (i, chain_switching(problem, chain)))
        .collect();
    let phase1_switching: f64 = scored.iter().map(|(_, s)| s).sum();

    // Keep the highest-activity chains in the register file.
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let keep: Vec<usize> = scored
        .iter()
        .take(problem.registers as usize)
        .map(|&(i, _)| i)
        .collect();

    let mut placement_of_var: Vec<Option<u32>> = vec![None; problem.lifetimes.len()];
    for (new_reg, &chain_idx) in keep.iter().enumerate() {
        for &v in &chains[chain_idx] {
            placement_of_var[v.index()] = Some(new_reg as u32);
        }
    }
    let allocation =
        Allocation::from_var_placements(problem, &placement_of_var).map_err(BaselineError::Core)?;

    Ok(TwoPhaseResult {
        allocation,
        symbolic_chains: chains
            .iter()
            .map(|c| (c.clone(), chain_switching(problem, c)))
            .collect(),
        phase1_switching,
    })
}

/// Phase 1: assign all variables to the minimum number of registers with
/// minimum total switching activity (the \[8\] optimisation).
///
/// # Errors
///
/// Returns [`BaselineError::Infeasible`] if the flow problem cannot cover
/// every variable (impossible for a valid lifetime table).
pub fn min_switching_register_allocation(
    problem: &AllocationProblem,
) -> Result<Vec<Vec<VarId>>, BaselineError> {
    let table = &problem.lifetimes;
    let k = DensityProfile::new(table).max() as i64;
    if k == 0 {
        return Ok(Vec::new());
    }
    const SCALE: f64 = 1e6;
    let quant = |h: f64| (h * SCALE).round() as i64;

    let mut net = FlowNetwork::new();
    let s = net.add_node();
    let t = net.add_node();
    let n = table.len();
    let mut var_arc: Vec<ArcId> = Vec::with_capacity(n);
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let w = net.add_node();
        let r = net.add_node();
        nodes.push((w, r));
    }
    for (i, lt) in table.iter().enumerate() {
        // Every variable must receive a register: lower bound 1.
        var_arc.push(net.add_arc_bounded(nodes[i].0, nodes[i].1, 1, 1, 0)?);
        net.add_arc(s, nodes[i].0, 1, quant(problem.activity.initial(lt.var)))?;
        net.add_arc(nodes[i].1, t, 1, 0)?;
    }
    let mut handoffs: Vec<(ArcId, usize, usize)> = Vec::new();
    for (i, l1) in table.iter().enumerate() {
        for (j, l2) in table.iter().enumerate() {
            if i == j || l1.end(table.block_len()) >= l2.start() {
                continue;
            }
            let arc = net.add_arc(
                nodes[i].1,
                nodes[j].0,
                1,
                quant(problem.activity.hamming(l1.var, l2.var)),
            )?;
            handoffs.push((arc, i, j));
        }
    }
    net.add_arc(s, t, k, 0)?;

    let sol = LemraConfig::get()
        .backend
        .solve(&net, s, t, k)
        .map_err(|e| match e {
            lemra_netflow::NetflowError::Infeasible { required, achieved } => {
                BaselineError::Infeasible { required, achieved }
            }
            other => BaselineError::Flow(other),
        })?;

    // Chains via successor pointers.
    let mut successor: Vec<Option<usize>> = vec![None; n];
    let mut has_pred = vec![false; n];
    for &(arc, i, j) in &handoffs {
        if sol.flow(arc) == 1 {
            successor[i] = Some(j);
            has_pred[j] = true;
        }
    }
    let mut chains = Vec::new();
    #[allow(clippy::needless_range_loop)] // index drives parallel lookups
    for start in 0..n {
        if has_pred[start] {
            continue;
        }
        let mut chain = Vec::new();
        let mut cur = Some(start);
        while let Some(i) = cur {
            chain.push(VarId(i as u32));
            cur = successor[i];
        }
        chains.push(chain);
    }
    Ok(chains)
}

/// Switching activity of one chain: initial write plus transitions.
pub fn chain_switching(problem: &AllocationProblem, chain: &[VarId]) -> f64 {
    if chain.is_empty() {
        return 0.0;
    }
    let mut total = problem.activity.initial(chain[0]);
    for pair in chain.windows(2) {
        total += problem.activity.hamming(pair[0], pair[1]);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemra_ir::{ActivitySource, LifetimeTable};

    fn problem() -> AllocationProblem {
        // a=[1,2], b=[2,4]; c=[1,3], d=[3,4]. Density 2.
        let t = LifetimeTable::from_intervals(
            4,
            vec![
                (1, vec![2], false),
                (2, vec![4], false),
                (1, vec![3], false),
                (3, vec![4], false),
            ],
        )
        .unwrap();
        AllocationProblem::new(t, 1).with_activity(ActivitySource::from_pairs([
            (VarId(0), VarId(1), 0.1), // a->b cheap
            (VarId(0), VarId(3), 0.9),
            (VarId(2), VarId(3), 0.2), // c->d cheap
            (VarId(2), VarId(1), 0.9),
        ]))
    }

    #[test]
    fn phase1_picks_min_switching_chains() {
        let p = problem();
        let chains = min_switching_register_allocation(&p).unwrap();
        assert_eq!(chains.len(), 2);
        let mut sorted: Vec<Vec<VarId>> = chains;
        sorted.sort();
        assert_eq!(sorted[0], vec![VarId(0), VarId(1)]); // a -> b
        assert_eq!(sorted[1], vec![VarId(2), VarId(3)]); // c -> d
    }

    #[test]
    fn phase1_switching_totals() {
        let p = problem();
        let r = two_phase(&p).unwrap();
        // 0.5 + 0.1 + 0.5 + 0.2 = 1.3
        assert!((r.phase1_switching - 1.3).abs() < 1e-9);
    }

    #[test]
    fn phase2_keeps_highest_activity_chain() {
        let p = problem();
        let r = two_phase(&p).unwrap();
        // Chain c->d (0.7) has higher activity than a->b (0.6): kept.
        assert_eq!(r.allocation.registers_used(), 1);
        let report = lemra_core::AllocationReport::new(&p, &r.allocation);
        assert!((report.register_switching - 0.7).abs() < 1e-9);
        // a and b are in memory: 2 writes + 2 reads.
        assert_eq!(report.mem_writes, 2);
        assert_eq!(report.mem_reads, 2);
    }

    #[test]
    fn all_chains_kept_with_ample_registers() {
        let t = LifetimeTable::from_intervals(4, vec![(1, vec![2], false), (2, vec![4], false)])
            .unwrap();
        let p = AllocationProblem::new(t, 8);
        let r = two_phase(&p).unwrap();
        let report = lemra_core::AllocationReport::new(&p, &r.allocation);
        assert_eq!(report.mem_accesses(), 0);
    }

    #[test]
    fn empty_table_is_trivial() {
        let t = LifetimeTable::from_intervals(3, vec![]).unwrap();
        let p = AllocationProblem::new(t, 2);
        let r = two_phase(&p).unwrap();
        assert_eq!(r.symbolic_chains.len(), 0);
    }
}
