//! Prior-work baselines for `lemra`.
//!
//! The paper's evaluation compares its simultaneous allocator against
//! earlier approaches; these are faithfully reimplemented here (none of
//! them had open-source releases):
//!
//! * [`two_phase`] — Chang–Pedram DAC'95 \[8\]: minimum-switching register
//!   allocation by flow, *then* partition into registers and memory
//!   (Figure 3a / Figure 4a);
//! * [`color_with_spills`] — Chaitin-style graph coloring with spilling
//!   \[6, 7\], the performance-oriented compiler baseline;
//! * [`left_edge`] — classic HLS left-edge allocation;
//! * [`all_memory`] / [`all_registers`] — degenerate bounds used in tests
//!   and as sanity anchors in benches.
//!
//! Every baseline returns a [`lemra_core::Allocation`] so results are
//! measured by the same exact accounting ([`lemra_core::AllocationReport`])
//! as the paper's method.
//!
//! # Examples
//!
//! ```
//! use lemra_baselines::two_phase;
//! use lemra_core::{allocate, AllocationProblem, AllocationReport};
//! use lemra_ir::LifetimeTable;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lifetimes = LifetimeTable::from_intervals(
//!     6,
//!     vec![(1, vec![3], false), (3, vec![6], false), (1, vec![6], false)],
//! )?;
//! let problem = AllocationProblem::new(lifetimes, 1);
//! let ours = AllocationReport::new(&problem, &allocate(&problem)?);
//! let baseline = AllocationReport::new(&problem, &two_phase(&problem)?.allocation);
//! assert!(ours.static_energy <= baseline.static_energy);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chang_pedram;
mod coloring;
mod left_edge;
mod trivial;

pub use chang_pedram::{
    chain_switching, min_switching_register_allocation, two_phase, TwoPhaseResult,
};
pub use coloring::{color_with_spills, ColoringResult};
pub use left_edge::{left_edge, LeftEdgeResult};
pub use trivial::{all_memory, all_registers};

use lemra_core::CoreError;
use lemra_netflow::NetflowError;

/// Errors of the baseline allocators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The phase-1 flow could not cover every variable.
    Infeasible {
        /// Units that had to be routed.
        required: i64,
        /// Units actually routed.
        achieved: i64,
    },
    /// An underlying flow failure.
    Flow(NetflowError),
    /// Placement construction or validation failed.
    Core(CoreError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Infeasible { required, achieved } => write!(
                f,
                "baseline flow infeasible: required {required}, achieved {achieved}"
            ),
            BaselineError::Flow(e) => write!(f, "baseline flow solver: {e}"),
            BaselineError::Core(e) => write!(f, "baseline placement: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Flow(e) => Some(e),
            BaselineError::Core(e) => Some(e),
            BaselineError::Infeasible { .. } => None,
        }
    }
}

impl From<NetflowError> for BaselineError {
    fn from(e: NetflowError) -> Self {
        BaselineError::Flow(e)
    }
}

impl From<CoreError> for BaselineError {
    fn from(e: CoreError) -> Self {
        BaselineError::Core(e)
    }
}
