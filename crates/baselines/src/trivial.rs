//! Degenerate placements: everything in memory, or everything in registers.
//! Used as bounds in tests and as anchors in the benchmark tables.

use crate::BaselineError;
use lemra_core::{Allocation, AllocationProblem};
use lemra_ir::DensityProfile;

/// Places every variable in memory (the paper objective's constant
/// baseline).
///
/// # Errors
///
/// Never fails for valid problems; the signature matches the other
/// baselines.
pub fn all_memory(problem: &AllocationProblem) -> Result<Allocation, BaselineError> {
    let placement = vec![None; problem.lifetimes.len()];
    Ok(Allocation::from_var_placements(problem, &placement)?)
}

/// Places every variable in its own register track (left-edge over all
/// variables, ignoring the register budget) — the unconstrained lower bound
/// on memory traffic.
///
/// # Errors
///
/// Never fails for valid problems.
pub fn all_registers(problem: &AllocationProblem) -> Result<Allocation, BaselineError> {
    let table = &problem.lifetimes;
    let block_len = table.block_len();
    let mut order: Vec<_> = table.iter().map(|lt| lt.var).collect();
    order.sort_by_key(|&v| table.lifetime(v).start());
    let mut track_end: Vec<lemra_ir::Tick> = Vec::new();
    let mut placement = vec![None; table.len()];
    for v in order {
        let lt = table.lifetime(v);
        match track_end.iter().position(|&e| e < lt.start()) {
            Some(i) => {
                track_end[i] = lt.end(block_len);
                placement[v.index()] = Some(i as u32);
            }
            None => {
                placement[v.index()] = Some(track_end.len() as u32);
                track_end.push(lt.end(block_len));
            }
        }
    }
    debug_assert_eq!(track_end.len() as u32, DensityProfile::new(table).max());
    Ok(Allocation::from_var_placements(problem, &placement)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemra_core::AllocationReport;
    use lemra_ir::LifetimeTable;

    fn problem() -> AllocationProblem {
        let t = LifetimeTable::from_intervals(
            6,
            vec![
                (1, vec![3], false),
                (3, vec![6], false),
                (1, vec![6], false),
            ],
        )
        .unwrap();
        AllocationProblem::new(t, 2)
    }

    #[test]
    fn all_memory_has_no_register_traffic() {
        let p = problem();
        let r = AllocationReport::new(&p, &all_memory(&p).unwrap());
        assert_eq!(r.reg_accesses(), 0);
        assert_eq!(r.mem_writes, 3);
    }

    #[test]
    fn all_registers_has_no_memory_traffic() {
        let p = problem();
        let a = all_registers(&p).unwrap();
        let r = AllocationReport::new(&p, &a);
        assert_eq!(r.mem_accesses(), 0);
        assert_eq!(a.registers_used(), 2);
    }

    #[test]
    fn bounds_bracket_the_optimum() {
        let p = problem();
        let opt = AllocationReport::new(&p, &lemra_core::allocate(&p).unwrap());
        let lo = AllocationReport::new(&p, &all_registers(&p).unwrap());
        let hi = AllocationReport::new(&p, &all_memory(&p).unwrap());
        assert!(opt.static_energy <= hi.static_energy + 1e-9);
        assert!(lo.static_energy <= opt.static_energy + 1e-9);
    }
}
