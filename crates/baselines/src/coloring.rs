//! Chaitin-style graph-coloring register allocation with spilling \[6, 7\] —
//! the classical *performance-oriented* compiler baseline ("typical compiler
//! techniques … have concentrated on fast compile times and performance",
//! §1). Energy-oblivious by construction.

use crate::BaselineError;
use lemra_core::{Allocation, AllocationProblem};
use lemra_ir::VarId;

/// Result of the coloring baseline.
#[derive(Debug, Clone)]
pub struct ColoringResult {
    /// The resulting placement (colors become register indices; spilled
    /// variables go to memory).
    pub allocation: Allocation,
    /// Variables spilled to memory, in spill order.
    pub spilled: Vec<VarId>,
}

/// Colors the interference graph of the lifetimes with `problem.registers`
/// colors, spilling by the classic cost/degree heuristic (access count over
/// interference degree) until the graph is colorable.
///
/// # Errors
///
/// Returns [`BaselineError::Core`] if the placement fails the structural
/// checks (it cannot, for a correct interference graph).
pub fn color_with_spills(problem: &AllocationProblem) -> Result<ColoringResult, BaselineError> {
    let table = &problem.lifetimes;
    let n = table.len();
    let k = problem.registers as usize;
    let block_len = table.block_len();

    // Interference: lifetimes overlapping in time.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let lifetimes: Vec<_> = table.iter().collect();
    for i in 0..n {
        for j in i + 1..n {
            if lifetimes[i].overlaps(lifetimes[j], block_len) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }

    // Chaitin simplify/spill: repeatedly remove a node of degree < k; if
    // none exists, spill the node with the lowest (access count / degree).
    let mut removed = vec![false; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut stack: Vec<usize> = Vec::new();
    let mut spilled: Vec<VarId> = Vec::new();
    let mut remaining = n;
    while remaining > 0 {
        if let Some(v) = (0..n).find(|&v| !removed[v] && degree[v] < k) {
            removed[v] = true;
            stack.push(v);
            for &u in &adj[v] {
                if !removed[u] {
                    degree[u] -= 1;
                }
            }
            remaining -= 1;
            continue;
        }
        // Spill candidate: cheapest accesses per unit of interference.
        let victim = (0..n)
            .filter(|&v| !removed[v])
            .min_by(|&a, &b| {
                spill_metric(table, a, degree[a]).total_cmp(&spill_metric(table, b, degree[b]))
            })
            .expect("remaining > 0");
        removed[victim] = true;
        spilled.push(VarId(victim as u32));
        for &u in &adj[victim] {
            if !removed[u] {
                degree[u] -= 1;
            }
        }
        remaining -= 1;
    }

    // Select colors in reverse simplification order.
    let mut color: Vec<Option<u32>> = vec![None; n];
    for &v in stack.iter().rev() {
        let used: Vec<u32> = adj[v].iter().filter_map(|&u| color[u]).collect();
        let c = (0..k as u32)
            .find(|c| !used.contains(c))
            .expect("simplified nodes are always colorable");
        color[v] = Some(c);
    }

    let allocation =
        Allocation::from_var_placements(problem, &color).map_err(BaselineError::Core)?;
    Ok(ColoringResult {
        allocation,
        spilled,
    })
}

fn spill_metric(table: &lemra_ir::LifetimeTable, v: usize, degree: usize) -> f64 {
    let accesses = 1 + table.lifetime(VarId(v as u32)).read_count();
    accesses as f64 / degree.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemra_core::AllocationReport;
    use lemra_ir::LifetimeTable;

    fn triangle() -> LifetimeTable {
        // Three mutually overlapping lifetimes.
        LifetimeTable::from_intervals(
            6,
            vec![
                (1, vec![6], false),
                (2, vec![5], false),
                (3, vec![4], false),
            ],
        )
        .unwrap()
    }

    #[test]
    fn colors_without_spills_when_possible() {
        let p = AllocationProblem::new(triangle(), 3);
        let r = color_with_spills(&p).unwrap();
        assert!(r.spilled.is_empty());
        let report = AllocationReport::new(&p, &r.allocation);
        assert_eq!(report.mem_accesses(), 0);
        assert_eq!(report.registers_used, 3);
    }

    #[test]
    fn spills_when_pressure_exceeds_registers() {
        let p = AllocationProblem::new(triangle(), 2);
        let r = color_with_spills(&p).unwrap();
        assert_eq!(r.spilled.len(), 1);
        let report = AllocationReport::new(&p, &r.allocation);
        assert_eq!(report.mem_writes, 1);
        lemra_core::validate(&p, &r.allocation).unwrap();
    }

    #[test]
    fn zero_registers_spill_everything() {
        let p = AllocationProblem::new(triangle(), 0);
        let r = color_with_spills(&p).unwrap();
        assert_eq!(r.spilled.len(), 3);
    }

    #[test]
    fn disjoint_lifetimes_share_a_color() {
        let t = LifetimeTable::from_intervals(
            6,
            vec![
                (1, vec![2], false),
                (3, vec![4], false),
                (5, vec![6], false),
            ],
        )
        .unwrap();
        let p = AllocationProblem::new(t, 1);
        let r = color_with_spills(&p).unwrap();
        assert!(r.spilled.is_empty());
        assert_eq!(r.allocation.registers_used(), 1);
    }
}
