//! Left-edge register allocation — the classical high-level-synthesis
//! baseline (Kurdahi–Parker): sort lifetimes by start time, first-fit them
//! into register tracks, and demote whatever does not fit into the first
//! `R` tracks to memory. Energy-oblivious.

use crate::BaselineError;
use lemra_core::{Allocation, AllocationProblem};
use lemra_ir::VarId;

/// Result of the left-edge baseline.
#[derive(Debug, Clone)]
pub struct LeftEdgeResult {
    /// The resulting placement.
    pub allocation: Allocation,
    /// Number of tracks a register file would need to hold *everything*
    /// (the maximum lifetime density).
    pub tracks_needed: u32,
}

/// Runs left-edge allocation with `problem.registers` available tracks.
///
/// # Errors
///
/// Returns [`BaselineError::Core`] if the placement fails structural checks
/// (it cannot: tracks are non-overlapping by construction).
pub fn left_edge(problem: &AllocationProblem) -> Result<LeftEdgeResult, BaselineError> {
    let table = &problem.lifetimes;
    let block_len = table.block_len();
    let mut order: Vec<VarId> = table.iter().map(|lt| lt.var).collect();
    order.sort_by_key(|&v| table.lifetime(v).start());

    let mut track_end: Vec<lemra_ir::Tick> = Vec::new();
    let mut placement: Vec<Option<u32>> = vec![None; table.len()];
    for v in order {
        let lt = table.lifetime(v);
        let track = track_end.iter().position(|&e| e < lt.start());
        let idx = match track {
            Some(i) => {
                track_end[i] = lt.end(block_len);
                i
            }
            None => {
                track_end.push(lt.end(block_len));
                track_end.len() - 1
            }
        };
        if (idx as u32) < problem.registers {
            placement[v.index()] = Some(idx as u32);
        }
    }
    let allocation =
        Allocation::from_var_placements(problem, &placement).map_err(BaselineError::Core)?;
    Ok(LeftEdgeResult {
        allocation,
        tracks_needed: track_end.len() as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemra_core::AllocationReport;
    use lemra_ir::LifetimeTable;

    #[test]
    fn packs_disjoint_lifetimes_into_one_track() {
        let t = LifetimeTable::from_intervals(
            6,
            vec![
                (1, vec![2], false),
                (3, vec![4], false),
                (5, vec![6], false),
            ],
        )
        .unwrap();
        let p = AllocationProblem::new(t, 1);
        let r = left_edge(&p).unwrap();
        assert_eq!(r.tracks_needed, 1);
        let report = AllocationReport::new(&p, &r.allocation);
        assert_eq!(report.mem_accesses(), 0);
    }

    #[test]
    fn overflow_tracks_go_to_memory() {
        let t = LifetimeTable::from_intervals(
            6,
            vec![
                (1, vec![6], false),
                (1, vec![5], false),
                (2, vec![4], false),
            ],
        )
        .unwrap();
        let p = AllocationProblem::new(t, 2);
        let r = left_edge(&p).unwrap();
        assert_eq!(r.tracks_needed, 3);
        let report = AllocationReport::new(&p, &r.allocation);
        assert_eq!(report.mem_writes, 1);
        lemra_core::validate(&p, &r.allocation).unwrap();
    }
}
