//! Dinic's max-flow algorithm.
//!
//! Used directly for maximum-flow queries (e.g. feasibility probes and the
//! Chang–Pedram baseline in `lemra-baselines`) and as the feasible-flow
//! bootstrap of the cycle-cancelling min-cost solver.

use crate::graph::{FlowNetwork, NodeId};
use crate::residual::{idx, Residual};
use crate::ssp::{check_endpoints, solution_from_residual};
use crate::workspace::{SolverWorkspace, INF};
use crate::{FlowSolution, NetflowError};
use std::collections::VecDeque;

/// Computes a maximum flow from `s` to `t`, ignoring arc costs.
///
/// Arc lower bounds are honoured: the returned flow satisfies every
/// `lower_bound <= flow <= capacity` constraint and maximises the `s`→`t`
/// value among such flows.
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if the lower bounds admit no feasible flow
///   at all.
/// * [`NetflowError::InvalidArc`] if `s` or `t` are out of range or equal.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{FlowNetwork, max_flow};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, a, t) = (net.add_node(), net.add_node(), net.add_node());
/// net.add_arc(s, a, 3, 0)?;
/// net.add_arc(a, t, 2, 0)?;
/// assert_eq!(max_flow(&net, s, t)?.value, 2);
/// # Ok(())
/// # }
/// ```
pub fn max_flow(net: &FlowNetwork, s: NodeId, t: NodeId) -> Result<FlowSolution, NetflowError> {
    check_endpoints(net, s, t, 0)?;
    let n = net.node_count();

    if !net.has_lower_bounds() {
        let mut res = Residual::from_network(net, 0);
        res.finalize();
        let value = dinic(&mut res, idx(s), idx(t));
        return Ok(solution_from_residual(net, &res, value));
    }

    // Feasibility phase: satisfy lower bounds with a super-source/super-sink
    // flow while a t -> s return edge lets value circulate freely.
    let mut res = Residual::from_network(net, 2);
    let super_s = n;
    let super_t = n + 1;
    let mut excess = vec![0i64; n];
    for (_, arc) in net.arcs() {
        excess[idx(arc.to)] += arc.lower_bound;
        excess[idx(arc.from)] -= arc.lower_bound;
    }
    let return_edge = res.add_edge(idx(t), idx(s), i64::MAX / 8, 0);
    let mut required = 0i64;
    for (v, &e) in excess.iter().enumerate() {
        if e > 0 {
            res.add_edge(super_s, v, e, 0);
            required += e;
        } else if e < 0 {
            res.add_edge(v, super_t, -e, 0);
        }
    }
    res.finalize();
    let satisfied = dinic(&mut res, super_s, super_t);
    if satisfied < required {
        return Err(NetflowError::Infeasible {
            required,
            achieved: satisfied,
        });
    }
    // Remove the return edge (freeze its flow as baseline value) and grow
    // s -> t flow on top.
    let base_value = res.flow_on(return_edge);
    res.set_cap_of(return_edge, 0);
    res.set_cap_of(return_edge ^ 1, 0);
    let extra = dinic(&mut res, idx(s), idx(t));
    Ok(solution_from_residual(net, &res, base_value + extra))
}

/// Core Dinic loop: BFS level graph + DFS blocking flow.
///
/// `res` must be finalized.
pub(crate) fn dinic(res: &mut Residual, s: usize, t: usize) -> i64 {
    let n = res.node_count();
    let mut total = 0i64;
    loop {
        // BFS levels.
        let mut level = vec![u32::MAX; n];
        level[s] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for slot in res.active_slots(u) {
                let v = res.slots[slot].to as usize;
                if res.slots[slot].cap > 0 && level[v] == u32::MAX {
                    level[v] = level[u] + 1;
                    q.push_back(v);
                }
            }
        }
        if level[t] == u32::MAX {
            return total;
        }
        let mut iter = vec![0usize; n];
        loop {
            let pushed = dfs(res, &level, &mut iter, s, t, i64::MAX / 8);
            if pushed == 0 {
                break;
            }
            total += pushed;
        }
    }
}

/// Pushes a blocking flow of at most `limit` units from `s` to `t` over the
/// **admissible subgraph**: residual edges with positive capacity and zero
/// reduced cost under the node potentials. Returns the units pushed (0 when `t`
/// is not admissible-reachable).
///
/// The fast path runs current-arc DFS walks straight over the admissible
/// subgraph — no BFS levelling pass at all. Any admissible `s → t` path is a
/// shortest path (reduced costs telescope to the same total), so unlike
/// general Dinic the DFS needs no level graph for *optimality*; an on-stack
/// marker (epoch-stamped `level` doubling as the flag) keeps each walk
/// acyclic through zero-cost admissible cycles, and persistent cursors
/// retire each arc at most once per phase. On the near-unit-capacity
/// networks the allocator produces, phases push only a few units each, so
/// skipping the full-subgraph BFS roughly halves the cost of a phase.
///
/// Skipping an on-stack head advances the cursor past an arc that could
/// become usable once that node pops, so a walk can miss paths a levelled
/// search would find; when the fast path pushes nothing at all it falls
/// back to the levelled scheme below, which restores the full
/// blocking-flow guarantee. The caller guarantees the potentials are exact
/// (see [`dijkstra_settle`](crate::ssp::dijkstra_settle)); every unit
/// pushed here is a min-cost unit.
pub(crate) fn blocking_flow_admissible(
    res: &mut Residual,
    s: usize,
    t: usize,
    ws: &mut SolverWorkspace,
    limit: i64,
) -> i64 {
    let n = res.node_count();
    ws.begin_phase();
    ws.cursor.clear();
    ws.cursor.resize(n, 0);
    let mut total = 0i64;
    while total < limit {
        let pushed = admissible_dfs_first(res, ws, s, t, limit - total);
        if pushed == 0 {
            break;
        }
        total += pushed;
    }
    if total == 0 {
        return blocking_flow_levelled(res, s, t, ws, limit);
    }
    ws.pushed_units += total as u64;
    total
}

/// One walk of the unlevelled fast path: DFS along admissible arcs with
/// per-node current-arc cursors and an on-stack guard (`level` 1 = on the
/// current path, 0 = retired) in the epoch-stamped node state.
fn admissible_dfs_first(
    res: &mut Residual,
    ws: &mut SolverWorkspace,
    u: usize,
    t: usize,
    limit: i64,
) -> i64 {
    if u == t {
        return limit;
    }
    ws.set_level(u, 1);
    let pu = ws.node[u].potential;
    let epoch = ws.epoch;
    // The active prefix can grow mid-phase (pushes activate backward
    // edges), so the bound is re-read every iteration.
    while ws.cursor[u] < res.active_end[u] - res.first_out[u] {
        let slot = (res.first_out[u] + ws.cursor[u]) as usize;
        let sl = res.slots[slot];
        let v = sl.to as usize;
        let stv = ws.node[v];
        if sl.cap > 0
            && !(stv.stamp == epoch && stv.level == 1)
            && stv.potential < INF
            && sl.cost + pu - stv.potential == 0
        {
            let pushed = admissible_dfs_first(res, ws, v, t, limit.min(sl.cap));
            if pushed > 0 {
                res.push(sl.edge, pushed);
                ws.set_level(u, 0);
                return pushed;
            }
        }
        ws.cursor[u] += 1;
    }
    ws.set_level(u, 0);
    0
}

/// Levelled fallback of [`blocking_flow_admissible`]: BFS level graph over
/// the admissible subgraph + current-arc DFS, the level-restricted scheme of
/// [`dinic`]. Complete (finds every admissible path the on-stack skips of
/// the fast path can miss) at the price of a full-subgraph BFS per phase.
fn blocking_flow_levelled(
    res: &mut Residual,
    s: usize,
    t: usize,
    ws: &mut SolverWorkspace,
    limit: i64,
) -> i64 {
    let n = res.node_count();
    // Levels are epoch-stamped in the packed node state, so starting a
    // phase is an O(1) epoch bump instead of an O(V) fill, and the
    // admissibility test below reads level and potential from one record.
    ws.begin_phase();
    ws.set_level(s, 0);
    ws.queue.clear();
    ws.queue.push_back(s as u32);
    let epoch = ws.epoch;
    let mut level_t = u32::MAX;
    while let Some(u) = ws.queue.pop_front() {
        let u = u as usize;
        // Once the sink is levelled, deeper layers cannot lie on a shortest
        // admissible path; arcs out of the sink itself never extend one.
        if u == t || ws.node[u].level >= level_t {
            continue;
        }
        let pu = ws.node[u].potential;
        let lvl = ws.node[u].level + 1;
        for sl in &res.slots[res.active_slots(u)] {
            if sl.cap <= 0 {
                continue;
            }
            let v = sl.to as usize;
            let stv = ws.node[v];
            if stv.stamp == epoch || stv.potential >= INF {
                continue;
            }
            if sl.cost + pu - stv.potential != 0 {
                continue;
            }
            ws.set_level(v, lvl);
            if v == t {
                level_t = lvl;
            }
            ws.queue.push_back(v as u32);
        }
    }
    if level_t == u32::MAX {
        return 0;
    }
    ws.cursor.clear();
    ws.cursor.resize(n, 0);
    let mut total = 0i64;
    while total < limit {
        let pushed = admissible_dfs(res, ws, s, t, limit - total);
        if pushed == 0 {
            break;
        }
        total += pushed;
    }
    ws.pushed_units += total as u64;
    total
}

/// One augmenting walk of the admissible blocking flow: DFS along level+1
/// admissible edges with per-node current-arc cursors.
fn admissible_dfs(
    res: &mut Residual,
    ws: &mut SolverWorkspace,
    u: usize,
    t: usize,
    limit: i64,
) -> i64 {
    if u == t {
        return limit;
    }
    let pu = ws.node[u].potential;
    // Every node on the DFS path was levelled by this phase's BFS, so the
    // direct field reads below see valid stamps.
    let lvl = ws.node[u].level.wrapping_add(1);
    // The active prefix can grow mid-phase (pushes activate backward
    // edges), so the bound is re-read every iteration.
    while ws.cursor[u] < res.active_end[u] - res.first_out[u] {
        let slot = (res.first_out[u] + ws.cursor[u]) as usize;
        let sl = res.slots[slot];
        let v = sl.to as usize;
        let stv = ws.node[v];
        if sl.cap > 0
            && stv.stamp == ws.epoch
            && stv.level == lvl
            && sl.cost + pu - stv.potential == 0
        {
            let pushed = admissible_dfs(res, ws, v, t, limit.min(sl.cap));
            if pushed > 0 {
                res.push(sl.edge, pushed);
                return pushed;
            }
        }
        ws.cursor[u] += 1;
    }
    0
}

fn dfs(
    res: &mut Residual,
    level: &[u32],
    iter: &mut [usize],
    u: usize,
    t: usize,
    limit: i64,
) -> i64 {
    if u == t {
        return limit;
    }
    // The active prefix can grow mid-phase (pushes activate backward
    // edges), so the bound is re-read every iteration.
    while iter[u] < (res.active_end[u] - res.first_out[u]) as usize {
        let slot = res.first_out[u] as usize + iter[u];
        let cap = res.slots[slot].cap;
        let v = res.slots[slot].to as usize;
        if cap > 0 && level[v] == level[u] + 1 {
            let pushed = dfs(res, level, iter, v, t, limit.min(cap));
            if pushed > 0 {
                res.push(res.slots[slot].edge, pushed);
                return pushed;
            }
        }
        iter[u] += 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_bipartite() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let l: Vec<_> = (0..3).map(|_| net.add_node()).collect();
        let r: Vec<_> = (0..3).map(|_| net.add_node()).collect();
        let t = net.add_node();
        for &u in &l {
            net.add_arc(s, u, 1, 0).unwrap();
        }
        for &v in &r {
            net.add_arc(v, t, 1, 0).unwrap();
        }
        // Perfect matching exists.
        net.add_arc(l[0], r[0], 1, 0).unwrap();
        net.add_arc(l[0], r[1], 1, 0).unwrap();
        net.add_arc(l[1], r[0], 1, 0).unwrap();
        net.add_arc(l[2], r[2], 1, 0).unwrap();
        let sol = max_flow(&net, s, t).unwrap();
        assert_eq!(sol.value, 3);
    }

    #[test]
    fn respects_lower_bounds() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 2, 5, 0).unwrap();
        net.add_arc(a, t, 3, 0).unwrap();
        let sol = max_flow(&net, s, t).unwrap();
        assert_eq!(sol.value, 3);
        assert!(sol.flows[0] >= 2);
    }

    #[test]
    fn infeasible_lower_bound() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 4, 5, 0).unwrap();
        net.add_arc(a, t, 3, 0).unwrap(); // can't drain 4 units
        assert!(matches!(
            max_flow(&net, s, t),
            Err(NetflowError::Infeasible { .. })
        ));
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        let sol = max_flow(&net, s, t).unwrap();
        assert_eq!(sol.value, 0);
    }
}
