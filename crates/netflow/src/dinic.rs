//! Dinic's max-flow algorithm.
//!
//! Used directly for maximum-flow queries (e.g. feasibility probes and the
//! Chang–Pedram baseline in `lemra-baselines`) and as the feasible-flow
//! bootstrap of the cycle-cancelling min-cost solver.

use crate::graph::{FlowNetwork, NodeId};
use crate::residual::{idx, Residual};
use crate::ssp::{check_endpoints, solution_from_residual};
use crate::{FlowSolution, NetflowError};
use std::collections::VecDeque;

/// Computes a maximum flow from `s` to `t`, ignoring arc costs.
///
/// Arc lower bounds are honoured: the returned flow satisfies every
/// `lower_bound <= flow <= capacity` constraint and maximises the `s`→`t`
/// value among such flows.
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if the lower bounds admit no feasible flow
///   at all.
/// * [`NetflowError::InvalidArc`] if `s` or `t` are out of range or equal.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{FlowNetwork, max_flow};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, a, t) = (net.add_node(), net.add_node(), net.add_node());
/// net.add_arc(s, a, 3, 0)?;
/// net.add_arc(a, t, 2, 0)?;
/// assert_eq!(max_flow(&net, s, t)?.value, 2);
/// # Ok(())
/// # }
/// ```
pub fn max_flow(net: &FlowNetwork, s: NodeId, t: NodeId) -> Result<FlowSolution, NetflowError> {
    check_endpoints(net, s, t, 0)?;
    let n = net.node_count();

    if !net.has_lower_bounds() {
        let mut res = Residual::from_network(net, 0);
        res.finalize();
        let value = dinic(&mut res, idx(s), idx(t));
        return Ok(solution_from_residual(net, &res, value));
    }

    // Feasibility phase: satisfy lower bounds with a super-source/super-sink
    // flow while a t -> s return edge lets value circulate freely.
    let mut res = Residual::from_network(net, 2);
    let super_s = n;
    let super_t = n + 1;
    let mut excess = vec![0i64; n];
    for (_, arc) in net.arcs() {
        excess[idx(arc.to)] += arc.lower_bound;
        excess[idx(arc.from)] -= arc.lower_bound;
    }
    let return_edge = res.add_edge(idx(t), idx(s), i64::MAX / 8, 0);
    let mut required = 0i64;
    for (v, &e) in excess.iter().enumerate() {
        if e > 0 {
            res.add_edge(super_s, v, e, 0);
            required += e;
        } else if e < 0 {
            res.add_edge(v, super_t, -e, 0);
        }
    }
    res.finalize();
    let satisfied = dinic(&mut res, super_s, super_t);
    if satisfied < required {
        return Err(NetflowError::Infeasible {
            required,
            achieved: satisfied,
        });
    }
    // Remove the return edge (freeze its flow as baseline value) and grow
    // s -> t flow on top.
    let base_value = res.flow_on(return_edge);
    res.set_cap_of(return_edge, 0);
    res.set_cap_of(return_edge ^ 1, 0);
    let extra = dinic(&mut res, idx(s), idx(t));
    Ok(solution_from_residual(net, &res, base_value + extra))
}

/// Core Dinic loop: BFS level graph + DFS blocking flow.
///
/// `res` must be finalized.
pub(crate) fn dinic(res: &mut Residual, s: usize, t: usize) -> i64 {
    let n = res.node_count();
    let mut total = 0i64;
    loop {
        // BFS levels.
        let mut level = vec![u32::MAX; n];
        level[s] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for slot in res.active_slots(u) {
                let v = res.to[slot] as usize;
                if res.cap[slot] > 0 && level[v] == u32::MAX {
                    level[v] = level[u] + 1;
                    q.push_back(v);
                }
            }
        }
        if level[t] == u32::MAX {
            return total;
        }
        let mut iter = vec![0usize; n];
        loop {
            let pushed = dfs(res, &level, &mut iter, s, t, i64::MAX / 8);
            if pushed == 0 {
                break;
            }
            total += pushed;
        }
    }
}

fn dfs(
    res: &mut Residual,
    level: &[u32],
    iter: &mut [usize],
    u: usize,
    t: usize,
    limit: i64,
) -> i64 {
    if u == t {
        return limit;
    }
    // The active prefix can grow mid-phase (pushes activate backward
    // edges), so the bound is re-read every iteration.
    while iter[u] < (res.active_end[u] - res.first_out[u]) as usize {
        let slot = res.first_out[u] as usize + iter[u];
        let cap = res.cap[slot];
        let v = res.to[slot] as usize;
        if cap > 0 && level[v] == level[u] + 1 {
            let pushed = dfs(res, level, iter, v, t, limit.min(cap));
            if pushed > 0 {
                res.push(res.adj[slot], pushed);
                return pushed;
            }
        }
        iter[u] += 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_bipartite() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let l: Vec<_> = (0..3).map(|_| net.add_node()).collect();
        let r: Vec<_> = (0..3).map(|_| net.add_node()).collect();
        let t = net.add_node();
        for &u in &l {
            net.add_arc(s, u, 1, 0).unwrap();
        }
        for &v in &r {
            net.add_arc(v, t, 1, 0).unwrap();
        }
        // Perfect matching exists.
        net.add_arc(l[0], r[0], 1, 0).unwrap();
        net.add_arc(l[0], r[1], 1, 0).unwrap();
        net.add_arc(l[1], r[0], 1, 0).unwrap();
        net.add_arc(l[2], r[2], 1, 0).unwrap();
        let sol = max_flow(&net, s, t).unwrap();
        assert_eq!(sol.value, 3);
    }

    #[test]
    fn respects_lower_bounds() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 2, 5, 0).unwrap();
        net.add_arc(a, t, 3, 0).unwrap();
        let sol = max_flow(&net, s, t).unwrap();
        assert_eq!(sol.value, 3);
        assert!(sol.flows[0] >= 2);
    }

    #[test]
    fn infeasible_lower_bound() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 4, 5, 0).unwrap();
        net.add_arc(a, t, 3, 0).unwrap(); // can't drain 4 units
        assert!(matches!(
            max_flow(&net, s, t),
            Err(NetflowError::Infeasible { .. })
        ));
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        let sol = max_flow(&net, s, t).unwrap();
        assert_eq!(sol.value, 0);
    }
}
