//! Graceful degradation around the solver backends.
//!
//! A [`ResilientSolver`] wraps a fallback chain of [`Backend`]s (default:
//! the chosen backend, then [`Backend::Ssp`] as the verified-slow anchor)
//! and tries them in order until one returns a solution. Three failure
//! classes trigger the next link in the chain:
//!
//! * **typed recoverable errors** — [`NetflowError::BudgetExceeded`],
//!   [`NetflowError::Overflow`], [`NetflowError::NegativeCycle`] and
//!   [`NetflowError::InvalidSolution`]: another algorithm may genuinely
//!   succeed (a different cost profile, no budget, an `i128`-capable path);
//! * **panics** — contained at the solve boundary with
//!   [`std::panic::catch_unwind`] and converted into
//!   [`NetflowError::SolverPanicked`], so one bad solve degrades that solve,
//!   not the process;
//! * **injected faults** — with the `fault-inject` cargo feature, a
//!   [`FaultPlan`](crate::FaultPlan) (or `LEMRA_FAULT`) deterministically
//!   simulates the above at chosen solve indices, which is how the chain is
//!   tested end-to-end.
//!
//! Errors that describe the *instance* rather than the solve —
//! [`NetflowError::Infeasible`], [`NetflowError::InvalidArc`],
//! [`NetflowError::CyclicFlow`] — are terminal: every backend would agree,
//! so they return immediately and record no incident.
//!
//! Every absorbed failure is logged as a [`SolverIncident`]; sweeps surface
//! the count through their stage counters and `--timings` output.

use crate::budget::SolveBudget;
use crate::graph::{FlowNetwork, NodeId};
use crate::solver::{Backend, McfSolver};
use crate::workspace::{with_thread_workspace, SolverWorkspace};
use crate::{FlowSolution, NetflowError};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One absorbed solver failure: which solve, which backend, what went
/// wrong, and which backend (if any) recovered the solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverIncident {
    /// 0-based index of the solve (counted per [`ResilientSolver`]).
    pub solve_index: u64,
    /// Name of the backend whose attempt failed.
    pub backend: String,
    /// Display form of the error the attempt produced.
    pub error: String,
    /// Name of the backend that subsequently completed the solve, or
    /// `None` if the whole chain failed.
    pub recovered_with: Option<String>,
}

impl std::fmt::Display for SolverIncident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "solve #{}: {} failed ({})",
            self.solve_index, self.backend, self.error
        )?;
        match &self.recovered_with {
            Some(b) => write!(f, ", recovered by {b}"),
            None => write!(f, ", no fallback succeeded"),
        }
    }
}

/// A fallback-chain [`McfSolver`]: tries each backend in order, contains
/// panics, and logs every absorbed failure as a [`SolverIncident`].
///
/// # Examples
///
/// ```
/// use lemra_netflow::{Backend, FlowNetwork, ResilientSolver, SolveBudget};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, t) = (net.add_node(), net.add_node());
/// net.add_arc(s, t, 4, 3)?;
/// // Chain: simplex first, SSP anchor second. A zero-pivot budget starves
/// // simplex, so the anchor completes the solve and one incident is logged.
/// let mut solver = ResilientSolver::new(Backend::Simplex);
/// solver.set_budget(SolveBudget::default().with_max_pivots(0));
/// let sol = solver.solve(&net, s, t, 2)?;
/// assert_eq!(sol.cost, 6);
/// assert_eq!(solver.incident_count(), 1);
/// assert_eq!(solver.incidents()[0].recovered_with.as_deref(), Some("ssp"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ResilientSolver {
    chain: Vec<Backend>,
    budget: SolveBudget,
    incidents: Vec<SolverIncident>,
    solve_index: u64,
    region_hints: Option<Vec<u32>>,
}

impl Default for ResilientSolver {
    fn default() -> Self {
        Self::new(Backend::default())
    }
}

impl ResilientSolver {
    /// A resilient solver whose chain is `primary` followed by the
    /// [`Backend::Ssp`] anchor. The anchor is appended even when `primary`
    /// *is* plain SSP: the second attempt runs on a fresh workspace, which
    /// is what recovers a contained panic — a request served by the
    /// allocation server must fall through to an identical re-solve, not
    /// surface the panic to the client.
    pub fn new(primary: Backend) -> Self {
        Self::with_chain(vec![primary, Backend::Ssp])
    }

    /// A resilient solver trying exactly `chain`, in order. An empty chain
    /// is replaced by `[Backend::Ssp]`.
    pub fn with_chain(chain: Vec<Backend>) -> Self {
        let chain = if chain.is_empty() {
            vec![Backend::Ssp]
        } else {
            chain
        };
        Self {
            chain,
            budget: SolveBudget::default(),
            incidents: Vec::new(),
            solve_index: 0,
            region_hints: None,
        }
    }

    /// Installs caller-provided region-boundary hints (sorted node ids at
    /// which the parallel solver prefers to cut the node range into
    /// regions, e.g. the first node of each program segment). Forwarded to
    /// the workspace before every solve; `None` clears them. Non-parallel
    /// backends ignore the hints entirely.
    pub fn set_region_hints(&mut self, hints: Option<Vec<u32>>) {
        self.region_hints = hints;
    }

    /// Installs a [`SolveBudget`] applied to **each** attempt (every link
    /// of the chain gets the full budget), returning the previous one.
    pub fn set_budget(&mut self, budget: SolveBudget) -> SolveBudget {
        std::mem::replace(&mut self.budget, budget)
    }

    /// The configured fallback chain, in attempt order.
    pub fn chain(&self) -> &[Backend] {
        &self.chain
    }

    /// Every incident absorbed so far, oldest first.
    pub fn incidents(&self) -> &[SolverIncident] {
        &self.incidents
    }

    /// Number of incidents absorbed so far.
    pub fn incident_count(&self) -> u64 {
        self.incidents.len() as u64
    }

    /// Number of solves attempted (0-based index of the *next* solve).
    pub fn solves(&self) -> u64 {
        self.solve_index
    }

    /// Solves via the fallback chain, reusing the calling thread's shared
    /// workspace (so effort counters appear in
    /// [`thread_solver_stats`](crate::thread_solver_stats)).
    ///
    /// # Errors
    ///
    /// The first terminal error encountered, or — when every link of the
    /// chain fails recoverably — the last attempt's error.
    pub fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
    ) -> Result<FlowSolution, NetflowError> {
        with_thread_workspace(|ws| self.solve_with(net, s, t, target, ws))
    }

    /// [`Self::solve`] with an explicit workspace.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`].
    pub fn solve_with(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        self.run_chain(None, net, s, t, target, ws)
    }

    /// Runs `primary` (a stateful solver such as a
    /// [`Reoptimizer`](crate::Reoptimizer)) first and falls back to this
    /// solver's backend chain if it fails recoverably.
    ///
    /// After a [`NetflowError::SolverPanicked`] incident the caller must
    /// assume `primary`'s internal state is mid-mutation and reset it (e.g.
    /// [`Reoptimizer::reset`](crate::Reoptimizer::reset)) before its next
    /// use; the fallback result itself is produced by a stateless backend
    /// and is safe.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`].
    pub fn solve_with_fallback(
        &mut self,
        primary: &mut dyn McfSolver,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
    ) -> Result<FlowSolution, NetflowError> {
        with_thread_workspace(|ws| self.run_chain(Some(primary), net, s, t, target, ws))
    }

    /// The attempt loop: `primary` (if any) then each chain backend, under
    /// per-attempt panic containment, budget installation and (with the
    /// `fault-inject` feature) fault injection.
    fn run_chain(
        &mut self,
        mut primary: Option<&mut dyn McfSolver>,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        #[cfg(feature = "fault-inject")]
        crate::fault::FaultPlan::ensure_env_plan();

        ws.set_region_hints(self.region_hints.clone());

        let solve_index = self.solve_index;
        self.solve_index += 1;
        let budget = self.budget;
        let incidents_before = self.incidents.len();

        let chain_backends = self.chain.clone();
        let attempts = usize::from(primary.is_some()) + chain_backends.len();

        let mut last_err: Option<NetflowError> = None;
        for attempt in 0..attempts {
            let (name, outcome) = match (&mut primary, attempt) {
                (Some(solver), 0) => {
                    let name = solver.name();
                    let outcome = Self::attempt(solve_index, attempt, name, ws, |ws| {
                        solver.solve_budgeted(net, s, t, target, ws, budget)
                    });
                    (name.to_owned(), outcome)
                }
                _ => {
                    let backend = chain_backends[attempt - usize::from(primary.is_some())];
                    let name = backend.select(net).name();
                    let outcome = Self::attempt(solve_index, attempt, name, ws, |ws| {
                        let previous = ws.set_budget(budget);
                        let result = backend.solve_with(net, s, t, target, ws);
                        ws.set_budget(previous);
                        result
                    });
                    (name.to_owned(), outcome)
                }
            };
            match outcome {
                Ok(sol) => {
                    // Mark this solve's earlier incidents as recovered.
                    for incident in &mut self.incidents[incidents_before..] {
                        incident.recovered_with = Some(name.clone());
                    }
                    return Ok(sol);
                }
                Err(e) if is_terminal(&e) => return Err(e),
                Err(e) => {
                    self.incidents.push(SolverIncident {
                        solve_index,
                        backend: name,
                        error: e.to_string(),
                        recovered_with: None,
                    });
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("chain is never empty"))
    }

    /// One contained attempt: fault injection (feature-gated), then the
    /// solve under `catch_unwind`, with panics converted to
    /// [`NetflowError::SolverPanicked`].
    fn attempt(
        solve_index: u64,
        attempt: usize,
        name: &'static str,
        ws: &mut SolverWorkspace,
        solve: impl FnOnce(&mut SolverWorkspace) -> Result<FlowSolution, NetflowError>,
    ) -> Result<FlowSolution, NetflowError> {
        #[cfg(not(feature = "fault-inject"))]
        let _ = (solve_index, attempt);
        let contained = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "fault-inject")]
            if let Some(kind) = crate::fault::maybe_inject(solve_index, attempt, name) {
                match kind {
                    crate::fault::FaultKind::Panic => {
                        panic!("injected fault: panic in {name} at solve {solve_index}")
                    }
                    crate::fault::FaultKind::Budget => {
                        return Err(NetflowError::BudgetExceeded {
                            backend: name,
                            phase: "injected",
                            progress: 0,
                        });
                    }
                    crate::fault::FaultKind::Overflow => {
                        return Err(NetflowError::Overflow {
                            reason: format!("injected fault at solve {solve_index}"),
                        });
                    }
                    // Connection faults target the server's response path;
                    // `maybe_inject` never returns them.
                    crate::fault::FaultKind::Conn => {}
                }
            }
            solve(ws)
        }));
        match contained {
            Ok(result) => result,
            Err(payload) => {
                let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
                    (*s).to_owned()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_owned()
                };
                Err(NetflowError::SolverPanicked {
                    backend: name,
                    message,
                })
            }
        }
    }
}

impl McfSolver for ResilientSolver {
    fn name(&self) -> &'static str {
        "resilient"
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        self.solve_with(net, s, t, target, ws)
    }
}

/// True for errors that describe the problem instance rather than one
/// backend's solve — no fallback can change the verdict.
fn is_terminal(e: &NetflowError) -> bool {
    matches!(
        e,
        NetflowError::InvalidArc { .. }
            | NetflowError::Infeasible { .. }
            | NetflowError::CyclicFlow { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (FlowNetwork, NodeId, NodeId) {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 1).unwrap();
        net.add_arc(a, t, 1, 1).unwrap();
        net.add_arc(s, b, 1, 3).unwrap();
        net.add_arc(b, t, 1, 3).unwrap();
        (net, s, t)
    }

    #[test]
    fn clean_solves_record_no_incidents() {
        let (net, s, t) = diamond();
        let mut solver = ResilientSolver::new(Backend::Ssp);
        assert_eq!(solver.solve(&net, s, t, 2).unwrap().cost, 8);
        assert_eq!(solver.incident_count(), 0);
        assert_eq!(solver.solves(), 1);
        assert_eq!(solver.chain(), &[Backend::Ssp, Backend::Ssp]);
    }

    #[test]
    fn default_chain_appends_ssp_anchor() {
        let solver = ResilientSolver::new(Backend::Simplex);
        assert_eq!(solver.chain(), &[Backend::Simplex, Backend::Ssp]);
        // Even an SSP primary gets the anchor: the fresh-workspace retry is
        // what recovers a contained panic.
        let solver = ResilientSolver::new(Backend::Ssp);
        assert_eq!(solver.chain(), &[Backend::Ssp, Backend::Ssp]);
        let solver = ResilientSolver::with_chain(Vec::new());
        assert_eq!(solver.chain(), &[Backend::Ssp]);
    }

    #[test]
    fn negative_cycle_falls_through_to_capable_backend() {
        // SSP refuses negative cycles; the chain recovers with cycle
        // cancelling and logs exactly one incident.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, b, 1, -5).unwrap();
        net.add_arc(b, a, 1, -5).unwrap();
        net.add_arc(a, t, 1, 0).unwrap();
        let mut solver = ResilientSolver::with_chain(vec![Backend::Ssp, Backend::CycleCancel]);
        let sol = solver.solve(&net, s, t, 1).unwrap();
        assert_eq!(sol.value, 1);
        assert_eq!(solver.incident_count(), 1);
        let incident = &solver.incidents()[0];
        assert_eq!(incident.backend, "ssp");
        assert_eq!(incident.recovered_with.as_deref(), Some("cycle"));
        assert!(incident.error.contains("negative-cost cycle"));
        assert_eq!(incident.solve_index, 0);
    }

    #[test]
    fn terminal_errors_skip_the_chain() {
        let (net, s, t) = diamond();
        let mut solver = ResilientSolver::with_chain(vec![Backend::Ssp, Backend::Simplex]);
        // Infeasible: every backend agrees; no incident, immediate error.
        let err = solver.solve(&net, s, t, 99).unwrap_err();
        assert!(matches!(err, NetflowError::Infeasible { .. }));
        assert_eq!(solver.incident_count(), 0);
        // Invalid endpoints likewise.
        let err = solver.solve(&net, s, s, 1).unwrap_err();
        assert!(matches!(err, NetflowError::InvalidArc { .. }));
        assert_eq!(solver.incident_count(), 0);
    }

    #[test]
    fn exhausted_chain_returns_last_error_and_logs_all_attempts() {
        let (net, s, t) = diamond();
        let mut solver = ResilientSolver::with_chain(vec![Backend::Ssp, Backend::Scaling]);
        // A zero-round budget starves both SSP-family links.
        solver.set_budget(SolveBudget::default().with_max_rounds(0));
        let err = solver.solve(&net, s, t, 2).unwrap_err();
        assert!(matches!(err, NetflowError::BudgetExceeded { .. }));
        assert_eq!(solver.incident_count(), 2);
        assert!(solver
            .incidents()
            .iter()
            .all(|i| i.recovered_with.is_none()));
        // Lifting the budget recovers on the next solve.
        solver.set_budget(SolveBudget::default());
        assert_eq!(solver.solve(&net, s, t, 2).unwrap().cost, 8);
        assert_eq!(solver.incident_count(), 2);
    }

    #[test]
    fn budget_starved_primary_recovers_via_unbudgeted_anchor() {
        // Budget applies per attempt; simplex with max_pivots 0 trips its
        // own budget while the SSP anchor (rounds-based) completes within
        // the same budget object.
        let (net, s, t) = diamond();
        let mut solver = ResilientSolver::new(Backend::Simplex);
        solver.set_budget(SolveBudget::default().with_max_pivots(0));
        let sol = solver.solve(&net, s, t, 2).unwrap();
        assert_eq!(sol.cost, 8);
        assert_eq!(solver.incident_count(), 1);
        let incident = &solver.incidents()[0];
        assert_eq!(incident.backend, "simplex");
        assert_eq!(incident.recovered_with.as_deref(), Some("ssp"));
    }

    #[test]
    fn budget_starved_cost_scaling_recovers_via_pivot_backend() {
        // Cost scaling counts ε-phases against the rounds budget; simplex
        // budgets pivots instead, so it completes under the same budget
        // object and absorbs the starved primary.
        let (net, s, t) = diamond();
        let mut solver = ResilientSolver::with_chain(vec![Backend::CostScaling, Backend::Simplex]);
        solver.set_budget(SolveBudget::default().with_max_rounds(0));
        let sol = solver.solve(&net, s, t, 2).unwrap();
        assert_eq!(sol.cost, 8);
        assert_eq!(solver.incident_count(), 1);
        let incident = &solver.incidents()[0];
        assert_eq!(incident.backend, "cost_scaling");
        assert_eq!(incident.recovered_with.as_deref(), Some("simplex"));
    }

    #[test]
    fn negative_cycle_recovers_via_cost_scaling_link() {
        // SSP refuses negative cycles; cost scaling handles them natively,
        // so a chain ending in it recovers just like the cycle-cancelling
        // chain does.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, b, 1, -5).unwrap();
        net.add_arc(b, a, 1, -5).unwrap();
        net.add_arc(a, t, 1, 0).unwrap();
        let mut solver = ResilientSolver::with_chain(vec![Backend::Ssp, Backend::CostScaling]);
        let sol = solver.solve(&net, s, t, 1).unwrap();
        assert_eq!(sol.value, 1);
        assert_eq!(solver.incident_count(), 1);
        let incident = &solver.incidents()[0];
        assert_eq!(incident.backend, "ssp");
        assert_eq!(incident.recovered_with.as_deref(), Some("cost_scaling"));
        assert!(incident.error.contains("negative-cost cycle"));
    }

    #[test]
    fn stateful_primary_falls_back_and_can_reset() {
        let (net, s, t) = diamond();
        let mut reopt = crate::Reoptimizer::new();
        let mut solver = ResilientSolver::new(Backend::Ssp);
        let sol = solver
            .solve_with_fallback(&mut reopt, &net, s, t, 1)
            .unwrap();
        assert_eq!(sol.cost, 2);
        assert_eq!(solver.incident_count(), 0);
        assert_eq!(reopt.cold_solves(), 1);
        // Raising the target forces the warm path to push one more unit,
        // which a zero-round budget forbids; both SSP chain links run under
        // the same per-attempt budget and fail too. Clearing the budget
        // (and resetting the reoptimizer) recovers.
        solver.set_budget(SolveBudget::default().with_max_rounds(0));
        let err = solver
            .solve_with_fallback(&mut reopt, &net, s, t, 2)
            .unwrap_err();
        assert!(matches!(err, NetflowError::BudgetExceeded { .. }));
        assert_eq!(solver.incident_count(), 3); // reopt + ssp + ssp anchor
        reopt.reset();
        solver.set_budget(SolveBudget::default());
        let sol = solver
            .solve_with_fallback(&mut reopt, &net, s, t, 2)
            .unwrap();
        assert_eq!(sol.cost, 8);
        assert_eq!(reopt.cold_solves(), 2);
    }

    #[test]
    fn incidents_display_readably() {
        let incident = SolverIncident {
            solve_index: 7,
            backend: "simplex".to_owned(),
            error: "solve budget exceeded".to_owned(),
            recovered_with: Some("ssp".to_owned()),
        };
        let text = incident.to_string();
        assert!(text.contains("solve #7"));
        assert!(text.contains("simplex"));
        assert!(text.contains("recovered by ssp"));
    }
}
