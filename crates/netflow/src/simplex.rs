//! Network simplex — the classical algorithm for minimum-cost flows (the
//! Nemhauser–Wolsey \[17\] era's workhorse, and still the fastest solver in
//! practice on many network families).
//!
//! A bounded-variable primal simplex specialised to networks: the basis is
//! a spanning tree (rooted at an artificial node), non-tree arcs sit at
//! their lower or upper bound, and a pivot pushes flow around the unique
//! cycle an entering arc closes. Bland's smallest-index rule for both the
//! entering and the leaving arc guarantees termination without the usual
//! strongly-feasible-tree machinery (at some cost in pivots — acceptable
//! for the problem sizes `lemra` produces; the production solver remains
//! [`min_cost_flow`](crate::min_cost_flow)).

use crate::graph::{FlowNetwork, NodeId};
use crate::ssp::check_endpoints;
use crate::{FlowSolution, NetflowError};

/// Solves for a minimum-cost flow of exactly `target` units from `s` to
/// `t` with the network simplex method, honouring arc lower bounds.
///
/// Unlike [`min_cost_flow`](crate::min_cost_flow), negative-cost *cycles*
/// are handled correctly (the optimal basis saturates them), so this solver
/// doubles as a second reference for cyclic networks alongside
/// [`min_cost_flow_cycle_canceling`](crate::min_cost_flow_cycle_canceling).
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if no feasible flow of value `target`
///   satisfying all lower bounds exists.
/// * [`NetflowError::InvalidArc`] for invalid endpoints or target.
/// * [`NetflowError::InvalidSolution`] if the pivot budget
///   (`64·arcs·nodes`) is exhausted — Bland's rule guarantees termination
///   but not speed; on large networks prefer
///   [`min_cost_flow`](crate::min_cost_flow).
///
/// # Examples
///
/// ```
/// use lemra_netflow::{min_cost_flow_network_simplex, FlowNetwork};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, a, t) = (net.add_node(), net.add_node(), net.add_node());
/// net.add_arc(s, a, 2, 3)?;
/// net.add_arc(a, t, 2, -1)?;
/// let sol = min_cost_flow_network_simplex(&net, s, t, 2)?;
/// assert_eq!(sol.cost, 2 * (3 - 1));
/// # Ok(())
/// # }
/// ```
pub fn min_cost_flow_network_simplex(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<FlowSolution, NetflowError> {
    check_endpoints(net, s, t, target)?;

    // Reduce lower bounds and the fixed s->t requirement to node supplies.
    let n = net.node_count();
    let mut supply = vec![0i64; n];
    for (_, arc) in net.arcs() {
        supply[arc.to.index()] += arc.lower_bound;
        supply[arc.from.index()] -= arc.lower_bound;
    }
    supply[s.index()] += target;
    supply[t.index()] -= target;

    // Working arc arrays (capacities already reduced by lower bounds),
    // plus one artificial arc per node to the root (index n).
    let real = net.arc_count();
    let mut from = Vec::with_capacity(real + n);
    let mut to = Vec::with_capacity(real + n);
    let mut cap = Vec::with_capacity(real + n);
    let mut cost = Vec::with_capacity(real + n);
    let mut max_abs_cost = 1i64;
    for (_, arc) in net.arcs() {
        from.push(arc.from.index());
        to.push(arc.to.index());
        cap.push(arc.capacity - arc.lower_bound);
        cost.push(arc.cost);
        max_abs_cost = max_abs_cost.max(arc.cost.abs());
    }
    let total_supply: i64 = supply.iter().filter(|&&b| b > 0).sum();
    let big = max_abs_cost
        .saturating_mul((n as i64) + 1)
        .saturating_add(1);
    let root = n;
    // Artificial arcs carry each node's initial imbalance to/from the root.
    for (v, &b) in supply.iter().enumerate() {
        if b >= 0 {
            from.push(v);
            to.push(root);
        } else {
            from.push(root);
            to.push(v);
        }
        cap.push(total_supply.max(b.abs()).max(1));
        cost.push(big);
    }

    let m = from.len();
    let mut flow = vec![0i64; m];
    // Initial basis: the artificial star, carrying the supplies.
    let mut in_tree = vec![false; m];
    let mut parent = vec![usize::MAX; n + 1];
    let mut parent_edge = vec![usize::MAX; n + 1];
    let mut depth = vec![0u32; n + 1];
    let mut potential = vec![0i64; n + 1];
    for (v, &b) in supply.iter().enumerate() {
        let e = real + v;
        in_tree[e] = true;
        parent[v] = root;
        parent_edge[v] = e;
        depth[v] = 1;
        flow[e] = b.abs();
        potential[v] = if b >= 0 { -big } else { big };
    }

    // Pivot until no violating non-tree arc remains (Bland's rule).
    let max_pivots = 64usize.saturating_mul(m).saturating_mul(n + 1).max(10_000);
    let mut pivots = 0usize;
    loop {
        pivots += 1;
        if pivots > max_pivots {
            return Err(NetflowError::InvalidSolution {
                reason: "network simplex exceeded its pivot budget".to_owned(),
            });
        }
        // Entering arc: smallest index violating optimality.
        let mut entering = None;
        for e in 0..m {
            if in_tree[e] {
                continue;
            }
            let rc = cost[e] + potential[from[e]] - potential[to[e]];
            // Arcs with zero working capacity (lower bound == capacity)
            // are frozen: they sit at both bounds and can never improve.
            let at_lower = flow[e] == 0 && cap[e] > 0;
            let at_upper = flow[e] == cap[e] && flow[e] > 0;
            if (at_lower && rc < 0) || (at_upper && rc > 0) {
                entering = Some(e);
                break;
            }
        }
        let Some(e) = entering else { break };
        // Direction: at lower bound push forward, at upper bound backward.
        let forward = flow[e] == 0;
        let (u, v) = if forward {
            (from[e], to[e])
        } else {
            (to[e], from[e])
        };
        // Max push around the cycle (u -> ... -> lca <- ... <- v plus e).
        let mut delta = cap[e];
        let mut leaving = e;
        let mut leaving_on_u_side = true;
        // Walk both endpoints to the LCA, measuring residuals.
        let (orig_u, orig_v) = (u, v);
        {
            let (mut uu, mut vv) = (u, v);
            while uu != vv {
                if depth[uu] >= depth[vv] {
                    let pe = parent_edge[uu];
                    // Flow travels from u towards the LCA: with the push
                    // direction u -> v through e reversed, the cycle sends
                    // flow *into* u, i.e. along uu's parent edge towards uu
                    // when the edge points down, away when it points up.
                    let headroom = if to[pe] == uu {
                        cap[pe] - flow[pe] // edge points down into uu: increase
                    } else {
                        flow[pe] // edge points up out of uu: decrease
                    };
                    // Bland: strictly smaller headroom, or equal headroom
                    // with a smaller arc index (prevents degenerate cycling).
                    if headroom < delta || (headroom == delta && pe < leaving) {
                        delta = headroom;
                        leaving = pe;
                        leaving_on_u_side = true;
                    }
                    uu = parent[uu];
                } else {
                    let pe = parent_edge[vv];
                    let headroom = if from[pe] == vv {
                        cap[pe] - flow[pe] // edge points up out of vv: increase
                    } else {
                        flow[pe] // edge points down into vv: decrease
                    };
                    if headroom < delta || (headroom == delta && pe < leaving) {
                        delta = headroom;
                        leaving_on_u_side = false;
                        leaving = pe;
                    }
                    vv = parent[vv];
                }
            }
        }
        // Apply the push.
        if forward {
            flow[e] += delta;
        } else {
            flow[e] -= delta;
        }
        {
            let (mut uu, mut vv) = (orig_u, orig_v);
            while uu != vv {
                if depth[uu] >= depth[vv] {
                    let pe = parent_edge[uu];
                    if to[pe] == uu {
                        flow[pe] += delta;
                    } else {
                        flow[pe] -= delta;
                    }
                    uu = parent[uu];
                } else {
                    let pe = parent_edge[vv];
                    if from[pe] == vv {
                        flow[pe] += delta;
                    } else {
                        flow[pe] -= delta;
                    }
                    vv = parent[vv];
                }
            }
        }
        if leaving == e {
            // The entering arc itself hit its opposite bound: basis
            // unchanged.
            continue;
        }
        // Swap basis: e enters, `leaving` leaves. Re-root the subtree that
        // hangs off the leaving edge so the tree stays consistent.
        in_tree[e] = true;
        in_tree[leaving] = false;
        // The subtree cut off lies below `leaving` on whichever side it was
        // found; reattach it through e by reversing parent pointers from
        // the entering arc's endpoint in that subtree.
        let (attach_child, attach_parent) = if leaving_on_u_side {
            (orig_u, orig_v)
        } else {
            (orig_v, orig_u)
        };
        // Reverse the path attach_child -> ... -> (child end of leaving).
        let mut prev_node = attach_parent;
        let mut prev_edge = e;
        let mut cur = attach_child;
        loop {
            let next = parent[cur];
            let next_edge = parent_edge[cur];
            parent[cur] = prev_node;
            parent_edge[cur] = prev_edge;
            let reached_cut = next_edge == leaving;
            prev_node = cur;
            prev_edge = next_edge;
            cur = next;
            if reached_cut {
                break;
            }
        }
        // Recompute depths and potentials from scratch (O(n) per pivot,
        // fine at these sizes; tree is valid again).
        recompute(
            &parent,
            &parent_edge,
            &from,
            &cost,
            root,
            &mut depth,
            &mut potential,
        );
    }

    // Any residual artificial flow means the supplies cannot be routed.
    let leftover: i64 = (real..m).map(|e| flow[e]).sum();
    if leftover > 0 {
        let required: i64 = supply.iter().filter(|&&b| b > 0).sum();
        return Err(NetflowError::Infeasible {
            required,
            achieved: required - leftover,
        });
    }

    let mut flows = Vec::with_capacity(real);
    let mut total = 0i64;
    for (i, (_, arc)) in net.arcs().enumerate() {
        let f = flow[i] + arc.lower_bound;
        total += arc.cost * f;
        flows.push(f);
    }
    Ok(FlowSolution {
        flows,
        value: target,
        cost: total,
    })
}

/// Rebuilds depths and potentials by walking the tree from the root.
fn recompute(
    parent: &[usize],
    parent_edge: &[usize],
    from: &[usize],
    cost: &[i64],
    root: usize,
    depth: &mut [u32],
    potential: &mut [i64],
) {
    let n = parent.len();
    depth[root] = 0;
    potential[root] = 0;
    let mut done = vec![false; n];
    done[root] = true;
    for start in 0..n {
        if done[start] || start == root {
            continue;
        }
        // Walk up to a finished node, then unwind.
        let mut stack = Vec::new();
        let mut cur = start;
        while !done[cur] {
            stack.push(cur);
            cur = parent[cur];
        }
        while let Some(v) = stack.pop() {
            let p = parent[v];
            let e = parent_edge[v];
            depth[v] = depth[p] + 1;
            // Reduced cost of tree arcs is zero: pot[from] + cost = pot[to].
            potential[v] = if from[e] == v {
                potential[p] - cost[e]
            } else {
                potential[p] + cost[e]
            };
            done[v] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{min_cost_flow, min_cost_flow_cycle_canceling, validate};

    #[test]
    fn matches_ssp_on_a_diamond() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 2, 1).unwrap();
        net.add_arc(s, b, 2, 4).unwrap();
        net.add_arc(a, b, 1, -2).unwrap();
        net.add_arc(a, t, 1, 6).unwrap();
        net.add_arc(b, t, 3, 1).unwrap();
        for f in 0..=3 {
            let ssp = min_cost_flow(&net, s, t, f).unwrap();
            let nsx = min_cost_flow_network_simplex(&net, s, t, f).unwrap();
            validate(&net, s, t, &nsx).unwrap();
            assert_eq!(ssp.cost, nsx.cost, "flow {f}");
        }
    }

    #[test]
    fn saturates_negative_cycles() {
        // Same cyclic instance the cycle-cancelling tests use.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, b, 2, -3).unwrap();
        net.add_arc(b, a, 2, 1).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        let nsx = min_cost_flow_network_simplex(&net, s, t, 1).unwrap();
        let cc = min_cost_flow_cycle_canceling(&net, s, t, 1).unwrap();
        validate(&net, s, t, &nsx).unwrap();
        assert_eq!(nsx.cost, cc.cost);
        assert_eq!(nsx.cost, -5);
    }

    #[test]
    fn lower_bounds_respected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 1, 1, 100).unwrap();
        net.add_arc(a, t, 1, 0).unwrap();
        net.add_arc(s, b, 1, 0).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        let sol = min_cost_flow_network_simplex(&net, s, t, 1).unwrap();
        validate(&net, s, t, &sol).unwrap();
        assert_eq!(sol.cost, 100);
        assert_eq!(sol.flows[0], 1);
    }

    #[test]
    fn infeasible_detected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 2, 1).unwrap();
        assert!(matches!(
            min_cost_flow_network_simplex(&net, s, t, 3),
            Err(NetflowError::Infeasible { .. })
        ));
    }

    #[test]
    fn zero_target() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 2, 1).unwrap();
        let sol = min_cost_flow_network_simplex(&net, s, t, 0).unwrap();
        assert_eq!(sol.cost, 0);
    }
}
