//! Network simplex — the classical algorithm for minimum-cost flows (the
//! Nemhauser–Wolsey \[17\] era's workhorse, and still the fastest solver in
//! practice on many network families).
//!
//! A bounded-variable primal simplex specialised to networks: the basis is
//! a spanning tree (rooted at an artificial node), non-tree arcs sit at
//! their lower or upper bound, and a pivot pushes flow around the unique
//! cycle an entering arc closes. Two implementation choices carry the
//! performance (both from Király & Kovács' survey of practical
//! implementations):
//!
//! * **Block-search entering rule.** Instead of rescanning every arc from
//!   index 0 per pivot (the previous Bland rule), a circular cursor resumes
//!   where the last pivot stopped and examines arcs in blocks of
//!   `B` (`LemraConfig::simplex_block`, default `max(⌈√m⌉, 10)`), taking
//!   the most violating arc of the first block that contains one. Pivot
//!   selection cost drops from Θ(m) to amortised O(B) while keeping most of
//!   Dantzig's pivot quality.
//! * **Strongly feasible basis.** Every zero-flow tree arc points toward
//!   the root and every saturated tree arc points away; the leaving arc is
//!   the *last* blocking arc when the pivot cycle is traversed in the push
//!   direction starting at its apex. This pins the degenerate-pivot
//!   tie-break (Cunningham's rule), guarantees termination without Bland's
//!   conservative scan order, and lets tree updates relabel only the
//!   smaller of the two subtrees a pivot separates — subtree sizes are kept
//!   in the basis arrays (`succ_num`), which also power an O(depth) LCA
//!   without per-node depth bookkeeping.
//!
//! The production solver remains [`min_cost_flow`](crate::min_cost_flow);
//! simplex is the cross-check backend that is exact on negative-cost
//! *cycles* and, with the rules above, fast enough to run routinely at
//! 512+ variables.

use crate::budget::SolveBudget;
use crate::config::LemraConfig;
use crate::graph::{FlowNetwork, NodeId};
use crate::ssp::check_endpoints;
use crate::{FlowSolution, NetflowError};

const NONE: usize = usize::MAX;

/// Non-tree arc resting at its lower bound (flow 0 after reduction).
const AT_LOWER: u8 = 0;
/// Basic arc: part of the spanning-tree basis.
const IN_TREE: u8 = 1;
/// Non-tree arc resting at its upper bound (flow == reduced capacity).
const AT_UPPER: u8 = 2;

/// Solves for a minimum-cost flow of exactly `target` units from `s` to
/// `t` with the network simplex method, honouring arc lower bounds.
///
/// Unlike [`min_cost_flow`](crate::min_cost_flow), negative-cost *cycles*
/// are handled correctly (the optimal basis saturates them), so this solver
/// doubles as a second reference for cyclic networks alongside
/// [`min_cost_flow_cycle_canceling`](crate::min_cost_flow_cycle_canceling).
///
/// The entering-arc block size comes from
/// [`LemraConfig::simplex_block`](crate::LemraConfig) (`LEMRA_SIMPLEX_BLOCK`);
/// use [`min_cost_flow_network_simplex_with_block`] to pin it explicitly.
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if no feasible flow of value `target`
///   satisfying all lower bounds exists.
/// * [`NetflowError::InvalidArc`] / [`NetflowError::Overflow`] if
///   [`FlowNetwork::validate_input`] rejects the instance.
/// * [`NetflowError::BudgetExceeded`] if the pivot limit is exhausted —
///   either a caller-supplied [`SolveBudget`](crate::SolveBudget) (via
///   [`Backend::solve_with_budget`](crate::Backend::solve_with_budget) or a
///   workspace-installed budget) or the defensive `64·arcs·nodes` backstop,
///   which a strongly feasible basis never reaches.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{min_cost_flow_network_simplex, FlowNetwork};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, a, t) = (net.add_node(), net.add_node(), net.add_node());
/// net.add_arc(s, a, 2, 3)?;
/// net.add_arc(a, t, 2, -1)?;
/// let sol = min_cost_flow_network_simplex(&net, s, t, 2)?;
/// assert_eq!(sol.cost, 2 * (3 - 1));
/// # Ok(())
/// # }
/// ```
pub fn min_cost_flow_network_simplex(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<FlowSolution, NetflowError> {
    let block = LemraConfig::get().simplex_block.unwrap_or(0);
    min_cost_flow_network_simplex_with_block(net, s, t, target, block)
}

/// [`min_cost_flow_network_simplex`] with an explicit entering-arc block
/// size (`0` picks the default `max(⌈√m⌉, 10)`). Block size `1` degenerates
/// to a first-eligible-from-cursor rule — the setting the pivot-sequence
/// regression tests use.
///
/// # Errors
///
/// Same as [`min_cost_flow_network_simplex`].
pub fn min_cost_flow_network_simplex_with_block(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
    block: usize,
) -> Result<FlowSolution, NetflowError> {
    min_cost_flow_network_simplex_budgeted(net, s, t, target, block, SolveBudget::default())
}

/// [`min_cost_flow_network_simplex_with_block`] under a caller-supplied
/// [`SolveBudget`]: `budget.max_pivots` caps the pivot count below the
/// defensive backstop and the deadline is polled every 1024 pivots, so the
/// unlimited default adds nothing to the pivot loop.
pub(crate) fn min_cost_flow_network_simplex_budgeted(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
    block: usize,
    budget: SolveBudget,
) -> Result<FlowSolution, NetflowError> {
    check_endpoints(net, s, t, target)?;

    // Reduce lower bounds and the fixed s->t requirement to node supplies.
    let n = net.node_count();
    let mut supply = vec![0i64; n];
    for (_, arc) in net.arcs() {
        supply[arc.to.index()] += arc.lower_bound;
        supply[arc.from.index()] -= arc.lower_bound;
    }
    supply[s.index()] += target;
    supply[t.index()] -= target;

    // Working arc arrays (capacities already reduced by lower bounds),
    // plus one artificial arc per node to the root (index n).
    let real = net.arc_count();
    let mut from = Vec::with_capacity(real + n);
    let mut to = Vec::with_capacity(real + n);
    let mut cap = Vec::with_capacity(real + n);
    let mut cost = Vec::with_capacity(real + n);
    let mut max_abs_cost = 1i64;
    for (_, arc) in net.arcs() {
        from.push(arc.from.index());
        to.push(arc.to.index());
        cap.push(arc.capacity - arc.lower_bound);
        cost.push(arc.cost);
        max_abs_cost = max_abs_cost.max(arc.cost.abs());
    }
    let total_supply: i64 = supply.iter().filter(|&&b| b > 0).sum();
    let big = max_abs_cost
        .saturating_mul((n as i64) + 1)
        .saturating_add(1);
    let root = n;
    // Artificial arcs carry each node's initial imbalance to/from the root.
    // Their capacity strictly exceeds any flow they can ever carry
    // (conservation bounds it by total_supply), so no artificial arc is at
    // its upper bound: the initial star satisfies the strong-feasibility
    // invariant (zero-flow tree arcs point toward the root, and no
    // saturated tree arcs exist at all).
    for (v, &b) in supply.iter().enumerate() {
        if b >= 0 {
            from.push(v);
            to.push(root);
        } else {
            from.push(root);
            to.push(v);
        }
        cap.push(2 * total_supply + 1);
        cost.push(big);
    }

    let m = from.len();
    let block = if block > 0 {
        block
    } else {
        (m as f64).sqrt().ceil() as usize
    }
    .clamp(1, m.max(1));
    let mut flow = vec![0i64; m];
    let mut state = vec![AT_LOWER; m];
    // Initial basis: the artificial star, carrying the supplies. Basis
    // arrays are indexed by node (root = n): parent pointers, the tree arc
    // to the parent, simplex multipliers, subtree sizes and a doubly-linked
    // children list for subtree traversal.
    let mut parent = vec![NONE; n + 1];
    let mut parent_edge = vec![NONE; n + 1];
    let mut potential = vec![0i64; n + 1];
    let mut succ_num = vec![1usize; n + 1];
    let mut first_child = vec![NONE; n + 1];
    let mut next_sib = vec![NONE; n + 1];
    let mut prev_sib = vec![NONE; n + 1];
    succ_num[root] = n + 1;
    for (v, &b) in supply.iter().enumerate() {
        let e = real + v;
        state[e] = IN_TREE;
        parent[v] = root;
        parent_edge[v] = e;
        flow[e] = b.abs();
        potential[v] = if b >= 0 { -big } else { big };
        next_sib[v] = first_child[root];
        if first_child[root] != NONE {
            prev_sib[first_child[root]] = v;
        }
        first_child[root] = v;
    }

    // Pivot until no violating non-tree arc remains. The backstop bounds
    // even adversarial bases; a caller budget can only tighten it.
    let backstop = 64u64
        .saturating_mul(m as u64)
        .saturating_mul(n as u64 + 1)
        .max(10_000);
    let max_pivots = budget.max_pivots.map_or(backstop, |b| b.min(backstop));
    let mut pivots = 0u64;
    let mut next_arc = 0usize; // circular block-search cursor
    let mut dfs = Vec::with_capacity(n + 1);
    let mut path: Vec<(usize, usize, usize)> = Vec::new(); // (node, old parent, old parent edge)
    loop {
        pivots += 1;
        if pivots > max_pivots {
            return Err(NetflowError::BudgetExceeded {
                backend: "simplex",
                phase: "pivot",
                progress: pivots - 1,
            });
        }
        if pivots & 1023 == 0 {
            budget.check_deadline("simplex", "pivot", pivots)?;
        }
        // Entering arc: resume the circular scan at the cursor; within each
        // block take the arc with the largest optimality violation, moving
        // on to the next block only if the current one has none.
        let mut entering = None;
        let mut best_violation = 0i64;
        let mut examined = 0usize;
        let mut in_block = 0usize;
        let mut e = next_arc;
        while examined < m {
            // Arcs with zero working capacity (lower bound == capacity)
            // are frozen: they sit at both bounds and can never improve.
            let violation = match state[e] {
                AT_LOWER if cap[e] > 0 => -(cost[e] + potential[from[e]] - potential[to[e]]),
                AT_UPPER => cost[e] + potential[from[e]] - potential[to[e]],
                _ => 0,
            };
            if violation > best_violation {
                best_violation = violation;
                entering = Some(e);
            }
            examined += 1;
            in_block += 1;
            e += 1;
            if e == m {
                e = 0;
            }
            if in_block == block {
                if entering.is_some() {
                    break;
                }
                in_block = 0;
            }
        }
        let Some(enter) = entering else { break };
        next_arc = e;
        let rc = cost[enter] + potential[from[enter]] - potential[to[enter]];
        // Direction: at lower bound push forward, at upper bound backward.
        let forward = state[enter] == AT_LOWER;
        let (u, v) = if forward {
            (from[enter], to[enter])
        } else {
            (to[enter], from[enter])
        };

        // The pivot cycle runs join -> ... -> u, enter, v -> ... -> join in
        // the push direction. Strong feasibility requires the *last*
        // blocking arc in that traversal order to leave: nearest-u wins
        // u-side ties (strict `<`, first seen walking up from u), the
        // entering arc beats u-side ties, and the v-side arc nearest the
        // join beats everything at equal headroom (`<=`, last seen walking
        // up from v). `succ_num` gives the LCA walk: the side whose node
        // has the (weakly) smaller subtree cannot be the other's ancestor,
        // so it is always safe to advance.
        let mut delta = if forward { cap[enter] } else { flow[enter] };
        let mut leaving = enter;
        let mut cut = NONE; // child endpoint of the leaving tree arc
        let mut leaving_on_u_side = false;
        {
            let (mut uu, mut vv) = (u, v);
            while uu != vv {
                if succ_num[uu] <= succ_num[vv] {
                    let pe = parent_edge[uu];
                    // The cycle sends flow *into* u from above: along uu's
                    // parent edge when it points down into uu, against it
                    // when it points up.
                    let headroom = if to[pe] == uu {
                        cap[pe] - flow[pe]
                    } else {
                        flow[pe]
                    };
                    if headroom < delta {
                        delta = headroom;
                        leaving = pe;
                        cut = uu;
                        leaving_on_u_side = true;
                    }
                    uu = parent[uu];
                } else {
                    let pe = parent_edge[vv];
                    let headroom = if from[pe] == vv {
                        cap[pe] - flow[pe]
                    } else {
                        flow[pe]
                    };
                    if headroom <= delta {
                        delta = headroom;
                        leaving = pe;
                        cut = vv;
                        leaving_on_u_side = false;
                    }
                    vv = parent[vv];
                }
            }
        }

        // Apply the push around the cycle.
        if delta > 0 {
            if forward {
                flow[enter] += delta;
            } else {
                flow[enter] -= delta;
            }
            let (mut uu, mut vv) = (u, v);
            while uu != vv {
                if succ_num[uu] <= succ_num[vv] {
                    let pe = parent_edge[uu];
                    if to[pe] == uu {
                        flow[pe] += delta;
                    } else {
                        flow[pe] -= delta;
                    }
                    uu = parent[uu];
                } else {
                    let pe = parent_edge[vv];
                    if from[pe] == vv {
                        flow[pe] += delta;
                    } else {
                        flow[pe] -= delta;
                    }
                    vv = parent[vv];
                }
            }
        }

        if leaving == enter {
            // The entering arc ran to its opposite bound: basis unchanged.
            state[enter] = if forward { AT_UPPER } else { AT_LOWER };
            continue;
        }

        // Basis exchange: `enter` becomes a tree arc, `leaving` drops to
        // the bound its flow now sits at.
        state[enter] = IN_TREE;
        state[leaving] = if flow[leaving] == 0 {
            AT_LOWER
        } else {
            AT_UPPER
        };

        // The cut subtree S hangs below `cut` and contains the entering
        // arc's endpoint on that side; re-root S at that endpoint and hang
        // it off the other endpoint through `enter`.
        let (attach_child, attach_parent) = if leaving_on_u_side { (u, v) } else { (v, u) };
        let size_s = succ_num[cut];

        // Subtree counts: S leaves `cut`'s old ancestors and joins
        // `attach_parent`'s chain (both entirely outside S, hence
        // untouched by the re-rooting below).
        let mut w = parent[cut];
        while w != NONE {
            succ_num[w] -= size_s;
            w = if w == root { NONE } else { parent[w] };
        }
        let mut w = attach_parent;
        loop {
            succ_num[w] += size_s;
            if w == root {
                break;
            }
            w = parent[w];
        }

        // Re-root S: reverse the tree path attach_child = p0, p1, …, pk =
        // cut. Each node's subtree in the new orientation is everything in
        // S minus the new subtree of its new parent's other branches —
        // which telescopes to succ_num(p_{i+1}) = |S| − old_succ(p_i).
        path.clear();
        let mut x = attach_child;
        loop {
            path.push((x, parent[x], parent_edge[x]));
            if x == cut {
                break;
            }
            x = parent[x];
        }
        let detach = |first_child: &mut [usize],
                      next_sib: &mut [usize],
                      prev_sib: &mut [usize],
                      node: usize,
                      old_parent: usize| {
            if prev_sib[node] != NONE {
                next_sib[prev_sib[node]] = next_sib[node];
            } else {
                first_child[old_parent] = next_sib[node];
            }
            if next_sib[node] != NONE {
                prev_sib[next_sib[node]] = prev_sib[node];
            }
        };
        let attach = |first_child: &mut [usize],
                      next_sib: &mut [usize],
                      prev_sib: &mut [usize],
                      node: usize,
                      new_parent: usize| {
            next_sib[node] = first_child[new_parent];
            if first_child[new_parent] != NONE {
                prev_sib[first_child[new_parent]] = node;
            }
            prev_sib[node] = NONE;
            first_child[new_parent] = node;
        };
        let mut old_succ_prev = 0usize;
        for (i, &(node, old_parent, _)) in path.iter().enumerate() {
            detach(
                &mut first_child,
                &mut next_sib,
                &mut prev_sib,
                node,
                old_parent,
            );
            let (new_parent, new_pe, new_succ) = if i == 0 {
                (attach_parent, enter, size_s)
            } else {
                (path[i - 1].0, path[i - 1].2, size_s - old_succ_prev)
            };
            old_succ_prev = succ_num[node];
            attach(
                &mut first_child,
                &mut next_sib,
                &mut prev_sib,
                node,
                new_parent,
            );
            parent[node] = new_parent;
            parent_edge[node] = new_pe;
            succ_num[node] = new_succ;
        }

        // Relabel simplex multipliers: tree arcs inside S keep zero reduced
        // cost under a uniform shift, so only the entering arc constrains
        // it — shift S by −rc when its endpoint is the arc's tail, by +rc
        // when it is the head. Potentials are a gauge (only differences
        // matter), so when S is the larger side, shift the complement by
        // the negated delta instead and touch min(|S|, n+1−|S|) nodes.
        let shift = if from[enter] == attach_child { -rc } else { rc };
        dfs.clear();
        if 2 * size_s <= n + 1 {
            dfs.push(attach_child);
            while let Some(x) = dfs.pop() {
                potential[x] += shift;
                let mut c = first_child[x];
                while c != NONE {
                    dfs.push(c);
                    c = next_sib[c];
                }
            }
        } else {
            dfs.push(root);
            while let Some(x) = dfs.pop() {
                potential[x] -= shift;
                let mut c = first_child[x];
                while c != NONE {
                    if c != attach_child {
                        dfs.push(c);
                    }
                    c = next_sib[c];
                }
            }
        }
    }

    // Any residual artificial flow means the supplies cannot be routed.
    let leftover: i64 = (real..m).map(|e| flow[e]).sum();
    if leftover > 0 {
        let required: i64 = supply.iter().filter(|&&b| b > 0).sum();
        return Err(NetflowError::Infeasible {
            required,
            achieved: required - leftover,
        });
    }

    let mut flows = Vec::with_capacity(real);
    let mut total = 0i64;
    for (i, (_, arc)) in net.arcs().enumerate() {
        let f = flow[i] + arc.lower_bound;
        total += arc.cost * f;
        flows.push(f);
    }
    Ok(FlowSolution {
        flows,
        value: target,
        cost: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{min_cost_flow, min_cost_flow_cycle_canceling, validate};
    use proptest::prelude::*;

    #[test]
    fn matches_ssp_on_a_diamond() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 2, 1).unwrap();
        net.add_arc(s, b, 2, 4).unwrap();
        net.add_arc(a, b, 1, -2).unwrap();
        net.add_arc(a, t, 1, 6).unwrap();
        net.add_arc(b, t, 3, 1).unwrap();
        for f in 0..=3 {
            let ssp = min_cost_flow(&net, s, t, f).unwrap();
            let nsx = min_cost_flow_network_simplex(&net, s, t, f).unwrap();
            validate(&net, s, t, &nsx).unwrap();
            assert_eq!(ssp.cost, nsx.cost, "flow {f}");
        }
    }

    #[test]
    fn saturates_negative_cycles() {
        // Same cyclic instance the cycle-cancelling tests use.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, b, 2, -3).unwrap();
        net.add_arc(b, a, 2, 1).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        let nsx = min_cost_flow_network_simplex(&net, s, t, 1).unwrap();
        let cc = min_cost_flow_cycle_canceling(&net, s, t, 1).unwrap();
        validate(&net, s, t, &nsx).unwrap();
        assert_eq!(nsx.cost, cc.cost);
        assert_eq!(nsx.cost, -5);
    }

    #[test]
    fn lower_bounds_respected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 1, 1, 100).unwrap();
        net.add_arc(a, t, 1, 0).unwrap();
        net.add_arc(s, b, 1, 0).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        let sol = min_cost_flow_network_simplex(&net, s, t, 1).unwrap();
        validate(&net, s, t, &sol).unwrap();
        assert_eq!(sol.cost, 100);
        assert_eq!(sol.flows[0], 1);
    }

    #[test]
    fn infeasible_detected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 2, 1).unwrap();
        assert!(matches!(
            min_cost_flow_network_simplex(&net, s, t, 3),
            Err(NetflowError::Infeasible { .. })
        ));
    }

    #[test]
    fn zero_target() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 2, 1).unwrap();
        let sol = min_cost_flow_network_simplex(&net, s, t, 0).unwrap();
        assert_eq!(sol.cost, 0);
    }

    /// Satellite regression: block size 1 — the first-eligible rule closest
    /// to the old Dantzig/Bland scan — must land on the same objective as
    /// the default block size on a mixed-sign cyclic instance.
    #[test]
    fn block_size_one_reproduces_default_objective() {
        let mut net = FlowNetwork::new();
        let nodes: Vec<_> = (0..8).map(|_| net.add_node()).collect();
        let arcs = [
            (0usize, 1usize, 3i64, 2i64),
            (0, 2, 2, 5),
            (1, 3, 2, -4),
            (3, 1, 2, 1),
            (2, 3, 3, 0),
            (3, 4, 2, 3),
            (4, 5, 2, -1),
            (5, 4, 1, 0),
            (4, 6, 2, 2),
            (5, 7, 3, 1),
            (6, 7, 2, -2),
            (2, 5, 1, 7),
        ];
        for &(u, v, cap, cost) in &arcs {
            net.add_arc(nodes[u], nodes[v], cap, cost).unwrap();
        }
        let (s, t) = (nodes[0], nodes[7]);
        for target in 0..=3 {
            let dantzig = min_cost_flow_network_simplex_with_block(&net, s, t, target, 1).unwrap();
            let blocked = min_cost_flow_network_simplex_with_block(&net, s, t, target, 0).unwrap();
            validate(&net, s, t, &dantzig).unwrap();
            validate(&net, s, t, &blocked).unwrap();
            assert_eq!(dantzig.cost, blocked.cost, "target {target}");
        }
    }

    #[test]
    fn exhausted_pivot_budget_is_a_typed_error() {
        // Regression: a starved pivot loop must surface as BudgetExceeded
        // with backend/phase/progress, not as a stringly InvalidSolution.
        // Dantzig pricing (block 1) on a net with interior negative-cost
        // cycles needs several pivots even for target 1.
        let mut net = FlowNetwork::new();
        let nodes: Vec<_> = (0..8).map(|_| net.add_node()).collect();
        let arcs = [
            (0usize, 1usize, 3i64, 2i64),
            (0, 2, 2, 5),
            (1, 3, 2, -4),
            (3, 1, 2, 1),
            (2, 3, 3, 0),
            (3, 4, 2, 3),
            (4, 5, 2, -1),
            (5, 4, 1, 0),
            (4, 6, 2, 2),
            (5, 7, 3, 1),
            (6, 7, 2, -2),
            (2, 5, 1, 7),
        ];
        for &(u, v, cap, cost) in &arcs {
            net.add_arc(nodes[u], nodes[v], cap, cost).unwrap();
        }
        let (s, t) = (nodes[0], nodes[7]);
        let budget = SolveBudget::default().with_max_pivots(1);
        let err = min_cost_flow_network_simplex_budgeted(&net, s, t, 3, 1, budget).unwrap_err();
        match err {
            NetflowError::BudgetExceeded {
                backend,
                phase,
                progress,
            } => {
                assert_eq!(backend, "simplex");
                assert_eq!(phase, "pivot");
                assert_eq!(progress, 1);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // An adequate budget solves the same instance.
        let budget = SolveBudget::default().with_max_pivots(10_000);
        let sol = min_cost_flow_network_simplex_budgeted(&net, s, t, 3, 1, budget).unwrap();
        let cc = min_cost_flow_cycle_canceling(&net, s, t, 3).unwrap();
        assert_eq!(sol.cost, cc.cost);
    }

    proptest! {
        /// Every block size must agree with SSP's objective on random DAGs
        /// (and pass reduced-cost validation), regardless of where the
        /// circular cursor cuts the scan.
        #[test]
        fn any_block_size_matches_ssp(
            arcs in proptest::collection::vec(
                (0usize..6, 1usize..7, 1i64..5, -10i64..10),
                1..16,
            ),
            target in 0i64..4,
            block in 0usize..9,
        ) {
            let mut net = FlowNetwork::new();
            let nodes: Vec<_> = (0..8).map(|_| net.add_node()).collect();
            for (u, d, cap, cost) in arcs {
                let v = (u + d).min(7);
                if v > u {
                    net.add_arc(nodes[u], nodes[v], cap, cost).unwrap();
                }
            }
            net.add_arc(nodes[0], nodes[7], 8, 50).unwrap(); // keep feasible
            let (s, t) = (nodes[0], nodes[7]);
            let ssp = min_cost_flow(&net, s, t, target).unwrap();
            let nsx =
                min_cost_flow_network_simplex_with_block(&net, s, t, target, block).unwrap();
            validate(&net, s, t, &nsx).unwrap();
            prop_assert_eq!(ssp.cost, nsx.cost);
        }
    }
}
