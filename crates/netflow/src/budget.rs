//! Cooperative solve budgets and deadlines.
//!
//! A [`SolveBudget`] bounds how much work one min-cost-flow solve may do
//! before it gives up with a structured
//! [`NetflowError::BudgetExceeded`](crate::NetflowError::BudgetExceeded)
//! instead of running away on an adversarial instance. The budget travels
//! inside the [`SolverWorkspace`](crate::SolverWorkspace) (set it with
//! [`SolverWorkspace::set_budget`](crate::SolverWorkspace::set_budget) or
//! let [`McfSolver::solve_budgeted`](crate::McfSolver::solve_budgeted)
//! install it for one call) and is checked **cooperatively at phase
//! boundaries** — once per shortest-path round, per cancellation round, per
//! simplex pivot block — so the default unlimited budget costs two `Option`
//! reads per round and zero clock reads on the solver hot path.
//!
//! The three limits are independent and any subset may be set:
//!
//! * `max_pivots` — network-simplex pivots (the only backend whose unit of
//!   progress is a pivot).
//! * `max_rounds` — shortest-path / cancellation / drain rounds for the
//!   SSP-family backends, cycle cancelling and the reoptimizer.
//! * `deadline` — a wall-clock [`Instant`]; checked only when set, so the
//!   default never touches the clock.

use crate::NetflowError;
use std::time::Instant;

/// Cooperative work limits for one min-cost-flow solve.
///
/// The default is unlimited on every axis. Budgets are plain data
/// (`Copy`): install one per solve via
/// [`McfSolver::solve_budgeted`](crate::McfSolver::solve_budgeted) or
/// [`Backend::solve_with_budget`](crate::Backend::solve_with_budget), or
/// persistently via
/// [`SolverWorkspace::set_budget`](crate::SolverWorkspace::set_budget) /
/// [`ResilientSolver::set_budget`](crate::ResilientSolver::set_budget).
///
/// # Examples
///
/// ```
/// use lemra_netflow::{Backend, FlowNetwork, NetflowError, SolveBudget};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, t) = (net.add_node(), net.add_node());
/// net.add_arc(s, t, 4, 3)?;
/// // An unlimited budget changes nothing.
/// let sol = Backend::Ssp.solve_with_budget(&net, s, t, 2, SolveBudget::default())?;
/// assert_eq!(sol.cost, 6);
/// // A zero-round budget trips before the first augmentation.
/// let err = Backend::Ssp
///     .solve_with_budget(&net, s, t, 2, SolveBudget::default().with_max_rounds(0))
///     .unwrap_err();
/// assert!(matches!(err, NetflowError::BudgetExceeded { backend: "ssp", .. }));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveBudget {
    /// Maximum network-simplex pivots; `None` leaves the algorithm's own
    /// `64·arcs·nodes` backstop as the only bound.
    pub max_pivots: Option<u64>,
    /// Maximum shortest-path / cancellation / drain rounds; `None` is
    /// unlimited.
    pub max_rounds: Option<u64>,
    /// Wall-clock deadline; `None` never reads the clock.
    pub deadline: Option<Instant>,
}

impl SolveBudget {
    /// The unlimited budget (identical to `SolveBudget::default()`).
    pub const UNLIMITED: SolveBudget = SolveBudget {
        max_pivots: None,
        max_rounds: None,
        deadline: None,
    };

    /// This budget with `max_pivots` set.
    pub fn with_max_pivots(mut self, pivots: u64) -> Self {
        self.max_pivots = Some(pivots);
        self
    }

    /// This budget with `max_rounds` set.
    pub fn with_max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = Some(rounds);
        self
    }

    /// This budget with the wall-clock deadline set.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// This budget with the deadline set `timeout` from now — how the
    /// allocation server turns a per-request timeout into a solve budget.
    pub fn with_timeout(self, timeout: std::time::Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// True when no limit is set — solvers use this to skip accounting.
    pub fn is_unlimited(&self) -> bool {
        self.max_pivots.is_none() && self.max_rounds.is_none() && self.deadline.is_none()
    }

    /// Checks the round budget and the deadline after `progress` completed
    /// rounds of `phase` in `backend`.
    ///
    /// # Errors
    ///
    /// [`NetflowError::BudgetExceeded`] naming the backend, phase and
    /// progress when a limit has run out.
    #[inline]
    pub fn check_rounds(
        &self,
        backend: &'static str,
        phase: &'static str,
        progress: u64,
    ) -> Result<(), NetflowError> {
        if let Some(max) = self.max_rounds {
            if progress >= max {
                return Err(NetflowError::BudgetExceeded {
                    backend,
                    phase,
                    progress,
                });
            }
        }
        self.check_deadline(backend, phase, progress)
    }

    /// Checks the pivot budget and the deadline after `progress` completed
    /// pivots of `phase` in `backend`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::check_rounds`], against `max_pivots`.
    #[inline]
    pub fn check_pivots(
        &self,
        backend: &'static str,
        phase: &'static str,
        progress: u64,
    ) -> Result<(), NetflowError> {
        if let Some(max) = self.max_pivots {
            if progress >= max {
                return Err(NetflowError::BudgetExceeded {
                    backend,
                    phase,
                    progress,
                });
            }
        }
        self.check_deadline(backend, phase, progress)
    }

    /// Checks only the deadline (for phases that amortise the clock read
    /// over many cheap steps). Reads the clock only when a deadline is set.
    ///
    /// # Errors
    ///
    /// [`NetflowError::BudgetExceeded`] when the deadline has passed.
    #[inline]
    pub fn check_deadline(
        &self,
        backend: &'static str,
        phase: &'static str,
        progress: u64,
    ) -> Result<(), NetflowError> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(NetflowError::BudgetExceeded {
                    backend,
                    phase,
                    progress,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_is_unlimited() {
        let b = SolveBudget::default();
        assert!(b.is_unlimited());
        assert_eq!(b, SolveBudget::UNLIMITED);
        assert!(b.check_rounds("ssp", "augment", u64::MAX).is_ok());
        assert!(b.check_pivots("simplex", "pivot", u64::MAX).is_ok());
    }

    #[test]
    fn round_limit_trips_at_threshold() {
        let b = SolveBudget::default().with_max_rounds(3);
        assert!(!b.is_unlimited());
        assert!(b.check_rounds("ssp", "augment", 2).is_ok());
        let err = b.check_rounds("ssp", "augment", 3).unwrap_err();
        assert!(matches!(
            err,
            NetflowError::BudgetExceeded {
                backend: "ssp",
                phase: "augment",
                progress: 3,
            }
        ));
        // Rounds don't constrain pivots.
        assert!(b.check_pivots("simplex", "pivot", 100).is_ok());
    }

    #[test]
    fn pivot_limit_trips_at_threshold() {
        let b = SolveBudget::default().with_max_pivots(10);
        assert!(b.check_pivots("simplex", "pivot", 9).is_ok());
        assert!(b.check_pivots("simplex", "pivot", 10).is_err());
        assert!(b.check_rounds("ssp", "augment", 100).is_ok());
    }

    #[test]
    fn expired_deadline_trips_every_check() {
        let past = Instant::now() - Duration::from_secs(1);
        let b = SolveBudget::default().with_deadline(past);
        assert!(b.check_rounds("cycle", "cancel", 0).is_err());
        assert!(b.check_pivots("simplex", "pivot", 0).is_err());
        assert!(b.check_deadline("reopt", "drain", 0).is_err());
        let future = Instant::now() + Duration::from_secs(3600);
        let ok = SolveBudget::default().with_deadline(future);
        assert!(ok.check_rounds("cycle", "cancel", 0).is_ok());
    }

    #[test]
    fn error_display_names_backend_and_phase() {
        let err = SolveBudget::default()
            .with_max_rounds(0)
            .check_rounds("ssp", "augment", 0)
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("ssp") && msg.contains("augment"), "{msg}");
    }
}
