//! Capacity-scaling successive-shortest-path min-cost flow.
//!
//! A scaling refinement in the spirit of Edmonds–Karp: phases with
//! threshold Δ (halved until 1) augment only along shortest paths whose
//! bottleneck is at least Δ, so large-capacity networks move bulk flow in
//! few fat augmentations instead of `O(F)` thin ones. The final Δ = 1
//! phase degenerates to plain successive shortest paths, which is what
//! makes the solver exact.
//!
//! The allocation networks of `lemra-core` have unit capacities, where
//! plain SSP is already optimal — this solver exists for the general
//! library surface (large-capacity networks such as the `s → t` bypass arc
//! dominating a big register file) and as a third independent
//! implementation for cross-checking.

use crate::graph::{FlowNetwork, NodeId};
use crate::residual::{idx, Residual};
use crate::ssp::{check_endpoints, solution_from_residual};
use crate::{FlowSolution, NetflowError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const INF: i64 = i64::MAX / 4;

/// Solves for a minimum-cost flow of exactly `target` units from `s` to
/// `t` with capacity scaling, honouring arc lower bounds.
///
/// Same contract as [`min_cost_flow`](crate::min_cost_flow): the network
/// must not contain negative-cost cycles with positive capacity.
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if no feasible flow of value `target`
///   exists.
/// * [`NetflowError::NegativeCycle`] if a negative cycle is detected.
/// * [`NetflowError::InvalidArc`] for invalid endpoints or target.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{min_cost_flow_scaling, FlowNetwork};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, a, t) = (net.add_node(), net.add_node(), net.add_node());
/// net.add_arc(s, a, 1_000_000, 1)?;
/// net.add_arc(a, t, 1_000_000, 2)?;
/// let sol = min_cost_flow_scaling(&net, s, t, 500_000)?;
/// assert_eq!(sol.cost, 500_000 * 3);
/// # Ok(())
/// # }
/// ```
pub fn min_cost_flow_scaling(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<FlowSolution, NetflowError> {
    check_endpoints(net, s, t, target)?;

    // Same excess/deficit reduction as the plain SSP solver.
    let n = net.node_count();
    let mut res = Residual::from_network(net, 2);
    let super_s = n;
    let super_t = n + 1;
    let mut excess = vec![0i64; n];
    for (_, arc) in net.arcs() {
        excess[idx(arc.to)] += arc.lower_bound;
        excess[idx(arc.from)] -= arc.lower_bound;
    }
    excess[idx(s)] += target;
    excess[idx(t)] -= target;
    let mut required = 0i64;
    for (v, &e) in excess.iter().enumerate() {
        if e > 0 {
            res.add_edge(super_s, v, e, 0);
            required += e;
        } else if e < 0 {
            res.add_edge(v, super_t, -e, 0);
        }
    }

    let pushed = scaling_run(&mut res, super_s, super_t, required)?;
    if pushed < required {
        return Err(NetflowError::Infeasible {
            required,
            achieved: pushed,
        });
    }
    Ok(solution_from_residual(net, &res, target))
}

fn scaling_run(res: &mut Residual, s: usize, t: usize, target: i64) -> Result<i64, NetflowError> {
    if target == 0 {
        return Ok(0);
    }
    let n = res.node_count();
    let max_cap = res.edges.iter().map(|e| e.cap).max().unwrap_or(0);
    let mut delta = 1i64;
    while delta * 2 <= max_cap.min(target) {
        delta *= 2;
    }

    // Potentials valid for *all* residual edges (including those below the
    // current Δ) — computed once by Bellman–Ford, then maintained by full
    // (Δ-independent) Dijkstra updates. Using Δ-restricted distances for
    // potential updates can produce negative reduced costs on small edges;
    // we avoid that by running Dijkstra over all positive-capacity edges
    // but only *augmenting* along paths whose bottleneck is ≥ Δ.
    let mut potential = bellman_ford(res, s)?;
    let mut flow = 0i64;

    while delta >= 1 {
        loop {
            if flow >= target {
                return Ok(flow);
            }
            // Dijkstra over edges with cap > 0.
            let mut dist = vec![INF; n];
            let mut parent_edge = vec![u32::MAX; n];
            let mut bottleneck_to = vec![0i64; n];
            let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
            dist[s] = 0;
            bottleneck_to[s] = INF;
            heap.push(Reverse((0, s)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for &e in &res.adj[u] {
                    let edge = res.edges[e as usize];
                    if edge.cap <= 0 {
                        continue;
                    }
                    let v = edge.to as usize;
                    if potential[u] >= INF || potential[v] >= INF {
                        continue;
                    }
                    let nd = d + edge.cost + potential[u] - potential[v];
                    if nd < dist[v] {
                        dist[v] = nd;
                        parent_edge[v] = e;
                        bottleneck_to[v] = bottleneck_to[u].min(edge.cap);
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
            if dist[t] >= INF {
                break;
            }
            for (v, p) in potential.iter_mut().enumerate() {
                if dist[v] < INF && *p < INF {
                    *p += dist[v];
                }
            }
            if bottleneck_to[t] < delta {
                // Shortest path too thin for this phase.
                break;
            }
            let mut amount = bottleneck_to[t].min(target - flow);
            let mut v = t;
            while v != s {
                let e = parent_edge[v];
                amount = amount.min(res.edges[e as usize].cap);
                v = res.edges[(e ^ 1) as usize].to as usize;
            }
            let mut v = t;
            while v != s {
                let e = parent_edge[v];
                res.push(e, amount);
                v = res.edges[(e ^ 1) as usize].to as usize;
            }
            flow += amount;
        }
        delta /= 2;
    }
    Ok(flow)
}

fn bellman_ford(res: &Residual, s: usize) -> Result<Vec<i64>, NetflowError> {
    let n = res.node_count();
    let mut dist = vec![INF; n];
    dist[s] = 0;
    for round in 0..n {
        let mut changed = false;
        for u in 0..n {
            if dist[u] >= INF {
                continue;
            }
            for &e in &res.adj[u] {
                let edge = res.edges[e as usize];
                if edge.cap <= 0 {
                    continue;
                }
                let v = edge.to as usize;
                if dist[u] + edge.cost < dist[v] {
                    dist[v] = dist[u] + edge.cost;
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(dist);
        }
        if round == n - 1 {
            return Err(NetflowError::NegativeCycle);
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{min_cost_flow, validate};

    #[test]
    fn matches_plain_ssp_on_small_networks() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 3, 2).unwrap();
        net.add_arc(s, b, 2, 5).unwrap();
        net.add_arc(a, b, 2, -1).unwrap();
        net.add_arc(a, t, 2, 4).unwrap();
        net.add_arc(b, t, 4, 1).unwrap();
        for f in 0..=5 {
            let plain = min_cost_flow(&net, s, t, f);
            let scaled = min_cost_flow_scaling(&net, s, t, f);
            match (plain, scaled) {
                (Ok(p), Ok(q)) => {
                    validate(&net, s, t, &q).unwrap();
                    assert_eq!(p.cost, q.cost, "flow {f}");
                }
                (Err(_), Err(_)) => {}
                (p, q) => panic!("disagreement at {f}: {p:?} vs {q:?}"),
            }
        }
    }

    #[test]
    fn large_capacities_solve_quickly() {
        // A 40-node chain with million-unit capacities: plain SSP would
        // need one augmentation per bottleneck change; scaling stays fast.
        let mut net = FlowNetwork::new();
        let nodes = net.add_nodes(40);
        for w in nodes.windows(2) {
            net.add_arc(w[0], w[1], 1_000_000, 1).unwrap();
        }
        let sol = min_cost_flow_scaling(&net, nodes[0], nodes[39], 1_000_000).unwrap();
        assert_eq!(sol.cost, 39_000_000);
        validate(&net, nodes[0], nodes[39], &sol).unwrap();
    }

    #[test]
    fn lower_bounds_respected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 2, 5, 100).unwrap();
        net.add_arc(a, t, 5, 0).unwrap();
        net.add_arc(s, b, 5, 1).unwrap();
        net.add_arc(b, t, 5, 1).unwrap();
        let sol = min_cost_flow_scaling(&net, s, t, 3).unwrap();
        validate(&net, s, t, &sol).unwrap();
        assert!(sol.flows[0] >= 2);
        // Two forced units at 100 each, one free unit via b at 2.
        assert_eq!(sol.cost, 202);
    }

    #[test]
    fn infeasible_detected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 3, 1).unwrap();
        assert!(matches!(
            min_cost_flow_scaling(&net, s, t, 4),
            Err(NetflowError::Infeasible { .. })
        ));
    }

    #[test]
    fn zero_target() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 3, 1).unwrap();
        let sol = min_cost_flow_scaling(&net, s, t, 0).unwrap();
        assert_eq!(sol.cost, 0);
    }
}
