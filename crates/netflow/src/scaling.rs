//! Capacity-scaling successive-shortest-path min-cost flow.
//!
//! A scaling refinement in the spirit of Edmonds–Karp: phases with
//! threshold Δ (halved until 1) augment only along shortest paths whose
//! bottleneck is at least Δ, so large-capacity networks move bulk flow in
//! few fat augmentations instead of `O(F)` thin ones. The final Δ = 1
//! phase degenerates to plain successive shortest paths, which is what
//! makes the solver exact.
//!
//! The shortest-path machinery (potential initialisation, early-exit
//! Dijkstra over the CSR residual, workspace reuse) is shared with the plain
//! SSP solver in [`crate::ssp`].
//!
//! The allocation networks of `lemra-core` have unit capacities, where
//! plain SSP is already optimal — this solver exists for the general
//! library surface (large-capacity networks such as the `s → t` bypass arc
//! dominating a big register file) and as a third independent
//! implementation for cross-checking.

use crate::graph::{FlowNetwork, NodeId};
use crate::residual::Residual;
use crate::ssp::{
    augment, check_endpoints, dijkstra_round, initial_potentials, solution_from_residual,
    transform, update_potentials, Transformed,
};
use crate::workspace::{with_thread_workspace, SolverWorkspace, INF};
use crate::{FlowSolution, NetflowError};

/// Solves for a minimum-cost flow of exactly `target` units from `s` to
/// `t` with capacity scaling, honouring arc lower bounds.
///
/// Same contract as [`min_cost_flow`](crate::min_cost_flow): the network
/// must not contain negative-cost cycles with positive capacity.
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if no feasible flow of value `target`
///   exists.
/// * [`NetflowError::NegativeCycle`] if a negative cycle is detected.
/// * [`NetflowError::InvalidArc`] for invalid endpoints or target.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{min_cost_flow_scaling, FlowNetwork};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, a, t) = (net.add_node(), net.add_node(), net.add_node());
/// net.add_arc(s, a, 1_000_000, 1)?;
/// net.add_arc(a, t, 1_000_000, 2)?;
/// let sol = min_cost_flow_scaling(&net, s, t, 500_000)?;
/// assert_eq!(sol.cost, 500_000 * 3);
/// # Ok(())
/// # }
/// ```
pub fn min_cost_flow_scaling(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<FlowSolution, NetflowError> {
    with_thread_workspace(|ws| min_cost_flow_scaling_with(net, s, t, target, ws))
}

/// [`min_cost_flow_scaling`] with an explicit [`SolverWorkspace`].
///
/// # Errors
///
/// Same as [`min_cost_flow_scaling`].
pub fn min_cost_flow_scaling_with(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
    ws: &mut SolverWorkspace,
) -> Result<FlowSolution, NetflowError> {
    check_endpoints(net, s, t, target)?;

    // Same excess/deficit reduction as the plain SSP solver.
    let Transformed {
        mut res,
        super_s,
        super_t,
        required,
    } = transform(net, s, t, target);

    let pushed = scaling_run(&mut res, super_s, super_t, required, ws)?;
    if pushed < required {
        return Err(NetflowError::Infeasible {
            required,
            achieved: pushed,
        });
    }
    Ok(solution_from_residual(net, &res, target))
}

fn scaling_run(
    res: &mut Residual,
    s: usize,
    t: usize,
    target: i64,
    ws: &mut SolverWorkspace,
) -> Result<i64, NetflowError> {
    if target == 0 {
        return Ok(0);
    }
    let max_cap = res.cap.iter().copied().max().unwrap_or(0);
    let mut delta = 1i64;
    // Division form: `delta * 2` would overflow i64 for capacities near
    // i64::MAX (validate_input admits large capacities on cheap arcs).
    while delta <= max_cap.min(target) / 2 {
        delta *= 2;
    }

    // Potentials valid for *all* residual edges (including those below the
    // current Δ) — initialised once (topological relaxation on DAGs, SPFA
    // otherwise — the same O(V+E) DAG path the plain SSP solver uses), then
    // maintained by full (Δ-independent) Dijkstra updates. Using
    // Δ-restricted distances for potential updates can produce negative
    // reduced costs on small edges; we avoid that by running Dijkstra over
    // all positive-capacity edges but only *augmenting* along paths whose
    // bottleneck is ≥ Δ.
    ws.prepare(res.node_count());
    initial_potentials(res, s, ws)?;
    let mut flow = 0i64;

    // One Dijkstra per augmentation, across all phases. Earlier revisions
    // broke out of a phase when the shortest path's bottleneck fell below Δ
    // and re-ran an identical round in the next phase; since the potentials
    // (and hence the shortest-path tree) are Δ-independent, we instead drop
    // Δ to the largest power of two that fits the bottleneck and augment the
    // already-computed path immediately. Likewise, an unreachable sink ends
    // the solve outright — no smaller Δ can reconnect it.
    let budget = ws.budget;
    let mut rounds = 0u64;
    while flow < target {
        budget.check_rounds("scaling", "augment", rounds)?;
        rounds += 1;
        let dist_t = dijkstra_round(res, s, t, ws)?;
        if dist_t >= INF {
            break;
        }
        update_potentials(ws, dist_t);
        let bottleneck = ws.bottleneck_to[t];
        while delta > 1 && bottleneck < delta {
            delta /= 2;
        }
        debug_assert!(bottleneck >= delta);
        flow += augment(res, s, t, ws, target - flow);
    }
    Ok(flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{min_cost_flow, validate};

    #[test]
    fn matches_plain_ssp_on_small_networks() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 3, 2).unwrap();
        net.add_arc(s, b, 2, 5).unwrap();
        net.add_arc(a, b, 2, -1).unwrap();
        net.add_arc(a, t, 2, 4).unwrap();
        net.add_arc(b, t, 4, 1).unwrap();
        for f in 0..=5 {
            let plain = min_cost_flow(&net, s, t, f);
            let scaled = min_cost_flow_scaling(&net, s, t, f);
            match (plain, scaled) {
                (Ok(p), Ok(q)) => {
                    validate(&net, s, t, &q).unwrap();
                    assert_eq!(p.cost, q.cost, "flow {f}");
                }
                (Err(_), Err(_)) => {}
                (p, q) => panic!("disagreement at {f}: {p:?} vs {q:?}"),
            }
        }
    }

    #[test]
    fn large_capacities_solve_quickly() {
        // A 40-node chain with million-unit capacities: plain SSP would
        // need one augmentation per bottleneck change; scaling stays fast.
        let mut net = FlowNetwork::new();
        let nodes = net.add_nodes(40);
        for w in nodes.windows(2) {
            net.add_arc(w[0], w[1], 1_000_000, 1).unwrap();
        }
        let sol = min_cost_flow_scaling(&net, nodes[0], nodes[39], 1_000_000).unwrap();
        assert_eq!(sol.cost, 39_000_000);
        validate(&net, nodes[0], nodes[39], &sol).unwrap();
    }

    #[test]
    fn lower_bounds_respected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 2, 5, 100).unwrap();
        net.add_arc(a, t, 5, 0).unwrap();
        net.add_arc(s, b, 5, 1).unwrap();
        net.add_arc(b, t, 5, 1).unwrap();
        let sol = min_cost_flow_scaling(&net, s, t, 3).unwrap();
        validate(&net, s, t, &sol).unwrap();
        assert!(sol.flows[0] >= 2);
        // Two forced units at 100 each, one free unit via b at 2.
        assert_eq!(sol.cost, 202);
    }

    #[test]
    fn infeasible_detected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 3, 1).unwrap();
        assert!(matches!(
            min_cost_flow_scaling(&net, s, t, 4),
            Err(NetflowError::Infeasible { .. })
        ));
    }

    #[test]
    fn zero_target() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 3, 1).unwrap();
        let sol = min_cost_flow_scaling(&net, s, t, 0).unwrap();
        assert_eq!(sol.cost, 0);
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        let mut net = FlowNetwork::new();
        let nodes = net.add_nodes(10);
        for w in nodes.windows(2) {
            net.add_arc(w[0], w[1], 50, 2).unwrap();
        }
        let mut ws = SolverWorkspace::new();
        for f in [0, 1, 17, 50] {
            let fresh = min_cost_flow_scaling(&net, nodes[0], nodes[9], f).unwrap();
            let reused = min_cost_flow_scaling_with(&net, nodes[0], nodes[9], f, &mut ws).unwrap();
            assert_eq!(fresh.cost, reused.cost);
            assert_eq!(fresh.flows, reused.flows);
        }
    }
}
