//! Capacity-scaling min-cost flow (excess/deficit Δ-scaling).
//!
//! The classic Edmonds–Karp / Ahuja–Magnanti–Orlin refinement: phases with
//! threshold Δ (halved until 1) move flow only along residual arcs of
//! capacity at least Δ, so large-capacity networks move bulk flow in
//! `O(log U)` fat phases instead of `O(F)` thin augmentations. Each phase
//! works on a *pseudo-flow*: node imbalances (excesses and deficits) are
//! allowed mid-phase, and a multi-source Δ-filtered Dijkstra routes excess
//! into deficits along shortest reduced-cost paths. The final Δ = 1 phase
//! sees every residual arc, which is what makes the solver exact.
//!
//! Potentials are initialised once (shared machinery with [`crate::ssp`])
//! and *reused across Δ-phases*: each Dijkstra folds its settled distances
//! into the potentials, keeping reduced costs non-negative on the current
//! Δ-subgraph. Halving Δ admits smaller arcs whose reduced cost may have
//! gone negative while they were filtered out; a saturation sweep over the
//! CSR active prefixes restores Δ-feasibility by pushing those arcs to
//! capacity (standard: the push flips them into positive-reduced-cost
//! backward arcs and shifts the imbalance onto the endpoints, where the
//! drain loop picks it up).
//!
//! The allocation networks of `lemra-core` have unit capacities, where
//! plain SSP is already optimal — this solver exists for the general
//! library surface (large-capacity networks such as the `s → t` bypass arc
//! dominating a big register file) and as a third independent
//! implementation for cross-checking.

use crate::graph::{FlowNetwork, NodeId};
use crate::residual::Residual;
use crate::ssp::{
    check_endpoints_with, initial_potentials, solution_from_residual, ssp_phases, transform_into,
    update_potentials,
};
use crate::workspace::{with_thread_workspace, SolverWorkspace, INF};
use crate::{FlowSolution, NetflowError};

/// Solves for a minimum-cost flow of exactly `target` units from `s` to
/// `t` with capacity scaling, honouring arc lower bounds.
///
/// Same contract as [`min_cost_flow`](crate::min_cost_flow): the network
/// must not contain negative-cost cycles with positive capacity.
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if no feasible flow of value `target`
///   exists.
/// * [`NetflowError::NegativeCycle`] if a negative cycle is detected.
/// * [`NetflowError::InvalidArc`] for invalid endpoints or target.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{min_cost_flow_scaling, FlowNetwork};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, a, t) = (net.add_node(), net.add_node(), net.add_node());
/// net.add_arc(s, a, 1_000_000, 1)?;
/// net.add_arc(a, t, 1_000_000, 2)?;
/// let sol = min_cost_flow_scaling(&net, s, t, 500_000)?;
/// assert_eq!(sol.cost, 500_000 * 3);
/// # Ok(())
/// # }
/// ```
pub fn min_cost_flow_scaling(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<FlowSolution, NetflowError> {
    with_thread_workspace(|ws| min_cost_flow_scaling_with(net, s, t, target, ws))
}

/// [`min_cost_flow_scaling`] with an explicit [`SolverWorkspace`].
///
/// # Errors
///
/// Same as [`min_cost_flow_scaling`].
pub fn min_cost_flow_scaling_with(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
    ws: &mut SolverWorkspace,
) -> Result<FlowSolution, NetflowError> {
    check_endpoints_with(net, s, t, target, ws)?;

    // Same excess/deficit reduction as the plain SSP solver, built into the
    // workspace's residual arena so repeated solves reuse its buffers; the
    // guard returns the arena even on panic.
    let mut guard = ws.lease_arena();
    let (res, ws) = guard.parts();
    let (super_s, super_t, required) = transform_into(net, s, t, target, res);

    let pushed = scaling_run(res, super_s, super_t, required, ws)?;
    if pushed < required {
        return Err(NetflowError::Infeasible {
            required,
            achieved: pushed,
        });
    }
    Ok(solution_from_residual(net, res, target))
}

/// Initial Δ below which the excess/deficit machinery is pure overhead: on
/// near-unit capacities every phase moves single units anyway, and the
/// Δ = 2 → 1 transition saturates a wave of newly admitted negative arcs
/// whose stranded pseudo-flow costs a multi-source Dijkstra round per
/// excess/deficit pair to drain. Plain SSP phases solve those instances in
/// a handful of blocking flows.
const SCALING_MIN_DELTA: i64 = 8;

fn scaling_run(
    res: &mut Residual,
    s: usize,
    t: usize,
    required: i64,
    ws: &mut SolverWorkspace,
) -> Result<i64, NetflowError> {
    if required == 0 {
        return Ok(0);
    }
    let mut delta = 1i64;
    // Division form: `delta * 2` would overflow i64 for capacities near
    // i64::MAX (validate_input admits large capacities on cheap arcs).
    while delta <= res.max_build_cap.min(required) / 2 {
        delta *= 2;
    }
    if delta < SCALING_MIN_DELTA {
        return ssp_phases(res, s, t, required, ws, "scaling");
    }

    let n = res.node_count();
    ws.prepare(n);
    initial_potentials(res, s, ws)?;

    // The whole requirement starts as excess at the super-source and a
    // matching deficit at the super-sink; phases shuttle it across.
    ws.excess.clear();
    ws.excess.resize(n, 0);
    ws.excess[s] = i128::from(required);
    ws.excess[t] = -i128::from(required);

    let mut rounds = 0u64;
    loop {
        // Entering a new Δ admits arcs whose reduced cost went negative
        // while they were below the previous threshold; saturating them
        // restores Δ-feasibility of the potentials. On the first phase the
        // initial potentials are exact shortest distances, so nothing
        // saturates and a zero-round budget trips inside the drain loop
        // before any flow moves.
        saturate_negative_arcs(res, ws, delta);

        // Drain: shortest-path augmentations from Δ-excess nodes into
        // Δ-deficit nodes, each moving at least Δ units.
        while let Some(deficit) = delta_dijkstra(res, ws, delta, &mut rounds)? {
            // Walk the parent chain back to the multi-source root (marked
            // with `u32::MAX`); every node on it was settled this epoch.
            let mut root = deficit;
            while ws.parent_edge[root] != u32::MAX {
                root = res.tail(ws.parent_edge[root]);
            }
            let amount = ws.bottleneck_to[deficit]
                .min(clamp_i64(ws.excess[root]))
                .min(clamp_i64(-ws.excess[deficit]));
            debug_assert!(amount >= delta);
            let mut v = deficit;
            while ws.parent_edge[v] != u32::MAX {
                let e = ws.parent_edge[v];
                res.push(e, amount);
                v = res.tail(e);
            }
            ws.excess[root] -= i128::from(amount);
            ws.excess[deficit] += i128::from(amount);
            ws.pushed_units += amount as u64;
        }

        if delta == 1 {
            break;
        }
        delta /= 2;
    }

    // Positive excess left after the Δ = 1 phase is flow that cannot reach
    // the super-sink: the instance is infeasible and the delivered amount is
    // whatever the deficits absorbed.
    let undelivered: i128 = ws.excess.iter().filter(|&&e| e > 0).sum();
    Ok(required - clamp_i64(undelivered))
}

/// Saturating clamp of a wide excess into the `i64` flow domain. Excesses
/// can exceed `i64` only transiently (several saturated arcs piling onto one
/// node); a single augmentation never needs more than the bottleneck anyway.
#[inline]
fn clamp_i64(x: i128) -> i64 {
    x.min(i128::from(i64::MAX)) as i64
}

/// Pushes every Δ-admissible arc with negative reduced cost to capacity,
/// shifting the imbalance onto its endpoints. One sweep over the CSR active
/// prefixes suffices: a saturating push flips the arc into a backward
/// residual arc of *positive* reduced cost, which a later iteration skips.
///
/// Arcs touching a node the potential initialisation proved unreachable are
/// skipped for the usual reason: no flow can travel through such a node to
/// the super-sink, so moving excess onto it would only strand it.
fn saturate_negative_arcs(res: &mut Residual, ws: &mut SolverWorkspace, delta: i64) {
    let n = res.node_count();
    for u in 0..n {
        let pu = ws.node[u].potential;
        if pu >= INF {
            continue;
        }
        for slot in res.active_slots(u) {
            let sl = res.slots[slot];
            if sl.cap < delta {
                continue;
            }
            let v = sl.to as usize;
            let pv = ws.node[v].potential;
            if pv >= INF || sl.cost + pu - pv >= 0 {
                continue;
            }
            res.push(sl.edge, sl.cap);
            ws.excess[u] -= i128::from(sl.cap);
            ws.excess[v] += i128::from(sl.cap);
        }
    }
}

/// One multi-source Dijkstra over reduced costs, restricted to residual
/// arcs of capacity at least `delta`, from every node with excess `>= delta`
/// towards the nearest node with deficit `<= -delta`. Settling such a node
/// ends the round; the settled distances are folded into the potentials
/// (`min(dist, dist_deficit)`, the standard early-termination update), which
/// keeps every Δ-subgraph reduced cost non-negative for the next round.
///
/// Returns the settled deficit node, or `None` when the phase is drained
/// (no Δ-excess node remains, or none can reach a Δ-deficit). Leaves
/// `ws.parent_edge`/`ws.bottleneck_to` describing the shortest-path forest
/// of the round, with `u32::MAX` marking the source roots.
///
/// Counts one solver round against the budget *before* any work — but only
/// when there is a source to drain, so a finished solve never trips.
fn delta_dijkstra(
    res: &Residual,
    ws: &mut SolverWorkspace,
    delta: i64,
    rounds: &mut u64,
) -> Result<Option<usize>, NetflowError> {
    let n = res.node_count();
    ws.order.clear();
    for u in 0..n {
        if ws.excess[u] >= i128::from(delta) && ws.node[u].potential < INF {
            ws.order.push(u as u32);
        }
    }
    if ws.order.is_empty() {
        return Ok(None);
    }
    ws.budget.check_rounds("scaling", "augment", *rounds)?;
    *rounds += 1;

    ws.begin_round();
    for i in 0..ws.order.len() {
        let u = ws.order[i] as usize;
        ws.set_dist(u, 0);
        ws.parent_edge[u] = u32::MAX;
        ws.bottleneck_to[u] = INF;
        ws.heap.push(0, u as u32);
    }

    let threshold = -i128::from(delta);
    let mut found = None;
    while let Some((d, u)) = ws.heap.pop() {
        let u = u as usize;
        if d > ws.dist_of(u) {
            continue;
        }
        if ws.excess[u] <= threshold {
            update_potentials(ws, d);
            found = Some(u);
            break;
        }
        let pu = ws.node[u].potential;
        let bu = ws.bottleneck_to[u];
        for sl in &res.slots[res.active_slots(u)] {
            let cap = sl.cap;
            if cap < delta {
                continue;
            }
            let v = sl.to as usize;
            if ws.node[v].potential >= INF {
                continue;
            }
            let reduced = sl.cost + pu - ws.node[v].potential;
            #[cfg(feature = "validate")]
            if reduced < 0 {
                return Err(NetflowError::InvalidSolution {
                    reason: format!(
                        "negative reduced cost {reduced} on Δ-admissible residual \
                         edge {} ({u} -> {v}); potentials are inconsistent",
                        sl.edge
                    ),
                });
            }
            debug_assert!(reduced >= 0, "negative reduced cost in Δ-subgraph");
            let nd = d + reduced;
            if nd < ws.dist_of(v) {
                ws.set_dist(v, nd);
                ws.parent_edge[v] = sl.edge;
                ws.bottleneck_to[v] = bu.min(cap);
                ws.heap.push(nd, v as u32);
            }
        }
    }
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{min_cost_flow, validate};

    #[test]
    fn matches_plain_ssp_on_small_networks() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 3, 2).unwrap();
        net.add_arc(s, b, 2, 5).unwrap();
        net.add_arc(a, b, 2, -1).unwrap();
        net.add_arc(a, t, 2, 4).unwrap();
        net.add_arc(b, t, 4, 1).unwrap();
        for f in 0..=5 {
            let plain = min_cost_flow(&net, s, t, f);
            let scaled = min_cost_flow_scaling(&net, s, t, f);
            match (plain, scaled) {
                (Ok(p), Ok(q)) => {
                    validate(&net, s, t, &q).unwrap();
                    assert_eq!(p.cost, q.cost, "flow {f}");
                }
                (Err(_), Err(_)) => {}
                (p, q) => panic!("disagreement at {f}: {p:?} vs {q:?}"),
            }
        }
    }

    #[test]
    fn large_capacities_solve_quickly() {
        // A 40-node chain with million-unit capacities: plain SSP would
        // need one augmentation per bottleneck change; scaling stays fast.
        let mut net = FlowNetwork::new();
        let nodes = net.add_nodes(40);
        for w in nodes.windows(2) {
            net.add_arc(w[0], w[1], 1_000_000, 1).unwrap();
        }
        let sol = min_cost_flow_scaling(&net, nodes[0], nodes[39], 1_000_000).unwrap();
        assert_eq!(sol.cost, 39_000_000);
        validate(&net, nodes[0], nodes[39], &sol).unwrap();
    }

    #[test]
    fn lower_bounds_respected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 2, 5, 100).unwrap();
        net.add_arc(a, t, 5, 0).unwrap();
        net.add_arc(s, b, 5, 1).unwrap();
        net.add_arc(b, t, 5, 1).unwrap();
        let sol = min_cost_flow_scaling(&net, s, t, 3).unwrap();
        validate(&net, s, t, &sol).unwrap();
        assert!(sol.flows[0] >= 2);
        // Two forced units at 100 each, one free unit via b at 2.
        assert_eq!(sol.cost, 202);
    }

    #[test]
    fn infeasible_detected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 3, 1).unwrap();
        assert!(matches!(
            min_cost_flow_scaling(&net, s, t, 4),
            Err(NetflowError::Infeasible { .. })
        ));
    }

    #[test]
    fn infeasible_reports_max_deliverable() {
        // Bottleneck of 2 into t: the drain delivers those 2 units and
        // reports them, matching the plain solver's `achieved`.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 10, 1).unwrap();
        net.add_arc(a, t, 2, 1).unwrap();
        match min_cost_flow_scaling(&net, s, t, 5) {
            Err(NetflowError::Infeasible { required, achieved }) => {
                assert_eq!(required, 5);
                assert_eq!(achieved, 2);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn zero_target() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 3, 1).unwrap();
        let sol = min_cost_flow_scaling(&net, s, t, 0).unwrap();
        assert_eq!(sol.cost, 0);
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        let mut net = FlowNetwork::new();
        let nodes = net.add_nodes(10);
        for w in nodes.windows(2) {
            net.add_arc(w[0], w[1], 50, 2).unwrap();
        }
        let mut ws = SolverWorkspace::new();
        for f in [0, 1, 17, 50] {
            let fresh = min_cost_flow_scaling(&net, nodes[0], nodes[9], f).unwrap();
            let reused = min_cost_flow_scaling_with(&net, nodes[0], nodes[9], f, &mut ws).unwrap();
            assert_eq!(fresh.cost, reused.cost);
            assert_eq!(fresh.flows, reused.flows);
        }
    }
}
