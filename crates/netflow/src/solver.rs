//! The unified solver interface: one trait, four algorithms, one selector.
//!
//! Every min-cost-flow implementation in this crate — successive shortest
//! paths ([`Ssp`]), capacity scaling ([`CapacityScaling`]), cycle cancelling
//! ([`CycleCancelling`]), network simplex ([`NetworkSimplex`]) and the
//! warm-start [`Reoptimizer`] — answers the same question: route exactly
//! `target` units from `s` to `t` at minimum cost, honouring lower bounds.
//! [`McfSolver`] captures that contract so callers can hold *a* solver
//! instead of hard-coding one of the free functions, and [`Backend`] names
//! the algorithms as data so the choice can travel through configuration
//! (`LEMRA_BACKEND`, CLI flags) instead of through call sites.
//!
//! [`Backend::Auto`] picks by network shape: cycle-cancelling when negative
//! costs sit on a cyclic graph (the one case the SSP family must refuse —
//! and since its rebuild on minimum-mean cancellation, an efficient choice
//! for dense negative-cost nets rather than a last resort), capacity
//! scaling when capacities are large enough that bulk augmentations pay
//! off, plain SSP otherwise — the right default for the unit-capacity DAGs
//! the allocator builds. Block-pivot network simplex is never auto-selected
//! but is fast enough (within a small factor of SSP at 512 variables) to
//! serve as a routine cross-check backend rather than a test-only
//! curiosity.

use crate::budget::SolveBudget;
use crate::config::LemraConfig;
use crate::cycle_cancel::{min_cost_flow_cycle_canceling, min_cost_flow_cycle_canceling_with};
use crate::graph::{FlowNetwork, NodeId};
use crate::reopt::Reoptimizer;
use crate::scaling::{min_cost_flow_scaling, min_cost_flow_scaling_with};
use crate::simplex::{min_cost_flow_network_simplex, min_cost_flow_network_simplex_budgeted};
use crate::ssp::{min_cost_flow, min_cost_flow_with};
use crate::workspace::SolverWorkspace;
use crate::{FlowSolution, NetflowError};

/// A minimum-cost-flow algorithm.
///
/// The contract is exactly [`min_cost_flow`](crate::min_cost_flow)'s: an
/// exact flow of `target` units from `s` to `t`, arc lower bounds honoured,
/// identical error vocabulary. The workspace parameter lets sweeps reuse
/// scratch buffers; the network simplex (whose scratch is its basis
/// arrays, a different shape) and the [`Reoptimizer`] (which retains its
/// own workspace) ignore it.
///
/// `solve` takes `&mut self` so stateful solvers (the [`Reoptimizer`]) can
/// retain residual state between calls; the stateless algorithm structs are
/// zero-sized and free to construct per call.
pub trait McfSolver {
    /// Stable lower-case name of the algorithm (for reports and logs).
    fn name(&self) -> &'static str;

    /// Solves for a minimum-cost flow of exactly `target` units `s → t`.
    ///
    /// # Errors
    ///
    /// Same as [`min_cost_flow`](crate::min_cost_flow): infeasibility,
    /// negative cycles (SSP-family solvers only), invalid endpoints.
    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError>;

    /// [`Self::solve`] under a per-call [`SolveBudget`]: the budget is
    /// installed on the workspace for the duration of this call and the
    /// previous budget restored afterwards (even on error). Solvers that
    /// ignore the workspace override this to route the budget their own way.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`], plus [`NetflowError::BudgetExceeded`] when
    /// the budget runs out.
    fn solve_budgeted(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
        budget: SolveBudget,
    ) -> Result<FlowSolution, NetflowError> {
        let previous = ws.set_budget(budget);
        let result = self.solve(net, s, t, target, ws);
        ws.set_budget(previous);
        result
    }
}

/// Successive shortest paths with node potentials (the production solver).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ssp;

impl McfSolver for Ssp {
    fn name(&self) -> &'static str {
        "ssp"
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        min_cost_flow_with(net, s, t, target, ws)
    }
}

/// Capacity-scaling successive shortest paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct CapacityScaling;

impl McfSolver for CapacityScaling {
    fn name(&self) -> &'static str {
        "scaling"
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        min_cost_flow_scaling_with(net, s, t, target, ws)
    }
}

/// Minimum-mean cycle cancelling (handles negative-cost cycles).
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleCancelling;

impl McfSolver for CycleCancelling {
    fn name(&self) -> &'static str {
        "cycle"
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        min_cost_flow_cycle_canceling_with(net, s, t, target, ws)
    }
}

/// The classical network simplex (handles negative-cost cycles).
#[derive(Debug, Clone, Copy, Default)]
pub struct NetworkSimplex;

impl McfSolver for NetworkSimplex {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        _ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        min_cost_flow_network_simplex(net, s, t, target)
    }

    /// The simplex ignores the workspace, so the budget is passed straight
    /// to the pivot loop instead of travelling through `ws`.
    fn solve_budgeted(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        _ws: &mut SolverWorkspace,
        budget: SolveBudget,
    ) -> Result<FlowSolution, NetflowError> {
        let block = LemraConfig::get().simplex_block.unwrap_or(0);
        min_cost_flow_network_simplex_budgeted(net, s, t, target, block, budget)
    }
}

impl McfSolver for Reoptimizer {
    fn name(&self) -> &'static str {
        "reopt"
    }

    /// Warm-start solve; the workspace parameter is ignored — the
    /// reoptimizer retains its own workspace whose potentials certify the
    /// retained residual graph.
    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        _ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        Reoptimizer::solve(self, net, s, t, target)
    }

    /// The reoptimizer retains its own workspace; the budget is installed on
    /// the solver itself for this call and the previous one restored after.
    fn solve_budgeted(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        _ws: &mut SolverWorkspace,
        budget: SolveBudget,
    ) -> Result<FlowSolution, NetflowError> {
        let previous = self.set_budget(budget);
        let result = Reoptimizer::solve(self, net, s, t, target);
        self.set_budget(previous);
        result
    }
}

/// Capacities at or above this make [`Backend::Auto`] prefer capacity
/// scaling: bulk augmentations start beating one-path-per-unit SSP.
const AUTO_SCALING_CAPACITY: i64 = 1 << 12;

/// A named min-cost-flow algorithm choice, selectable via configuration.
///
/// `Backend` is the data-level counterpart of [`McfSolver`]: it travels
/// through [`LemraConfig`](crate::LemraConfig) (the `LEMRA_BACKEND`
/// environment variable, CLI flags) and is resolved to an algorithm at the
/// solve site. [`Backend::Auto`] defers the choice to the network's shape.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{Backend, FlowNetwork};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, t) = (net.add_node(), net.add_node());
/// net.add_arc(s, t, 4, 3)?;
/// for backend in Backend::ALL {
///     assert_eq!(backend.solve(&net, s, t, 2)?.cost, 6);
/// }
/// assert_eq!("scaling".parse::<Backend>()?, Backend::Scaling);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Successive shortest paths (the production default).
    #[default]
    Ssp,
    /// Capacity-scaling SSP.
    Scaling,
    /// Negative-cycle cancelling.
    CycleCancel,
    /// Network simplex.
    Simplex,
    /// Pick by network shape at each solve; see [`Backend::select`].
    Auto,
}

impl Backend {
    /// Every concrete algorithm (excludes [`Backend::Auto`], which resolves
    /// to one of these).
    pub const ALL: [Backend; 4] = [
        Backend::Ssp,
        Backend::Scaling,
        Backend::CycleCancel,
        Backend::Simplex,
    ];

    /// Stable lower-case name (`ssp`, `scaling`, `cycle`, `simplex`,
    /// `auto`); [`str::parse`] accepts exactly these.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Ssp => "ssp",
            Backend::Scaling => "scaling",
            Backend::CycleCancel => "cycle",
            Backend::Simplex => "simplex",
            Backend::Auto => "auto",
        }
    }

    /// Resolves [`Backend::Auto`] against `net`'s shape; concrete variants
    /// return themselves.
    ///
    /// The policy, in order:
    ///
    /// | shape | choice | why |
    /// |---|---|---|
    /// | negative costs on a cyclic positive-capacity graph | [`CycleCancel`](Backend::CycleCancel) | the SSP family must refuse negative cycles (cyclicity is the cheap sound over-approximation); minimum-mean cancellation with Howard's policy iteration makes this the *preferred* backend for dense negative-cost nets, not merely the correct one |
    /// | any capacity ≥ 2¹² | [`Scaling`](Backend::Scaling) | bulk augmentations beat one-path-per-unit SSP |
    /// | otherwise | [`Ssp`](Backend::Ssp) | the unit-capacity DAGs the allocator builds always land here |
    ///
    /// [`Simplex`](Backend::Simplex) is never auto-selected: it wins no
    /// shape outright, but with block-search pivoting and
    /// smaller-subtree relabelling it runs within a small factor of SSP at
    /// 512+ variables, so `LEMRA_BACKEND=simplex` is a practical
    /// whole-sweep cross-check at every size the benches measure.
    pub fn select(self, net: &FlowNetwork) -> Backend {
        if self != Backend::Auto {
            return self;
        }
        let mut negative = false;
        let mut max_capacity = 0i64;
        for (_, arc) in net.arcs() {
            negative |= arc.cost < 0;
            max_capacity = max_capacity.max(arc.capacity);
        }
        if negative && !is_positive_capacity_dag(net) {
            Backend::CycleCancel
        } else if max_capacity >= AUTO_SCALING_CAPACITY {
            Backend::Scaling
        } else {
            Backend::Ssp
        }
    }

    /// The algorithm as a boxed [`McfSolver`] (resolving [`Backend::Auto`]
    /// against `net` first) — for callers that store the solver.
    pub fn solver(self, net: &FlowNetwork) -> Box<dyn McfSolver + Send> {
        match self.select(net) {
            Backend::Ssp => Box::new(Ssp),
            Backend::Scaling => Box::new(CapacityScaling),
            Backend::CycleCancel => Box::new(CycleCancelling),
            Backend::Simplex => Box::new(NetworkSimplex),
            Backend::Auto => unreachable!("select() resolves Auto"),
        }
    }

    /// Solves with this backend, reusing the calling thread's shared
    /// workspace (like [`min_cost_flow`](crate::min_cost_flow)).
    ///
    /// # Errors
    ///
    /// Same as [`min_cost_flow`](crate::min_cost_flow).
    pub fn solve(
        self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
    ) -> Result<FlowSolution, NetflowError> {
        match self.select(net) {
            Backend::Ssp => min_cost_flow(net, s, t, target),
            Backend::Scaling => min_cost_flow_scaling(net, s, t, target),
            Backend::CycleCancel => min_cost_flow_cycle_canceling(net, s, t, target),
            Backend::Simplex => min_cost_flow_network_simplex(net, s, t, target),
            Backend::Auto => unreachable!("select() resolves Auto"),
        }
    }

    /// Solves with this backend and an explicit workspace (ignored by the
    /// simplex algorithm, whose scratch is its basis arrays).
    ///
    /// # Errors
    ///
    /// Same as [`min_cost_flow`](crate::min_cost_flow).
    pub fn solve_with(
        self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        match self.select(net) {
            Backend::Ssp => min_cost_flow_with(net, s, t, target, ws),
            Backend::Scaling => min_cost_flow_scaling_with(net, s, t, target, ws),
            Backend::CycleCancel => min_cost_flow_cycle_canceling_with(net, s, t, target, ws),
            // Route the workspace-carried budget into the pivot loop so a
            // budget installed with `ws.set_budget` binds every backend.
            Backend::Simplex => {
                let block = LemraConfig::get().simplex_block.unwrap_or(0);
                min_cost_flow_network_simplex_budgeted(net, s, t, target, block, ws.budget)
            }
            Backend::Auto => unreachable!("select() resolves Auto"),
        }
    }

    /// Solves with this backend under a per-call [`SolveBudget`], reusing
    /// the calling thread's shared workspace. The budget is scoped to this
    /// call: the workspace's previous budget is restored afterwards.
    ///
    /// # Errors
    ///
    /// Same as [`Backend::solve`], plus [`NetflowError::BudgetExceeded`]
    /// when the budget runs out.
    pub fn solve_with_budget(
        self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        budget: SolveBudget,
    ) -> Result<FlowSolution, NetflowError> {
        crate::workspace::with_thread_workspace(|ws| {
            let previous = ws.set_budget(budget);
            let result = self.solve_with(net, s, t, target, ws);
            ws.set_budget(previous);
            result
        })
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = NetflowError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ssp" => Ok(Backend::Ssp),
            "scaling" => Ok(Backend::Scaling),
            "cycle" | "cycle-cancel" | "cycle_cancel" => Ok(Backend::CycleCancel),
            "simplex" => Ok(Backend::Simplex),
            "auto" => Ok(Backend::Auto),
            other => Err(NetflowError::InvalidArc {
                reason: format!(
                    "unknown backend `{other}` (expected ssp, scaling, cycle, simplex or auto)"
                ),
            }),
        }
    }
}

/// True if the subgraph of positive-capacity arcs is acyclic (Kahn's
/// algorithm). Residual arcs don't matter here: before any flow moves, only
/// forward arcs have capacity, and a negative cycle needs capacity on every
/// arc.
fn is_positive_capacity_dag(net: &FlowNetwork) -> bool {
    let n = net.node_count();
    let mut indegree = vec![0u32; n];
    for (_, arc) in net.arcs() {
        if arc.capacity > 0 {
            indegree[arc.to.index()] += 1;
        }
    }
    // Bucket arcs by tail once so the peel is O(V + E).
    let mut head: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (_, arc) in net.arcs() {
        if arc.capacity > 0 {
            head[arc.from.index()].push(arc.to.index() as u32);
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut seen = 0usize;
    while let Some(u) = queue.pop() {
        seen += 1;
        for &v in &head[u] {
            indegree[v as usize] -= 1;
            if indegree[v as usize] == 0 {
                queue.push(v as usize);
            }
        }
    }
    seen == n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (FlowNetwork, NodeId, NodeId) {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 1).unwrap();
        net.add_arc(a, t, 1, 1).unwrap();
        net.add_arc(s, b, 1, 3).unwrap();
        net.add_arc(b, t, 1, 3).unwrap();
        (net, s, t)
    }

    #[test]
    fn every_backend_agrees_on_the_diamond() {
        let (net, s, t) = diamond();
        let mut ws = SolverWorkspace::new();
        for backend in Backend::ALL {
            assert_eq!(backend.solve(&net, s, t, 2).unwrap().cost, 8, "{backend}");
            assert_eq!(
                backend.solve_with(&net, s, t, 2, &mut ws).unwrap().cost,
                8,
                "{backend} (with workspace)"
            );
            let mut solver = backend.solver(&net);
            assert_eq!(solver.solve(&net, s, t, 2, &mut ws).unwrap().cost, 8);
            assert_eq!(solver.name(), backend.name());
        }
    }

    #[test]
    fn reoptimizer_is_a_solver() {
        let (net, s, t) = diamond();
        let mut ws = SolverWorkspace::new();
        let mut reopt = Reoptimizer::new();
        let sol = McfSolver::solve(&mut reopt, &net, s, t, 1, &mut ws).unwrap();
        assert_eq!(sol.cost, 2);
        McfSolver::solve(&mut reopt, &net, s, t, 2, &mut ws).unwrap();
        assert_eq!(reopt.warm_solves(), 1);
        assert_eq!(McfSolver::name(&reopt), "reopt");
    }

    #[test]
    fn auto_picks_ssp_for_unit_capacity_dags() {
        let (net, _, _) = diamond();
        assert_eq!(Backend::Auto.select(&net), Backend::Ssp);
    }

    #[test]
    fn auto_picks_scaling_for_large_capacities() {
        let mut net = FlowNetwork::new();
        let (s, t) = (net.add_node(), net.add_node());
        net.add_arc(s, t, 1 << 20, 1).unwrap();
        assert_eq!(Backend::Auto.select(&net), Backend::Scaling);
    }

    #[test]
    fn auto_picks_cycle_cancel_for_negative_cyclic_networks() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, b, 2, -5).unwrap();
        net.add_arc(b, a, 2, -5).unwrap(); // negative cycle a <-> b
        net.add_arc(b, t, 1, 0).unwrap();
        assert_eq!(Backend::Auto.select(&net), Backend::CycleCancel);
        // The selected backend actually solves it.
        assert!(Backend::Auto.solve(&net, s, t, 1).is_ok());
    }

    #[test]
    fn auto_stays_ssp_when_negative_costs_sit_on_a_dag() {
        let mut net = FlowNetwork::new();
        let (s, a, t) = (net.add_node(), net.add_node(), net.add_node());
        net.add_arc(s, a, 1, -2).unwrap();
        net.add_arc(a, t, 1, -3).unwrap();
        assert_eq!(Backend::Auto.select(&net), Backend::Ssp);
    }

    #[test]
    fn concrete_backends_select_themselves() {
        let (net, _, _) = diamond();
        for backend in Backend::ALL {
            assert_eq!(backend.select(&net), backend);
        }
    }

    #[test]
    fn backend_parses_and_displays() {
        for backend in Backend::ALL.into_iter().chain([Backend::Auto]) {
            assert_eq!(backend.name().parse::<Backend>().unwrap(), backend);
            assert_eq!(backend.to_string(), backend.name());
        }
        assert_eq!(
            "  CYCLE-CANCEL ".parse::<Backend>().unwrap(),
            Backend::CycleCancel
        );
        assert!("bogus".parse::<Backend>().is_err());
    }
}
