//! The unified solver interface: one trait, five algorithms, one selector.
//!
//! Every min-cost-flow implementation in this crate — successive shortest
//! paths ([`Ssp`]), capacity scaling ([`CapacityScaling`]), cycle cancelling
//! ([`CycleCancelling`]), network simplex ([`NetworkSimplex`]), cost
//! scaling ([`CostScalingSolver`]) and the
//! warm-start [`Reoptimizer`] — answers the same question: route exactly
//! `target` units from `s` to `t` at minimum cost, honouring lower bounds.
//! [`McfSolver`] captures that contract so callers can hold *a* solver
//! instead of hard-coding one of the free functions, and [`Backend`] names
//! the algorithms as data so the choice can travel through configuration
//! (`LEMRA_BACKEND`, CLI flags) instead of through call sites.
//!
//! [`Backend::Auto`] picks by network shape: cost scaling when negative
//! costs sit on a cyclic graph (the one case the SSP family must refuse —
//! push-relabel ε-scaling handles negative cycles natively and, per
//! Király–Kovács, is the consistently strongest general-purpose choice),
//! capacity scaling when capacities are large enough that bulk
//! augmentations pay off, plain SSP otherwise — the right default for the
//! unit-capacity DAGs the allocator builds. Block-pivot network simplex
//! and minimum-mean cycle cancelling are never auto-selected but stay
//! within a small factor on every shape, serving as routine cross-check
//! backends rather than test-only curiosities.

use crate::budget::SolveBudget;
use crate::config::{LemraConfig, ParSolve};
use crate::cost_scaling::{min_cost_flow_cost_scaling, min_cost_flow_cost_scaling_with};
use crate::cycle_cancel::{min_cost_flow_cycle_canceling, min_cost_flow_cycle_canceling_with};
use crate::decompose::{min_cost_flow_par, min_cost_flow_par_with};
use crate::graph::{FlowNetwork, NodeId};
use crate::reopt::Reoptimizer;
use crate::scaling::{min_cost_flow_scaling, min_cost_flow_scaling_with};
use crate::simplex::{min_cost_flow_network_simplex, min_cost_flow_network_simplex_budgeted};
use crate::ssp::{min_cost_flow, min_cost_flow_with};
use crate::workspace::SolverWorkspace;
use crate::{FlowSolution, NetflowError};

/// A minimum-cost-flow algorithm.
///
/// The contract is exactly [`min_cost_flow`](crate::min_cost_flow)'s: an
/// exact flow of `target` units from `s` to `t`, arc lower bounds honoured,
/// identical error vocabulary. The workspace parameter lets sweeps reuse
/// scratch buffers; the network simplex (whose scratch is its basis
/// arrays, a different shape) and the [`Reoptimizer`] (which retains its
/// own workspace) ignore it.
///
/// `solve` takes `&mut self` so stateful solvers (the [`Reoptimizer`]) can
/// retain residual state between calls; the stateless algorithm structs are
/// zero-sized and free to construct per call.
pub trait McfSolver {
    /// Stable lower-case name of the algorithm (for reports and logs).
    fn name(&self) -> &'static str;

    /// Solves for a minimum-cost flow of exactly `target` units `s → t`.
    ///
    /// # Errors
    ///
    /// Same as [`min_cost_flow`](crate::min_cost_flow): infeasibility,
    /// negative cycles (SSP-family solvers only), invalid endpoints.
    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError>;

    /// [`Self::solve`] under a per-call [`SolveBudget`]: the budget is
    /// installed on the workspace for the duration of this call and the
    /// previous budget restored afterwards (even on error). Solvers that
    /// ignore the workspace override this to route the budget their own way.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`], plus [`NetflowError::BudgetExceeded`] when
    /// the budget runs out.
    fn solve_budgeted(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
        budget: SolveBudget,
    ) -> Result<FlowSolution, NetflowError> {
        let previous = ws.set_budget(budget);
        let result = self.solve(net, s, t, target, ws);
        ws.set_budget(previous);
        result
    }
}

/// Successive shortest paths with node potentials (the production solver).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ssp;

impl McfSolver for Ssp {
    fn name(&self) -> &'static str {
        "ssp"
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        min_cost_flow_with(net, s, t, target, ws)
    }
}

/// Capacity-scaling successive shortest paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct CapacityScaling;

impl McfSolver for CapacityScaling {
    fn name(&self) -> &'static str {
        "scaling"
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        min_cost_flow_scaling_with(net, s, t, target, ws)
    }
}

/// Minimum-mean cycle cancelling (handles negative-cost cycles).
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleCancelling;

impl McfSolver for CycleCancelling {
    fn name(&self) -> &'static str {
        "cycle"
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        min_cost_flow_cycle_canceling_with(net, s, t, target, ws)
    }
}

/// The classical network simplex (handles negative-cost cycles).
#[derive(Debug, Clone, Copy, Default)]
pub struct NetworkSimplex;

impl McfSolver for NetworkSimplex {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        _ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        min_cost_flow_network_simplex(net, s, t, target)
    }

    /// The simplex ignores the workspace, so the budget is passed straight
    /// to the pivot loop instead of travelling through `ws`.
    fn solve_budgeted(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        _ws: &mut SolverWorkspace,
        budget: SolveBudget,
    ) -> Result<FlowSolution, NetflowError> {
        let block = LemraConfig::get().simplex_block.unwrap_or(0);
        min_cost_flow_network_simplex_budgeted(net, s, t, target, block, budget)
    }
}

/// Goldberg–Tarjan cost scaling (push-relabel with ε-scaling; handles
/// negative-cost cycles).
///
/// Named with the `Solver` suffix to keep the type distinct from
/// [`Backend::CostScaling`] in glob imports.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostScalingSolver;

impl McfSolver for CostScalingSolver {
    fn name(&self) -> &'static str {
        "cost_scaling"
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        min_cost_flow_cost_scaling_with(net, s, t, target, ws)
    }
}

/// The decomposed parallel solver (`netflow::decompose`): region-partitioned
/// settling over a reduced-cost working set, joined by a price-repair pass.
/// Same exact-answer contract as [`Ssp`]; on tie-broken networks the
/// solutions are byte-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParSsp {
    /// Explicit region/worker count; `None` sizes from
    /// [`LemraConfig`](crate::LemraConfig) (`LEMRA_THREADS`).
    pub workers: Option<usize>,
}

impl McfSolver for ParSsp {
    fn name(&self) -> &'static str {
        "par_ssp"
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        min_cost_flow_par_with(net, s, t, target, ws, self.workers)
    }
}

impl McfSolver for Reoptimizer {
    fn name(&self) -> &'static str {
        "reopt"
    }

    /// Warm-start solve; the workspace parameter is ignored — the
    /// reoptimizer retains its own workspace whose potentials certify the
    /// retained residual graph.
    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        _ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        Reoptimizer::solve(self, net, s, t, target)
    }

    /// The reoptimizer retains its own workspace; the budget is installed on
    /// the solver itself for this call and the previous one restored after.
    fn solve_budgeted(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        _ws: &mut SolverWorkspace,
        budget: SolveBudget,
    ) -> Result<FlowSolution, NetflowError> {
        let previous = self.set_budget(budget);
        let result = Reoptimizer::solve(self, net, s, t, target);
        self.set_budget(previous);
        result
    }
}

/// Capacities at or above this make [`Backend::Auto`] prefer capacity
/// scaling: Δ-bulk augmentations beat per-distance blocking-flow phases
/// once single arcs carry thousands of units. On small-capacity networks
/// the two are a wash (PR 6 medians: 45.0 µs vs 43.6 µs at 512 vars), so
/// the threshold only needs to catch genuinely capacity-heavy shapes.
const AUTO_SCALING_CAPACITY: i64 = 1 << 12;

/// Arc counts at or above this make [`Backend::Auto`] (in the default
/// [`ParSolve::Auto`] mode) hand the solve to the decomposed parallel path:
/// below it, one monolithic settle is cheaper than building the working set
/// and coordinating regions; above it, the settle dominates the solve and
/// decomposition pays for itself.
const PAR_AUTO_ARCS: usize = 100_000;

/// A named min-cost-flow algorithm choice, selectable via configuration.
///
/// `Backend` is the data-level counterpart of [`McfSolver`]: it travels
/// through [`LemraConfig`](crate::LemraConfig) (the `LEMRA_BACKEND`
/// environment variable, CLI flags) and is resolved to an algorithm at the
/// solve site. [`Backend::Auto`] defers the choice to the network's shape.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{Backend, FlowNetwork};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, t) = (net.add_node(), net.add_node());
/// net.add_arc(s, t, 4, 3)?;
/// for backend in Backend::ALL {
///     assert_eq!(backend.solve(&net, s, t, 2)?.cost, 6);
/// }
/// assert_eq!("scaling".parse::<Backend>()?, Backend::Scaling);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Successive shortest paths (the production default).
    #[default]
    Ssp,
    /// Capacity-scaling SSP.
    Scaling,
    /// Negative-cycle cancelling.
    CycleCancel,
    /// Network simplex.
    Simplex,
    /// Goldberg–Tarjan cost scaling (push-relabel with ε-scaling).
    CostScaling,
    /// Decomposed parallel SSP (region-partitioned settle + price repair).
    ParSsp,
    /// Pick by network shape at each solve; see [`Backend::select`].
    Auto,
}

impl Backend {
    /// Every concrete algorithm (excludes [`Backend::Auto`], which resolves
    /// to one of these).
    pub const ALL: [Backend; 6] = [
        Backend::Ssp,
        Backend::Scaling,
        Backend::CycleCancel,
        Backend::Simplex,
        Backend::CostScaling,
        Backend::ParSsp,
    ];

    /// Stable lower-case name (`ssp`, `scaling`, `cycle`, `simplex`,
    /// `cost_scaling`, `par_ssp`, `auto`); [`str::parse`] accepts exactly
    /// these.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Ssp => "ssp",
            Backend::Scaling => "scaling",
            Backend::CycleCancel => "cycle",
            Backend::Simplex => "simplex",
            Backend::CostScaling => "cost_scaling",
            Backend::ParSsp => "par_ssp",
            Backend::Auto => "auto",
        }
    }

    /// Resolves [`Backend::Auto`] against `net`'s shape; concrete variants
    /// return themselves. Reads the process-wide
    /// [`ParSolve`](crate::ParSolve) mode (`LEMRA_PAR_SOLVE`) for the
    /// parallel rows; [`Backend::select_with`] takes it explicitly.
    pub fn select(self, net: &FlowNetwork) -> Backend {
        let par_solve = if self == Backend::Auto {
            LemraConfig::get().par_solve
        } else {
            ParSolve::Auto
        };
        self.select_with(net, par_solve)
    }

    /// [`Backend::select`] with an explicit [`ParSolve`](crate::ParSolve)
    /// mode, so the selection table is testable without touching the
    /// process-wide configuration.
    ///
    /// The policy, in order:
    ///
    /// | shape | choice | why |
    /// |---|---|---|
    /// | negative costs on a cyclic positive-capacity graph | [`CostScaling`](Backend::CostScaling) | the SSP family must refuse negative cycles (cyclicity is the cheap sound over-approximation); push-relabel ε-scaling saturates them natively and — per Király–Kovács — is the consistently strongest general-purpose algorithm on exactly these dense mixed-sign nets; outranks even a forced parallel solve, which shares the SSP family's restriction |
    /// | `LEMRA_PAR_SOLVE=force` | [`ParSsp`](Backend::ParSsp) | the explicit opt-in for determinism matrices and thread-scaling runs |
    /// | any capacity ≥ 2¹² | [`Scaling`](Backend::Scaling) | Δ-phase bulk augmentations beat one-path-per-unit SSP |
    /// | ≥ 100 000 arcs (unless `LEMRA_PAR_SOLVE=off`) | [`ParSsp`](Backend::ParSsp) | the settling Dijkstra dominates at this size; the decomposed path prunes and partitions it |
    /// | otherwise | [`Ssp`](Backend::Ssp) | the unit-capacity DAGs the allocator builds always land here; the blocking-flow rebuild routes many shortest paths per Dijkstra round |
    ///
    /// [`Simplex`](Backend::Simplex) and
    /// [`CycleCancel`](Backend::CycleCancel) are never auto-selected: they
    /// win no shape outright but stay within a small factor at every size
    /// the benches measure, so `LEMRA_BACKEND=simplex` (or `cycle`) is a
    /// practical whole-sweep cross-check.
    pub fn select_with(self, net: &FlowNetwork, par_solve: ParSolve) -> Backend {
        if self != Backend::Auto {
            return self;
        }
        let mut negative = false;
        let mut max_capacity = 0i64;
        for (_, arc) in net.arcs() {
            negative |= arc.cost < 0;
            max_capacity = max_capacity.max(arc.capacity);
        }
        if negative && !is_positive_capacity_dag(net) {
            Backend::CostScaling
        } else if par_solve == ParSolve::Force {
            Backend::ParSsp
        } else if max_capacity >= AUTO_SCALING_CAPACITY {
            Backend::Scaling
        } else if par_solve == ParSolve::Auto && net.arc_count() >= PAR_AUTO_ARCS {
            Backend::ParSsp
        } else {
            Backend::Ssp
        }
    }

    /// The algorithm as a boxed [`McfSolver`] (resolving [`Backend::Auto`]
    /// against `net` first) — for callers that store the solver.
    pub fn solver(self, net: &FlowNetwork) -> Box<dyn McfSolver + Send> {
        match self.select(net) {
            Backend::Ssp => Box::new(Ssp),
            Backend::Scaling => Box::new(CapacityScaling),
            Backend::CycleCancel => Box::new(CycleCancelling),
            Backend::Simplex => Box::new(NetworkSimplex),
            Backend::CostScaling => Box::new(CostScalingSolver),
            Backend::ParSsp => Box::new(ParSsp::default()),
            Backend::Auto => unreachable!("select() resolves Auto"),
        }
    }

    /// Solves with this backend, reusing the calling thread's shared
    /// workspace (like [`min_cost_flow`](crate::min_cost_flow)).
    ///
    /// # Errors
    ///
    /// Same as [`min_cost_flow`](crate::min_cost_flow).
    pub fn solve(
        self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
    ) -> Result<FlowSolution, NetflowError> {
        match self.select(net) {
            Backend::Ssp => min_cost_flow(net, s, t, target),
            Backend::Scaling => min_cost_flow_scaling(net, s, t, target),
            Backend::CycleCancel => min_cost_flow_cycle_canceling(net, s, t, target),
            Backend::Simplex => min_cost_flow_network_simplex(net, s, t, target),
            Backend::CostScaling => min_cost_flow_cost_scaling(net, s, t, target),
            Backend::ParSsp => min_cost_flow_par(net, s, t, target),
            Backend::Auto => unreachable!("select() resolves Auto"),
        }
    }

    /// Solves with this backend and an explicit workspace (ignored by the
    /// simplex algorithm, whose scratch is its basis arrays).
    ///
    /// # Errors
    ///
    /// Same as [`min_cost_flow`](crate::min_cost_flow).
    pub fn solve_with(
        self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        match self.select(net) {
            Backend::Ssp => min_cost_flow_with(net, s, t, target, ws),
            Backend::Scaling => min_cost_flow_scaling_with(net, s, t, target, ws),
            Backend::CycleCancel => min_cost_flow_cycle_canceling_with(net, s, t, target, ws),
            // Route the workspace-carried budget into the pivot loop so a
            // budget installed with `ws.set_budget` binds every backend.
            Backend::Simplex => {
                let block = LemraConfig::get().simplex_block.unwrap_or(0);
                min_cost_flow_network_simplex_budgeted(net, s, t, target, block, ws.budget)
            }
            Backend::CostScaling => min_cost_flow_cost_scaling_with(net, s, t, target, ws),
            Backend::ParSsp => min_cost_flow_par_with(net, s, t, target, ws, None),
            Backend::Auto => unreachable!("select() resolves Auto"),
        }
    }

    /// Solves with this backend under a per-call [`SolveBudget`], reusing
    /// the calling thread's shared workspace. The budget is scoped to this
    /// call: the workspace's previous budget is restored afterwards.
    ///
    /// # Errors
    ///
    /// Same as [`Backend::solve`], plus [`NetflowError::BudgetExceeded`]
    /// when the budget runs out.
    pub fn solve_with_budget(
        self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        budget: SolveBudget,
    ) -> Result<FlowSolution, NetflowError> {
        crate::workspace::with_thread_workspace(|ws| {
            let previous = ws.set_budget(budget);
            let result = self.solve_with(net, s, t, target, ws);
            ws.set_budget(previous);
            result
        })
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = NetflowError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ssp" => Ok(Backend::Ssp),
            "scaling" => Ok(Backend::Scaling),
            "cycle" | "cycle-cancel" | "cycle_cancel" => Ok(Backend::CycleCancel),
            "simplex" => Ok(Backend::Simplex),
            "cost_scaling" | "cost-scaling" => Ok(Backend::CostScaling),
            "par_ssp" | "par-ssp" => Ok(Backend::ParSsp),
            "auto" => Ok(Backend::Auto),
            other => Err(NetflowError::InvalidArc {
                reason: format!(
                    "unknown backend `{other}` (expected ssp, scaling, cycle, simplex, \
                     cost_scaling, par_ssp or auto)"
                ),
            }),
        }
    }
}

/// True if the subgraph of positive-capacity arcs is acyclic (Kahn's
/// algorithm). Residual arcs don't matter here: before any flow moves, only
/// forward arcs have capacity, and a negative cycle needs capacity on every
/// arc.
fn is_positive_capacity_dag(net: &FlowNetwork) -> bool {
    let n = net.node_count();
    let mut indegree = vec![0u32; n];
    for (_, arc) in net.arcs() {
        if arc.capacity > 0 {
            indegree[arc.to.index()] += 1;
        }
    }
    // Bucket arcs by tail once so the peel is O(V + E).
    let mut head: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (_, arc) in net.arcs() {
        if arc.capacity > 0 {
            head[arc.from.index()].push(arc.to.index() as u32);
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut seen = 0usize;
    while let Some(u) = queue.pop() {
        seen += 1;
        for &v in &head[u] {
            indegree[v as usize] -= 1;
            if indegree[v as usize] == 0 {
                queue.push(v as usize);
            }
        }
    }
    seen == n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (FlowNetwork, NodeId, NodeId) {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 1).unwrap();
        net.add_arc(a, t, 1, 1).unwrap();
        net.add_arc(s, b, 1, 3).unwrap();
        net.add_arc(b, t, 1, 3).unwrap();
        (net, s, t)
    }

    #[test]
    fn every_backend_agrees_on_the_diamond() {
        let (net, s, t) = diamond();
        let mut ws = SolverWorkspace::new();
        for backend in Backend::ALL {
            assert_eq!(backend.solve(&net, s, t, 2).unwrap().cost, 8, "{backend}");
            assert_eq!(
                backend.solve_with(&net, s, t, 2, &mut ws).unwrap().cost,
                8,
                "{backend} (with workspace)"
            );
            let mut solver = backend.solver(&net);
            assert_eq!(solver.solve(&net, s, t, 2, &mut ws).unwrap().cost, 8);
            assert_eq!(solver.name(), backend.name());
        }
    }

    #[test]
    fn reoptimizer_is_a_solver() {
        let (net, s, t) = diamond();
        let mut ws = SolverWorkspace::new();
        let mut reopt = Reoptimizer::new();
        let sol = McfSolver::solve(&mut reopt, &net, s, t, 1, &mut ws).unwrap();
        assert_eq!(sol.cost, 2);
        McfSolver::solve(&mut reopt, &net, s, t, 2, &mut ws).unwrap();
        assert_eq!(reopt.warm_solves(), 1);
        assert_eq!(McfSolver::name(&reopt), "reopt");
    }

    #[test]
    fn auto_picks_ssp_for_unit_capacity_dags() {
        let (net, _, _) = diamond();
        assert_eq!(Backend::Auto.select(&net), Backend::Ssp);
    }

    #[test]
    fn auto_picks_scaling_for_large_capacities() {
        let mut net = FlowNetwork::new();
        let (s, t) = (net.add_node(), net.add_node());
        net.add_arc(s, t, 1 << 20, 1).unwrap();
        assert_eq!(Backend::Auto.select(&net), Backend::Scaling);
    }

    #[test]
    fn auto_picks_cost_scaling_for_negative_cyclic_networks() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, b, 2, -5).unwrap();
        net.add_arc(b, a, 2, -5).unwrap(); // negative cycle a <-> b
        net.add_arc(b, t, 1, 0).unwrap();
        assert_eq!(Backend::Auto.select(&net), Backend::CostScaling);
        // The selected backend actually solves it, and agrees with the
        // previous champion for the shape.
        let auto = Backend::Auto.solve(&net, s, t, 1).unwrap();
        let cycle = Backend::CycleCancel.solve(&net, s, t, 1).unwrap();
        assert_eq!(auto.cost, cycle.cost);
    }

    /// Pins the whole [`Backend::Auto`] selection table so a re-tune is a
    /// conscious edit here, not a silent behaviour change.
    #[test]
    fn auto_selection_table_is_pinned() {
        // Unit-capacity DAG (the allocator shape) -> Ssp.
        let (dag, _, _) = diamond();
        assert_eq!(Backend::Auto.select(&dag), Backend::Ssp);

        // Negative cost on a DAG is still fine for SSP.
        let mut neg_dag = FlowNetwork::new();
        let (s, a, t) = (neg_dag.add_node(), neg_dag.add_node(), neg_dag.add_node());
        neg_dag.add_arc(s, a, 1, -2).unwrap();
        neg_dag.add_arc(a, t, 1, -3).unwrap();
        assert_eq!(Backend::Auto.select(&neg_dag), Backend::Ssp);

        // Capacity exactly at the threshold flips to capacity scaling.
        let mut big = FlowNetwork::new();
        let (s, t) = (big.add_node(), big.add_node());
        big.add_arc(s, t, AUTO_SCALING_CAPACITY, 1).unwrap();
        assert_eq!(Backend::Auto.select(&big), Backend::Scaling);
        let mut small = FlowNetwork::new();
        let (s, t) = (small.add_node(), small.add_node());
        small.add_arc(s, t, AUTO_SCALING_CAPACITY - 1, 1).unwrap();
        assert_eq!(Backend::Auto.select(&small), Backend::Ssp);

        // Negative costs on a cycle -> cost scaling, and it outranks the
        // capacity rule.
        let mut neg_cyc = FlowNetwork::new();
        let (a, b) = (neg_cyc.add_node(), neg_cyc.add_node());
        neg_cyc.add_arc(a, b, AUTO_SCALING_CAPACITY, -1).unwrap();
        neg_cyc.add_arc(b, a, AUTO_SCALING_CAPACITY, -1).unwrap();
        assert_eq!(Backend::Auto.select(&neg_cyc), Backend::CostScaling);

        // Parallel rows (select_with pins them independently of the
        // process-wide LEMRA_PAR_SOLVE snapshot):
        // Force engages the parallel path on any SSP-suitable shape...
        assert_eq!(
            Backend::Auto.select_with(&dag, ParSolve::Force),
            Backend::ParSsp
        );
        // ...but never overrides a concrete backend choice...
        assert_eq!(
            Backend::Simplex.select_with(&dag, ParSolve::Force),
            Backend::Simplex
        );
        // ...and the negative-cycle refusal outranks it.
        assert_eq!(
            Backend::Auto.select_with(&neg_cyc, ParSolve::Force),
            Backend::CostScaling
        );
        // Off keeps even a huge instance serial.
        let mut huge = FlowNetwork::new();
        let nodes: Vec<_> = (0..=PAR_AUTO_ARCS / 4).map(|_| huge.add_node()).collect();
        for w in nodes.windows(2) {
            for _ in 0..4 {
                huge.add_arc(w[0], w[1], 1, 1).unwrap();
            }
        }
        assert!(huge.arc_count() >= PAR_AUTO_ARCS);
        assert_eq!(
            Backend::Auto.select_with(&huge, ParSolve::Auto),
            Backend::ParSsp
        );
        assert_eq!(
            Backend::Auto.select_with(&huge, ParSolve::Off),
            Backend::Ssp
        );
        // Below the arc threshold, Auto mode stays serial.
        assert_eq!(
            Backend::Auto.select_with(&dag, ParSolve::Auto),
            Backend::Ssp
        );
    }

    #[test]
    fn auto_stays_ssp_when_negative_costs_sit_on_a_dag() {
        let mut net = FlowNetwork::new();
        let (s, a, t) = (net.add_node(), net.add_node(), net.add_node());
        net.add_arc(s, a, 1, -2).unwrap();
        net.add_arc(a, t, 1, -3).unwrap();
        assert_eq!(Backend::Auto.select(&net), Backend::Ssp);
    }

    #[test]
    fn concrete_backends_select_themselves() {
        let (net, _, _) = diamond();
        for backend in Backend::ALL {
            assert_eq!(backend.select(&net), backend);
        }
    }

    #[test]
    fn backend_parses_and_displays() {
        for backend in Backend::ALL.into_iter().chain([Backend::Auto]) {
            assert_eq!(backend.name().parse::<Backend>().unwrap(), backend);
            assert_eq!(backend.to_string(), backend.name());
        }
        assert_eq!(
            "  CYCLE-CANCEL ".parse::<Backend>().unwrap(),
            Backend::CycleCancel
        );
        assert!("bogus".parse::<Backend>().is_err());
    }
}
