//! Minimum-cost network flow for `lemra`.
//!
//! This crate implements the flow machinery that the paper (Gebotys,
//! *Low Energy Memory and Register Allocation Using Network Flow*, DAC 1997)
//! takes from Nemhauser & Wolsey: minimum-cost flows of a fixed value `F`
//! over directed networks with integer capacities, **arc lower bounds** (the
//! paper's "forced register" arcs of §5.2) and possibly **negative** costs
//! (a register placement *saves* memory energy, eq. (4)).
//!
//! Five independent solvers are provided:
//!
//! * [`min_cost_flow`] — successive shortest paths with node potentials; the
//!   production solver, polynomial time, requires the network to be free of
//!   negative-cost cycles (allocation networks are DAGs, so this holds).
//! * [`min_cost_flow_cycle_canceling`] — minimum-mean cycle cancelling
//!   (Howard's policy iteration); the solver of choice for networks with
//!   negative-cost cycles, and a cross-check elsewhere.
//! * [`min_cost_flow_scaling`] — a capacity-scaling variant for networks
//!   with large capacities; a third independent implementation.
//! * [`min_cost_flow_network_simplex`] — the classical network simplex with
//!   block-search pivoting and a strongly feasible basis, handling
//!   negative-cost cycles; a fourth independent implementation.
//! * [`min_cost_flow_cost_scaling`] — Goldberg–Tarjan push-relabel with
//!   ε-scaling (push-lookahead, price refinement and set-relabel
//!   heuristics); handles negative-cost cycles natively and is the
//!   auto-selected backend for cyclic networks; a fifth independent
//!   implementation.
//!
//! Plus [`max_flow`] (Dinic), [`validate`] for auditing any solution, and
//! [`FlowSolution::decompose_paths`] to extract the register chains.
//!
//! For parameter sweeps — sequences of solves over networks that differ
//! only in a few arc costs, capacities or the flow value — [`Reoptimizer`]
//! retains the optimal residual graph and potentials between calls and
//! repairs optimality from the deltas instead of re-solving from scratch.
//!
//! # Solver performance
//!
//! The residual graph all solvers share stores adjacency in compressed
//! sparse row form: one flat edge-index array plus per-node offsets, built
//! once per solve by a counting sort. The shortest-path solvers keep their
//! per-node scratch state (distances, parent pointers, the heap) in a
//! [`SolverWorkspace`] reused across augmentations; the plain entry points
//! keep one workspace per thread, and [`min_cost_flow_with`] /
//! [`min_cost_flow_scaling_with`] accept an explicit one for sweeps. On DAG
//! inputs — every network the allocator builds — the initial potentials come
//! from a single O(V+E) topological relaxation instead of Bellman–Ford;
//! cyclic networks fall back to deque-based SPFA. Dijkstra's frontier is a
//! monotone radix heap rather than a binary heap — profiling the 512-variable
//! allocation showed the solve heap-bound (≈490k pushes and 170k pops per
//! solve), and bucketed O(1) pushes are what the counting favours.
//! Independent solves batch across threads with [`solve_batch`].
//! Within a single large solve, [`min_cost_flow_par`] decomposes the
//! network into node regions, prunes each Dijkstra round to a per-node
//! top-K working set and settles the regions concurrently, repairing
//! optimality at the region cuts from the dual certificate
//! (`LEMRA_PAR_SOLVE` / [`ParSsp`] select it explicitly).
//!
//! Together these changes take the end-to-end 512-variable allocation
//! benchmark from 209.3 ms to 54.5 ms (3.8×); the smaller sizes in the
//! `allocate_scaling` sweep improve 2.2–2.8×, the raw SSP solve 2.3× and the
//! capacity-scaling solve 3.0× (criterion medians, recorded in
//! `BENCH_solver.json` at the repository root).
//!
//! The two cross-check backends are tuned rather than merely correct.
//! Cycle cancelling replaces the old fresh O(V·E) Bellman–Ford per cycle
//! with three cooperating phases over the residual CSR: a greedy bulk
//! phase that sweeps the cheapest-out-edge policy and cancels its negative
//! cycles at O(V) a sweep, Howard's minimum-mean policy iteration per SCC
//! with *eager* cancellation and incremental policy repair (Karp's
//! recurrence backs the extraction when Howard's round budget trips), and
//! one whole-graph Bellman–Ford pass whose converged distances are
//! feasible potentials — an exact certificate of emptiness that costs a
//! few linear sweeps instead of another SCC + convergence round. The
//! network simplex picks entering arcs by a resumable block search while
//! maintaining a strongly feasible basis that relabels only the smaller
//! subtree per pivot ([`min_cost_flow_network_simplex_with_block`] pins the
//! block size; `LEMRA_SIMPLEX_BLOCK` tunes the default).
//!
//! Enabling the `validate` cargo feature arms a per-edge reduced-cost check
//! inside Dijkstra that turns a violated optimality invariant into
//! [`NetflowError::InvalidSolution`] instead of a silently suboptimal flow.
//!
//! # Examples
//!
//! ```
//! use lemra_netflow::{FlowNetwork, min_cost_flow, validate};
//!
//! # fn main() -> Result<(), lemra_netflow::NetflowError> {
//! let mut net = FlowNetwork::new();
//! let s = net.add_node();
//! let v = net.add_node();
//! let t = net.add_node();
//! net.add_arc(s, v, 1, 0)?;
//! net.add_arc(v, t, 1, -5)?; // keeping v in a register saves energy
//! net.add_arc(s, t, 3, 0)?;  // bypass for unused registers
//! let sol = min_cost_flow(&net, s, t, 4)?;
//! validate(&net, s, t, &sol)?;
//! assert_eq!(sol.cost, -5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod budget;
mod canon;
mod config;
mod cost_scaling;
mod cycle_cancel;
mod decompose;
mod dinic;
mod dot;
#[cfg(feature = "fault-inject")]
mod fault;
mod graph;
mod radix;
mod reopt;
mod residual;
mod resilience;
mod scaling;
mod simplex;
mod solution;
mod solver;
mod ssp;
mod workspace;

pub use batch::{solve_batch, solve_batch_on, BatchProblem};
pub use budget::SolveBudget;
pub use canon::{canonicalize, CacheStamp, CanonicalInstance, Fingerprint};
pub use config::{
    CacheMode, LemraConfig, ParSolve, BACKEND_ENV, CACHE_CAP_ENV, CACHE_ENV, COLD_ENV,
    PAR_SOLVE_ENV, SIMPLEX_BLOCK_ENV, THREADS_ENV,
};
pub use cost_scaling::{min_cost_flow_cost_scaling, min_cost_flow_cost_scaling_with};
pub use cycle_cancel::{min_cost_flow_cycle_canceling, min_cost_flow_cycle_canceling_with};
pub use decompose::{min_cost_flow_par, min_cost_flow_par_with};
pub use dinic::max_flow;
pub use dot::to_dot;
#[cfg(feature = "fault-inject")]
pub use fault::{
    ensure_env_plan, injected_conn_count, injected_fault_count, maybe_inject_cache,
    maybe_inject_conn, FaultKind, FaultPlan, RequestScope, FAULT_ENV,
};
pub use graph::{Arc, ArcId, FlowNetwork, NodeId};
pub use reopt::Reoptimizer;
pub use resilience::{ResilientSolver, SolverIncident};
pub use scaling::{min_cost_flow_scaling, min_cost_flow_scaling_with};
pub use simplex::{min_cost_flow_network_simplex, min_cost_flow_network_simplex_with_block};
pub use solution::{validate, FlowSolution};
pub use solver::{
    Backend, CapacityScaling, CostScalingSolver, CycleCancelling, McfSolver, NetworkSimplex,
    ParSsp, Ssp,
};
pub use ssp::{min_cost_flow, min_cost_flow_with};
pub use workspace::{thread_solver_stats, SolverStats, SolverWorkspace};

/// Errors produced by network construction and the solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetflowError {
    /// An arc or query referenced invalid nodes or bounds.
    InvalidArc {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// No feasible flow of the requested value exists.
    Infeasible {
        /// Units that had to be routed (flow target plus lower-bound supply).
        required: i64,
        /// Units the network could actually route.
        achieved: i64,
    },
    /// A negative-cost cycle was found; use
    /// [`min_cost_flow_cycle_canceling`] instead.
    NegativeCycle,
    /// A flow decomposition found circulating flow not routable from the
    /// source.
    CyclicFlow {
        /// Node at which the path walk could not continue.
        stuck_at: NodeId,
    },
    /// A solution failed validation.
    InvalidSolution {
        /// Human-readable description of the violated condition.
        reason: String,
    },
    /// A cooperative [`SolveBudget`] limit (pivots, rounds or the deadline)
    /// ran out before the solve converged. The solver left no partial
    /// solution; re-solve with a larger budget or let a
    /// [`ResilientSolver`] fall back to another backend.
    BudgetExceeded {
        /// The backend that hit the limit (`ssp`, `par_ssp`, `scaling`,
        /// `cycle`, `simplex`, `cost_scaling`, `reopt`).
        backend: &'static str,
        /// The phase the limit tripped in (`augment`, `cancel`, `pivot`,
        /// `drain`, …).
        phase: &'static str,
        /// Units of progress made before the limit (rounds or pivots,
        /// depending on the phase).
        progress: u64,
    },
    /// The instance's cost/capacity magnitudes are large enough that solver
    /// arithmetic could overflow `i64`; rejected at entry by
    /// [`FlowNetwork::validate_input`] instead of wrapping silently.
    Overflow {
        /// Human-readable description of the offending magnitude.
        reason: String,
    },
    /// A backend panicked mid-solve; the panic was contained at the
    /// [`ResilientSolver`] boundary and converted into this error.
    SolverPanicked {
        /// The backend whose solve panicked.
        backend: &'static str,
        /// The panic payload, when it carried a message.
        message: String,
    },
}

impl std::fmt::Display for NetflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetflowError::InvalidArc { reason } => write!(f, "invalid arc: {reason}"),
            NetflowError::Infeasible { required, achieved } => write!(
                f,
                "infeasible flow: required {required} units, achieved {achieved}"
            ),
            NetflowError::NegativeCycle => {
                write!(f, "network contains a negative-cost cycle")
            }
            NetflowError::CyclicFlow { stuck_at } => {
                write!(f, "flow decomposition stuck at {stuck_at}")
            }
            NetflowError::InvalidSolution { reason } => {
                write!(f, "invalid solution: {reason}")
            }
            NetflowError::BudgetExceeded {
                backend,
                phase,
                progress,
            } => write!(
                f,
                "solve budget exceeded: backend `{backend}` ran out in phase \
                 `{phase}` after {progress} steps"
            ),
            NetflowError::Overflow { reason } => {
                write!(f, "arithmetic overflow risk: {reason}")
            }
            NetflowError::SolverPanicked { backend, message } => {
                write!(f, "backend `{backend}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for NetflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = NetflowError::Infeasible {
            required: 4,
            achieved: 2,
        };
        assert!(e.to_string().contains("required 4"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetflowError>();
        assert_send_sync::<FlowNetwork>();
        assert_send_sync::<FlowSolution>();
    }
}
