//! Internal residual-graph representation shared by the solvers.
//!
//! Every original arc becomes a forward edge (residual capacity = capacity)
//! paired with a backward edge (residual capacity = 0, cost negated). Edges
//! are stored in one flat vector where edge `e` and `e ^ 1` are partners, the
//! classic pairing trick.

use crate::graph::{FlowNetwork, NodeId};

/// One directed edge of the residual graph.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResEdge {
    /// Head node index.
    pub to: u32,
    /// Remaining residual capacity.
    pub cap: i64,
    /// Cost per unit (negated on backward edges).
    pub cost: i64,
}

/// Residual graph over `n` nodes with adjacency lists of edge indices.
#[derive(Debug, Clone)]
pub(crate) struct Residual {
    pub edges: Vec<ResEdge>,
    pub adj: Vec<Vec<u32>>,
    /// For original arc `i`, `edge_of_arc[i]` is its forward edge index
    /// (`None` for synthetic edges added by transformations).
    pub edge_of_arc: Vec<u32>,
}

impl Residual {
    /// Builds a residual graph over `extra` additional nodes beyond the
    /// network's own (used by the lower-bound transformation to append a
    /// super-source and super-sink).
    pub fn new(node_count: usize) -> Self {
        Self {
            edges: Vec::new(),
            adj: vec![Vec::new(); node_count],
            edge_of_arc: Vec::new(),
        }
    }

    /// Builds the residual graph of `net` ignoring lower bounds (callers
    /// handle those via [`Residual::add_edge`] and supply adjustments).
    pub fn from_network(net: &FlowNetwork, extra_nodes: usize) -> Self {
        let mut r = Self::new(net.node_count() + extra_nodes);
        for (_, arc) in net.arcs() {
            let e = r.add_edge(
                arc.from.index(),
                arc.to.index(),
                arc.capacity - arc.lower_bound,
                arc.cost,
            );
            r.edge_of_arc.push(e);
        }
        r
    }

    /// Adds a forward/backward edge pair; returns the forward edge index.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> u32 {
        let e = self.edges.len() as u32;
        self.edges.push(ResEdge {
            to: to as u32,
            cap,
            cost,
        });
        self.edges.push(ResEdge {
            to: from as u32,
            cap: 0,
            cost: -cost,
        });
        self.adj[from].push(e);
        self.adj[to].push(e + 1);
        e
    }

    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Flow currently carried by forward edge `e` (the residual capacity of
    /// its backward partner).
    pub fn flow_on(&self, e: u32) -> i64 {
        self.edges[(e ^ 1) as usize].cap
    }

    /// Pushes `amount` units through edge `e`.
    pub fn push(&mut self, e: u32, amount: i64) {
        self.edges[e as usize].cap -= amount;
        self.edges[(e ^ 1) as usize].cap += amount;
    }

    /// Flows on the original arcs, **excluding** their lower bounds (callers
    /// add those back).
    pub fn arc_flows(&self) -> Vec<i64> {
        self.edge_of_arc.iter().map(|&e| self.flow_on(e)).collect()
    }
}

/// Convenience: node index of a [`NodeId`].
pub(crate) fn idx(n: NodeId) -> usize {
    n.index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;

    #[test]
    fn pairing_and_push() {
        let mut r = Residual::new(2);
        let e = r.add_edge(0, 1, 5, 3);
        assert_eq!(r.flow_on(e), 0);
        r.push(e, 2);
        assert_eq!(r.flow_on(e), 2);
        assert_eq!(r.edges[e as usize].cap, 3);
        r.push(e ^ 1, 1); // cancel one unit
        assert_eq!(r.flow_on(e), 1);
    }

    #[test]
    fn from_network_subtracts_lower_bounds() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_arc_bounded(a, b, 2, 5, 1).unwrap();
        let r = Residual::from_network(&net, 0);
        assert_eq!(r.edges[r.edge_of_arc[0] as usize].cap, 3);
    }
}
