//! Internal residual-graph representation shared by the solvers.
//!
//! Every original arc becomes a forward edge (residual capacity = capacity)
//! paired with a backward edge (residual capacity = 0, cost negated). Edges
//! are stored in one flat vector where edge `e` and `e ^ 1` are partners, the
//! classic pairing trick.
//!
//! Adjacency is compressed sparse row (CSR): after all edges are added,
//! [`Residual::finalize`] lays each node's edges out contiguously, and the
//! *live* per-edge state — residual capacity, cost, head — is mirrored into
//! packed [`Slot`] records in that same CSR slot order. The solvers' inner loops
//! (Dijkstra relaxation, Bellman–Ford, Dinic's BFS/DFS) therefore stream
//! sequential memory instead of chasing one random 24-byte load per edge,
//! which is where min-cost-flow solvers spend almost all of their time on
//! dense networks. Capacities change during a solve but the topology never
//! does, so the layout is built exactly once per solve and [`Residual::push`]
//! updates the slots directly (edge id → slot via a lookup table).
//!
//! Within each node's slot range, edges that can carry flow sit in an
//! **active prefix**: `finalize` places initially-positive edges first, and
//! whenever a push gives a zero-capacity edge (typically a backward edge)
//! residual capacity for the first time, the edge is swapped into the prefix
//! and [`Residual::active_end`] grows. Every slot at or beyond `active_end`
//! has capacity ≤ 0, so shortest-path and max-flow scans iterate
//! [`Residual::active_slots`] and never touch the dormant half of the edge
//! array — on a fresh residual graph that is exactly the backward edges,
//! i.e. half of all slots. Slots inside the prefix can still drop to zero
//! capacity (saturated forward edges), so scans keep their `cap > 0` check;
//! the prefix never shrinks.
//!
//! After `finalize`, the slot arrays are the single source of truth for
//! capacities; [`ResEdge::initial_cap`] is only the staging value.

use crate::canon::CacheStamp;
use crate::graph::{FlowNetwork, NodeId};

/// One directed edge of the residual graph as staged by
/// [`Residual::add_edge`]; live capacities move into the CSR slot arrays at
/// [`Residual::finalize`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResEdge {
    /// Head node index.
    pub to: u32,
    /// Capacity at build time (residual capacity until the first push).
    pub initial_cap: i64,
    /// Cost per unit (negated on backward edges).
    pub cost: i64,
}

/// Live state of one residual edge in its CSR slot. Packed as a struct so
/// an inner-loop visit (capacity test, cost, head) and a builder placement
/// (all four fields) each touch one 24-byte record instead of four parallel
/// arrays — the difference is one cache line versus four on the random
/// accesses that dominate build and push time.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Slot {
    /// Live residual capacity.
    pub cap: i64,
    /// Cost per unit (negated on backward edges).
    pub cost: i64,
    /// Head node.
    pub to: u32,
    /// Index of the edge occupying this slot.
    pub edge: u32,
}

/// Identity of the [`Residual::build_transformed`] call that produced the
/// current CSR layout, kept alongside a mutation journal so a repeat of the
/// *same* call can restore the pristine build by undoing the journal instead
/// of rebuilding — sweeps and benches re-solving one instance turn the
/// O(V + E) counting-sort rebuild into O(pushes of the previous solve).
#[derive(Debug, Clone, Copy)]
struct BuiltMeta {
    /// Identity stamp of the network contents and endpoints as built.
    stamp: CacheStamp,
    target: i64,
    /// Total excess the transformed instance must route (memoised result).
    required: i64,
    /// `monotone` as of the pristine build (pushes clear the live flag).
    monotone: bool,
}

/// One recorded live-state mutation, undone in reverse order by the rollback
/// path of [`Residual::build_transformed`].
#[derive(Debug, Clone, Copy)]
enum JournalOp {
    /// The capacity transfer of `push(e, amount)`.
    Push { e: u32, amount: i64 },
    /// An active-prefix swap by [`Residual::activate`] on tail `u`: the
    /// activated edge sits at `active_end[u] - 1`, its displaced neighbour
    /// at `displaced_slot`; undoing swaps them back and shrinks the prefix.
    Activate { u: u32, displaced_slot: u32 },
}

/// Residual graph over `n` nodes with CSR adjacency and slot-ordered live
/// edge state.
#[derive(Debug, Clone)]
pub(crate) struct Residual {
    pub edges: Vec<ResEdge>,
    /// For original arc `i`, `edge_of_arc[i]` is its forward edge index
    /// (`None` for synthetic edges added by transformations).
    pub edge_of_arc: Vec<u32>,
    nodes: usize,
    /// CSR offsets: node `u`'s slots are
    /// `first_out[u]..first_out[u + 1]`. Empty until [`Residual::finalize`].
    pub first_out: Vec<u32>,
    /// Live per-slot edge state, grouped by tail node (authoritative after
    /// [`Residual::finalize`]).
    pub slots: Vec<Slot>,
    /// Per node: end of the active prefix — every slot in
    /// `first_out[u]..active_end[u]` may have positive capacity, every slot
    /// at or beyond `active_end[u]` has capacity ≤ 0.
    pub active_end: Vec<u32>,
    /// CSR slot of each edge index (inverse of `adj`).
    slot_of: Vec<u32>,
    /// Placement cursor scratch for [`Residual::finalize`] and
    /// [`Residual::build_transformed`], kept here so arena-reused graphs
    /// rebuild without allocating.
    cursor: Vec<u32>,
    /// Second placement cursor (dormant-half) for
    /// [`Residual::build_transformed`].
    cursor2: Vec<u32>,
    /// Node-excess scratch for [`Residual::build_transformed`].
    excess: Vec<i64>,
    /// True while the graph is fresh from [`Residual::build_transformed`]
    /// and every network arc ran from a lower to a higher node index. Then
    /// `[super_s, 0, 1, .., super_t]` is a topological order of the
    /// positive-capacity subgraph and the potential initialisation can skip
    /// Kahn's algorithm outright. Cleared by the first push, which may
    /// create a backward (descending) residual edge.
    pub monotone: bool,
    /// Largest initially-positive slot capacity of the last build — the
    /// capacity-scaling solver's Δ seed, computed during placement so the
    /// solver does not rescan the slot array per solve.
    pub max_build_cap: i64,
    /// Rollback cache identity; `Some` while the journal faithfully records
    /// every live-state mutation since the pristine build.
    built: Option<BuiltMeta>,
    /// Mutation journal; see [`BuiltMeta`].
    journal: Vec<JournalOp>,
    /// Edge ids touched by [`Residual::push`] while `log_pushes` is on —
    /// the decomposed solver drains this between rounds to patch its
    /// compact copy of the kept capacities instead of re-reading every
    /// slot.
    pub edge_log: Vec<u32>,
    /// Whether `push` appends to `edge_log`.
    log_pushes: bool,
}

impl Default for Residual {
    /// An empty zero-node graph — the vacant state of a workspace arena.
    fn default() -> Self {
        Self::new(0)
    }
}

impl Residual {
    /// Builds a residual graph over `node_count` nodes with no edges yet.
    pub fn new(node_count: usize) -> Self {
        Self {
            edges: Vec::new(),
            edge_of_arc: Vec::new(),
            nodes: node_count,
            first_out: Vec::new(),
            slots: Vec::new(),
            active_end: Vec::new(),
            slot_of: Vec::new(),
            cursor: Vec::new(),
            cursor2: Vec::new(),
            excess: Vec::new(),
            monotone: false,
            max_build_cap: 0,
            built: None,
            journal: Vec::new(),
            edge_log: Vec::new(),
            log_pushes: false,
        }
    }

    /// Starts recording the edge id of every [`Residual::push`] into
    /// [`Residual::edge_log`], clearing whatever a previous solve left.
    pub fn start_push_log(&mut self) {
        self.edge_log.clear();
        self.log_pushes = true;
    }

    /// Stops recording pushes and discards the log.
    pub fn stop_push_log(&mut self) {
        self.edge_log.clear();
        self.log_pushes = false;
    }

    /// Builds the residual graph of `net` ignoring lower bounds (callers
    /// handle those via [`Residual::add_edge`] and supply adjustments), with
    /// `extra_nodes` additional nodes beyond the network's own (used by the
    /// lower-bound transformation to append a super-source and super-sink).
    pub fn from_network(net: &FlowNetwork, extra_nodes: usize) -> Self {
        let mut r = Self::new(0);
        r.rebuild_from_network(net, extra_nodes);
        r
    }

    /// [`Residual::from_network`] into `self`, keeping every buffer's
    /// allocation: the arena pattern used by the workspace-backed solvers to
    /// rebuild the residual topology per solve without reallocating.
    pub fn rebuild_from_network(&mut self, net: &FlowNetwork, extra_nodes: usize) {
        self.reset(net.node_count() + extra_nodes);
        self.edges.reserve(2 * net.arc_count());
        self.edge_of_arc.reserve(net.arc_count());
        for (_, arc) in net.arcs() {
            let e = self.add_edge(
                arc.from.index(),
                arc.to.index(),
                arc.capacity - arc.lower_bound,
                arc.cost,
            );
            self.edge_of_arc.push(e);
        }
    }

    /// Builds the excess/deficit-transformed residual of `net` directly in
    /// CSR form: network arcs (capacity minus lower bound) plus the
    /// super-source/super-sink supply edges implied by lower bounds and the
    /// `target`-unit `s -> t` requirement. Equivalent to
    /// [`Residual::rebuild_from_network`] + `add_edge(super, ..)` +
    /// [`Residual::finalize`], but in two passes over the arc list with no
    /// per-edge staging, which roughly halves solve setup time on the
    /// small-to-medium networks the allocator produces.
    ///
    /// Edge ids match the staged path: arc `i` is edge `2 * i`, its partner
    /// `2 * i + 1`, supply pairs follow. Returns
    /// `(super_s, super_t, required)` where `required` is the total excess
    /// that must reach the super-sink for feasibility.
    pub fn build_transformed(
        &mut self,
        net: &FlowNetwork,
        s: usize,
        t: usize,
        target: i64,
    ) -> (usize, usize, i64) {
        let n = net.node_count();
        let nodes = n + 2;
        let (super_s, super_t) = (n, n + 1);
        let stamp = CacheStamp::from_parts(net, s, t);
        // Rollback fast path: this arena already holds the pristine build of
        // the identical request and a faithful journal of everything the
        // last solve did to it — undo the journal instead of rebuilding.
        // Undoing in reverse restores the exact slot order, so cached solves
        // stay bit-identical to cold ones.
        if let Some(b) = self.built {
            if (b.stamp, b.target) == (stamp, target) {
                self.undo_journal();
                self.monotone = b.monotone;
                return (super_s, super_t, b.required);
            }
            self.built = None;
            self.journal.clear();
        }
        // Minimal reset: unlike [`Residual::reset`], the slot arrays keep
        // their lengths so the grow-only path below can skip re-zeroing
        // them; `first_out`/`active_end` are fully rewritten by the prefix
        // pass and resized (shrinking included) right before it.
        self.nodes = nodes;
        self.monotone = false;
        self.edges.clear();
        self.edge_of_arc.clear();
        let arcs = net.arcs_slice();

        // Pass 1: per-node active (positive residual) and dormant out-degree
        // counts, plus the lower-bound excesses.
        self.cursor.clear();
        self.cursor.resize(nodes, 0);
        self.cursor2.clear();
        self.cursor2.resize(nodes, 0);
        self.excess.clear();
        self.excess.resize(n, 0);
        let mut monotone = true;
        for arc in arcs {
            let (u, v) = (arc.from.index(), arc.to.index());
            monotone &= u < v;
            if arc.capacity > arc.lower_bound {
                self.cursor[u] += 1;
            } else {
                self.cursor2[u] += 1;
            }
            self.cursor2[v] += 1;
            if arc.lower_bound != 0 {
                self.excess[v] += arc.lower_bound;
                self.excess[u] -= arc.lower_bound;
            }
        }
        self.monotone = monotone;
        self.excess[s] += target;
        self.excess[t] -= target;
        let mut required = 0i64;
        for v in 0..n {
            match self.excess[v] {
                e if e > 0 => {
                    // super_s -> v carrying e.
                    self.cursor[super_s] += 1;
                    self.cursor2[v] += 1;
                    required += e;
                }
                e if e < 0 => {
                    // v -> super_t carrying -e.
                    self.cursor[v] += 1;
                    self.cursor2[super_t] += 1;
                }
                _ => {}
            }
        }

        // Prefix sums: `cursor` becomes the active placement cursor,
        // `cursor2` the dormant one; `active_end` is final immediately.
        self.first_out.clear();
        self.first_out.resize(nodes + 1, 0);
        self.active_end.clear();
        self.active_end.resize(nodes, 0);
        let mut acc = 0u32;
        for u in 0..nodes {
            let act = self.cursor[u];
            let dorm = self.cursor2[u];
            self.first_out[u] = acc;
            self.cursor[u] = acc;
            let ae = acc + act;
            self.active_end[u] = ae;
            self.cursor2[u] = ae;
            acc = ae + dorm;
        }
        self.first_out[nodes] = acc;
        let m = acc as usize;
        // Grow-only: every slot in `0..m` is overwritten by the placement
        // pass below (the cursor counts sum to exactly `m`), so zeroing
        // would be pure memory traffic. Lengths never shrink; stale entries
        // beyond `first_out[nodes]` are unreachable through the CSR offsets.
        if self.slots.len() < m {
            self.slots.resize(m, Slot::default());
            self.slot_of.resize(m, 0);
        }

        // Pass 2: placement, writing the live slots directly. The
        // destructuring borrow keeps both array bases in registers across
        // the stores per edge; going through `self` would force the
        // optimiser to re-derive them after each write.
        let Residual {
            slots,
            slot_of,
            cursor,
            cursor2,
            excess,
            edge_of_arc,
            ..
        } = self;
        let mut place = |u: usize, v: usize, c: i64, w: i64, e: u32, active: bool| {
            let slot = if active {
                let s = cursor[u];
                cursor[u] = s + 1;
                s
            } else {
                let s = cursor2[u];
                cursor2[u] = s + 1;
                s
            } as usize;
            slots[slot] = Slot {
                cap: c,
                cost: w,
                to: v as u32,
                edge: e,
            };
            slot_of[e as usize] = slot as u32;
        };
        let mut max_cap = 0i64;
        for (i, arc) in arcs.iter().enumerate() {
            let (u, v) = (arc.from.index(), arc.to.index());
            let rc = arc.capacity - arc.lower_bound;
            let e = (2 * i) as u32;
            max_cap = max_cap.max(rc);
            place(u, v, rc, arc.cost, e, rc > 0);
            place(v, u, 0, -arc.cost, e + 1, false);
        }
        let mut e = (2 * arcs.len()) as u32;
        for (v, &ex) in excess.iter().enumerate().take(n) {
            max_cap = max_cap.max(ex.abs());
            if ex > 0 {
                place(super_s, v, ex, 0, e, true);
                place(v, super_s, 0, 0, e + 1, false);
            } else if ex < 0 {
                place(v, super_t, -ex, 0, e, true);
                place(super_t, v, 0, 0, e + 1, false);
            } else {
                continue;
            }
            e += 2;
        }
        edge_of_arc.extend((0..arcs.len() as u32).map(|i| 2 * i));
        self.max_build_cap = max_cap;
        self.journal.clear();
        self.built = Some(BuiltMeta {
            stamp,
            target,
            required,
            monotone: self.monotone,
        });
        (super_s, super_t, required)
    }

    /// Empties the graph and re-targets it at `node_count` nodes, retaining
    /// buffer capacity. The graph is back in the staging state: add edges,
    /// then [`Residual::finalize`].
    pub fn reset(&mut self, node_count: usize) {
        self.nodes = node_count;
        self.monotone = false;
        self.max_build_cap = 0;
        self.built = None;
        self.journal.clear();
        self.edges.clear();
        self.edge_of_arc.clear();
        self.first_out.clear();
        self.slots.clear();
        self.active_end.clear();
        self.slot_of.clear();
    }

    /// Adds a forward/backward edge pair; returns the forward edge index.
    ///
    /// Must not be called after [`Residual::finalize`].
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> u32 {
        debug_assert!(!self.is_finalized(), "add_edge after finalize");
        debug_assert!(from < self.nodes && to < self.nodes);
        let e = self.edges.len() as u32;
        self.edges.push(ResEdge {
            to: to as u32,
            initial_cap: cap,
            cost,
        });
        self.edges.push(ResEdge {
            to: from as u32,
            initial_cap: 0,
            cost: -cost,
        });
        e
    }

    /// Builds the CSR adjacency by counting sort over edge tails and mirrors
    /// each edge's live state into slot order. Call once after the last
    /// [`Residual::add_edge`]; the solvers require it.
    pub fn finalize(&mut self) {
        let n = self.nodes;
        let m = self.edges.len();
        self.built = None;
        self.journal.clear();
        self.max_build_cap = self
            .edges
            .iter()
            .map(|e| e.initial_cap)
            .max()
            .unwrap_or(0)
            .max(0);
        self.first_out.clear();
        self.first_out.resize(n + 1, 0);
        // The tail of edge `e` is the head of its partner `e ^ 1`.
        for e in 0..m {
            self.first_out[self.edges[e ^ 1].to as usize + 1] += 1;
        }
        for u in 0..n {
            self.first_out[u + 1] += self.first_out[u];
        }
        self.slots.clear();
        self.slots.resize(m, Slot::default());
        self.slot_of.clear();
        self.slot_of.resize(m, 0);
        // Two placement passes per node: initially-positive edges first (the
        // active prefix), then the zero-capacity ones; insertion order is
        // preserved within each group.
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.first_out);
        for e in 0..m {
            let edge = self.edges[e];
            if edge.initial_cap > 0 {
                let u = self.edges[e ^ 1].to as usize;
                let slot = self.cursor[u] as usize;
                self.slots[slot] = Slot {
                    cap: edge.initial_cap,
                    cost: edge.cost,
                    to: edge.to,
                    edge: e as u32,
                };
                self.slot_of[e] = slot as u32;
                self.cursor[u] += 1;
            }
        }
        self.active_end.clear();
        self.active_end.extend_from_slice(&self.cursor[..n]);
        for e in 0..m {
            let edge = self.edges[e];
            if edge.initial_cap <= 0 {
                let u = self.edges[e ^ 1].to as usize;
                let slot = self.cursor[u] as usize;
                self.slots[slot] = Slot {
                    cap: edge.initial_cap,
                    cost: edge.cost,
                    to: edge.to,
                    edge: e as u32,
                };
                self.slot_of[e] = slot as u32;
                self.cursor[u] += 1;
            }
        }
    }

    fn is_finalized(&self) -> bool {
        !self.first_out.is_empty()
    }

    /// Slot range of node `u`'s outgoing edges (active or not). Forward
    /// scans only ever need [`Residual::active_slots`]; the full range
    /// serves *backward* traversals (a dormant forward slot's partner can
    /// still carry residual capacity) and white-box tests of the layout.
    #[inline]
    pub fn all_slots(&self, u: usize) -> std::ops::Range<usize> {
        debug_assert!(self.is_finalized(), "all_slots() before finalize");
        self.first_out[u] as usize..self.first_out[u + 1] as usize
    }

    /// Slot range of node `u`'s **active** outgoing edges — the only ones
    /// that can have positive residual capacity. Slots inside the range may
    /// still be saturated, so scans keep their `cap > 0` check.
    #[inline]
    pub fn active_slots(&self, u: usize) -> std::ops::Range<usize> {
        debug_assert!(self.is_finalized(), "active_slots() before finalize");
        self.first_out[u] as usize..self.active_end[u] as usize
    }

    /// Outgoing edge indices of node `u`, for white-box tests; solver loops
    /// read the parallel slot arrays directly.
    #[cfg(test)]
    pub fn out(&self, u: usize) -> Vec<u32> {
        debug_assert!(self.is_finalized(), "out() before finalize");
        self.slots[self.first_out[u] as usize..self.first_out[u + 1] as usize]
            .iter()
            .map(|s| s.edge)
            .collect()
    }

    /// Tail node of edge `e` (the head of its backward partner). Requires
    /// [`Residual::finalize`]: reads the slot arrays, so it also works on
    /// graphs built by [`Residual::build_transformed`], which never stage
    /// [`ResEdge`]s.
    #[inline]
    pub fn tail(&self, e: u32) -> usize {
        self.slots[self.slot_of[(e ^ 1) as usize] as usize].to as usize
    }

    /// Live residual capacity of edge `e`. Requires [`Residual::finalize`].
    #[inline]
    pub fn cap_of(&self, e: u32) -> i64 {
        self.slots[self.slot_of[e as usize] as usize].cap
    }

    /// Cost per unit of edge `e`. Requires [`Residual::finalize`].
    #[inline]
    pub fn cost_of(&self, e: u32) -> i64 {
        self.slots[self.slot_of[e as usize] as usize].cost
    }

    /// Overwrites the cost of edge `e` in the slot arrays (warm-start
    /// reoptimisation applies sweep cost deltas in place; callers keep the
    /// `e`/`e ^ 1` negation convention themselves). The staging vector is
    /// deliberately left stale: after [`Residual::finalize`] the slot arrays
    /// are authoritative and the graph is never re-finalized.
    #[inline]
    pub fn set_cost_of(&mut self, e: u32, cost: i64) {
        self.built = None;
        self.journal.clear();
        self.slots[self.slot_of[e as usize] as usize].cost = cost;
    }

    /// Head node of edge `e`. Requires [`Residual::finalize`].
    #[inline]
    pub fn head(&self, e: u32) -> usize {
        self.slots[self.slot_of[e as usize] as usize].to as usize
    }

    /// Overwrites the live residual capacity of edge `e` (used to freeze the
    /// circulation edge in the max-flow lower-bound transformation).
    #[inline]
    pub fn set_cap_of(&mut self, e: u32, cap: i64) {
        self.built = None;
        self.journal.clear();
        let slot = self.slot_of[e as usize] as usize;
        self.slots[slot].cap = cap;
        if cap > 0 {
            self.activate(e, slot);
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Flow currently carried by forward edge `e` (the residual capacity of
    /// its backward partner).
    pub fn flow_on(&self, e: u32) -> i64 {
        self.cap_of(e ^ 1)
    }

    /// Pushes `amount` units through edge `e`.
    #[inline]
    pub fn push(&mut self, e: u32, amount: i64) {
        self.monotone = false;
        if self.built.is_some() {
            self.record(JournalOp::Push { e, amount });
        }
        if self.log_pushes {
            self.edge_log.push(e);
        }
        self.slots[self.slot_of[e as usize] as usize].cap -= amount;
        let back = e ^ 1;
        let back_slot = self.slot_of[back as usize] as usize;
        self.slots[back_slot].cap += amount;
        if self.slots[back_slot].cap > 0 {
            self.activate(back, back_slot);
        }
    }

    /// Undoes every journaled mutation in reverse, restoring the slot arrays
    /// (capacities, order, active prefixes) to the pristine post-build state.
    fn undo_journal(&mut self) {
        while let Some(op) = self.journal.pop() {
            match op {
                JournalOp::Push { e, amount } => {
                    let fwd = self.slot_of[e as usize] as usize;
                    self.slots[fwd].cap += amount;
                    let back = self.slot_of[(e ^ 1) as usize] as usize;
                    self.slots[back].cap -= amount;
                }
                JournalOp::Activate { u, displaced_slot } => {
                    let u = u as usize;
                    let boundary = (self.active_end[u] - 1) as usize;
                    let displaced = displaced_slot as usize;
                    self.slots.swap(boundary, displaced);
                    self.slot_of[self.slots[boundary].edge as usize] = boundary as u32;
                    self.slot_of[self.slots[displaced].edge as usize] = displaced as u32;
                    self.active_end[u] = boundary as u32;
                }
            }
        }
    }

    /// Mid-solve rewind to the pristine build: undoes the journal in place,
    /// leaving the journal armed for the rest of the solve. Returns `false`
    /// (flow untouched) when no journal is active — the caller keeps working
    /// with the current flow. Used by the cost-scaling backend to discard
    /// its cost-blind feasibility max-flow before the scaling phases.
    pub(crate) fn rollback(&mut self) -> bool {
        match self.built {
            Some(b) => {
                self.undo_journal();
                self.monotone = b.monotone;
                true
            }
            None => false,
        }
    }

    /// Appends `op` to the rollback journal, abandoning the cache if a
    /// push-heavy solve (cost scaling can revisit edges many times) would
    /// grow the journal past a small multiple of the slot count — at that
    /// point a rebuild is cheaper than the replay and the bookkeeping.
    #[inline]
    fn record(&mut self, op: JournalOp) {
        let cap = 8 * self.slots.len() + 64;
        if self.journal.len() >= cap {
            self.built = None;
            self.journal.clear();
            return;
        }
        self.journal.push(op);
    }

    /// Moves edge `e` (at `slot`) into its tail's active prefix if it is not
    /// there already, swapping it with the first dormant slot. The displaced
    /// edge has capacity ≤ 0, so the active-prefix invariant is preserved.
    fn activate(&mut self, e: u32, slot: usize) {
        let u = self.slots[self.slot_of[(e ^ 1) as usize] as usize].to as usize;
        let boundary = self.active_end[u] as usize;
        if slot < boundary {
            return;
        }
        if self.built.is_some() {
            self.record(JournalOp::Activate {
                u: u as u32,
                displaced_slot: slot as u32,
            });
        }
        debug_assert!(self.slots[boundary].cap <= 0 || boundary == slot);
        self.slots.swap(boundary, slot);
        self.slot_of[e as usize] = boundary as u32;
        self.slot_of[self.slots[slot].edge as usize] = slot as u32;
        self.active_end[u] = boundary as u32 + 1;
    }
}

/// Convenience: node index of a [`NodeId`].
pub(crate) fn idx(n: NodeId) -> usize {
    n.index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;

    #[test]
    fn pairing_and_push() {
        let mut r = Residual::new(2);
        let e = r.add_edge(0, 1, 5, 3);
        r.finalize();
        assert_eq!(r.flow_on(e), 0);
        r.push(e, 2);
        assert_eq!(r.flow_on(e), 2);
        assert_eq!(r.cap_of(e), 3);
        r.push(e ^ 1, 1); // cancel one unit
        assert_eq!(r.flow_on(e), 1);
    }

    #[test]
    fn from_network_subtracts_lower_bounds() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_arc_bounded(a, b, 2, 5, 1).unwrap();
        let mut r = Residual::from_network(&net, 0);
        r.finalize();
        assert_eq!(r.cap_of(r.edge_of_arc[0]), 3);
    }

    #[test]
    fn csr_groups_edges_by_tail() {
        let mut r = Residual::new(4);
        let e01 = r.add_edge(0, 1, 1, 0);
        let e02 = r.add_edge(0, 2, 1, 0);
        let e13 = r.add_edge(1, 3, 1, 0);
        let e23 = r.add_edge(2, 3, 1, 0);
        r.finalize();
        // Initially-positive edges come first (the active prefix), then the
        // zero-capacity backward edges, insertion order within each group.
        assert_eq!(r.out(0), &[e01, e02]);
        assert_eq!(r.out(1), &[e13, e01 ^ 1]);
        assert_eq!(r.out(2), &[e23, e02 ^ 1]);
        assert_eq!(r.out(3), &[e13 ^ 1, e23 ^ 1]);
        assert_eq!(r.active_slots(0).len(), 2);
        assert_eq!(r.active_slots(1).len(), 1);
        assert_eq!(r.active_slots(2).len(), 1);
        assert_eq!(r.active_slots(3).len(), 0);
        for u in 0..4 {
            for e in r.out(u) {
                assert_eq!(r.tail(e), u);
            }
        }
    }

    #[test]
    fn pushes_activate_backward_edges() {
        // s -> a -> t chain; pushing along it must activate the backward
        // edges so a later cancelling pass can see them.
        let mut r = Residual::new(3);
        let sa = r.add_edge(0, 1, 2, 1);
        let at = r.add_edge(1, 2, 2, 1);
        r.finalize();
        assert_eq!(r.active_slots(1).len(), 1);
        assert_eq!(r.active_slots(2).len(), 0);
        r.push(sa, 1);
        r.push(at, 1);
        // Backward edges a -> s and t -> a now have capacity 1 and must be
        // inside the active prefix of their tails.
        assert_eq!(r.active_slots(1).len(), 2);
        assert_eq!(r.active_slots(2).len(), 1);
        let a_active: Vec<u32> = r.active_slots(1).map(|s| r.slots[s].edge).collect();
        assert!(a_active.contains(&(sa ^ 1)));
        assert!(a_active.contains(&at));
        assert_eq!(r.slots[r.active_slots(2).next().unwrap()].edge, at ^ 1);
        // Fully cancel: capacities drop to zero but the prefix never shrinks
        // and `cap > 0` checks still exclude them.
        r.push(sa ^ 1, 1);
        r.push(at ^ 1, 1);
        assert_eq!(r.active_slots(1).len(), 2);
        assert_eq!(r.cap_of(sa ^ 1), 0);
        assert_eq!(r.cap_of(sa), 2);
    }

    #[test]
    fn slot_arrays_mirror_edges() {
        let mut r = Residual::new(3);
        let e = r.add_edge(0, 1, 7, -4);
        let f = r.add_edge(1, 2, 2, 9);
        r.finalize();
        for u in 0..3 {
            for (slot, eid) in r.all_slots(u).zip(r.out(u)) {
                let edge = r.edges[eid as usize];
                assert_eq!(r.slots[slot].cap, edge.initial_cap);
                assert_eq!(r.slots[slot].cost, edge.cost);
                assert_eq!(r.slots[slot].to, edge.to);
            }
        }
        // A push is visible through the slot arrays and flow accessors.
        r.push(e, 3);
        assert_eq!(r.cap_of(e), 4);
        assert_eq!(r.cap_of(e ^ 1), 3);
        assert_eq!(r.cap_of(f), 2);
    }

    #[test]
    fn csr_handles_isolated_nodes() {
        let mut r = Residual::new(5);
        r.add_edge(0, 4, 1, 0);
        r.finalize();
        assert!(r.out(1).is_empty());
        assert!(r.out(2).is_empty());
        assert!(r.out(3).is_empty());
        assert_eq!(r.out(0).len(), 1);
        assert_eq!(r.out(4).len(), 1);
    }
}
