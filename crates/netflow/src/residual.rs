//! Internal residual-graph representation shared by the solvers.
//!
//! Every original arc becomes a forward edge (residual capacity = capacity)
//! paired with a backward edge (residual capacity = 0, cost negated). Edges
//! are stored in one flat vector where edge `e` and `e ^ 1` are partners, the
//! classic pairing trick.
//!
//! Adjacency is compressed sparse row (CSR): after all edges are added,
//! [`Residual::finalize`] lays each node's edges out contiguously, and the
//! *live* per-edge state — residual capacity, cost, head — is mirrored into
//! parallel arrays in that same CSR slot order. The solvers' inner loops
//! (Dijkstra relaxation, Bellman–Ford, Dinic's BFS/DFS) therefore stream
//! sequential memory instead of chasing one random 24-byte load per edge,
//! which is where min-cost-flow solvers spend almost all of their time on
//! dense networks. Capacities change during a solve but the topology never
//! does, so the layout is built exactly once per solve and [`Residual::push`]
//! updates the slot arrays directly (edge id → slot via a lookup table).
//!
//! Within each node's slot range, edges that can carry flow sit in an
//! **active prefix**: `finalize` places initially-positive edges first, and
//! whenever a push gives a zero-capacity edge (typically a backward edge)
//! residual capacity for the first time, the edge is swapped into the prefix
//! and [`Residual::active_end`] grows. Every slot at or beyond `active_end`
//! has capacity ≤ 0, so shortest-path and max-flow scans iterate
//! [`Residual::active_slots`] and never touch the dormant half of the edge
//! array — on a fresh residual graph that is exactly the backward edges,
//! i.e. half of all slots. Slots inside the prefix can still drop to zero
//! capacity (saturated forward edges), so scans keep their `cap > 0` check;
//! the prefix never shrinks.
//!
//! After `finalize`, the slot arrays are the single source of truth for
//! capacities; [`ResEdge::initial_cap`] is only the staging value.

use crate::graph::{FlowNetwork, NodeId};

/// One directed edge of the residual graph as staged by
/// [`Residual::add_edge`]; live capacities move into the CSR slot arrays at
/// [`Residual::finalize`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResEdge {
    /// Head node index.
    pub to: u32,
    /// Capacity at build time (residual capacity until the first push).
    pub initial_cap: i64,
    /// Cost per unit (negated on backward edges).
    pub cost: i64,
}

/// Residual graph over `n` nodes with CSR adjacency and slot-ordered live
/// edge state.
#[derive(Debug, Clone)]
pub(crate) struct Residual {
    pub edges: Vec<ResEdge>,
    /// For original arc `i`, `edge_of_arc[i]` is its forward edge index
    /// (`None` for synthetic edges added by transformations).
    pub edge_of_arc: Vec<u32>,
    nodes: usize,
    /// CSR offsets: node `u`'s slots are
    /// `first_out[u]..first_out[u + 1]`. Empty until [`Residual::finalize`].
    pub first_out: Vec<u32>,
    /// Edge index per CSR slot, grouped by tail node.
    pub adj: Vec<u32>,
    /// Live residual capacity per CSR slot (authoritative after
    /// [`Residual::finalize`]).
    pub cap: Vec<i64>,
    /// Edge cost per CSR slot.
    pub cost: Vec<i64>,
    /// Edge head per CSR slot.
    pub to: Vec<u32>,
    /// Per node: end of the active prefix — every slot in
    /// `first_out[u]..active_end[u]` may have positive capacity, every slot
    /// at or beyond `active_end[u]` has capacity ≤ 0.
    pub active_end: Vec<u32>,
    /// CSR slot of each edge index (inverse of `adj`).
    slot_of: Vec<u32>,
}

impl Residual {
    /// Builds a residual graph over `node_count` nodes with no edges yet.
    pub fn new(node_count: usize) -> Self {
        Self {
            edges: Vec::new(),
            edge_of_arc: Vec::new(),
            nodes: node_count,
            first_out: Vec::new(),
            adj: Vec::new(),
            cap: Vec::new(),
            cost: Vec::new(),
            to: Vec::new(),
            active_end: Vec::new(),
            slot_of: Vec::new(),
        }
    }

    /// Builds the residual graph of `net` ignoring lower bounds (callers
    /// handle those via [`Residual::add_edge`] and supply adjustments), with
    /// `extra_nodes` additional nodes beyond the network's own (used by the
    /// lower-bound transformation to append a super-source and super-sink).
    pub fn from_network(net: &FlowNetwork, extra_nodes: usize) -> Self {
        let mut r = Self::new(net.node_count() + extra_nodes);
        r.edges.reserve(2 * net.arc_count());
        r.edge_of_arc.reserve(net.arc_count());
        for (_, arc) in net.arcs() {
            let e = r.add_edge(
                arc.from.index(),
                arc.to.index(),
                arc.capacity - arc.lower_bound,
                arc.cost,
            );
            r.edge_of_arc.push(e);
        }
        r
    }

    /// Adds a forward/backward edge pair; returns the forward edge index.
    ///
    /// Must not be called after [`Residual::finalize`].
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> u32 {
        debug_assert!(!self.is_finalized(), "add_edge after finalize");
        debug_assert!(from < self.nodes && to < self.nodes);
        let e = self.edges.len() as u32;
        self.edges.push(ResEdge {
            to: to as u32,
            initial_cap: cap,
            cost,
        });
        self.edges.push(ResEdge {
            to: from as u32,
            initial_cap: 0,
            cost: -cost,
        });
        e
    }

    /// Builds the CSR adjacency by counting sort over edge tails and mirrors
    /// each edge's live state into slot order. Call once after the last
    /// [`Residual::add_edge`]; the solvers require it.
    pub fn finalize(&mut self) {
        let n = self.nodes;
        let m = self.edges.len();
        self.first_out.clear();
        self.first_out.resize(n + 1, 0);
        // The tail of edge `e` is the head of its partner `e ^ 1`.
        for e in 0..m {
            self.first_out[self.edges[e ^ 1].to as usize + 1] += 1;
        }
        for u in 0..n {
            self.first_out[u + 1] += self.first_out[u];
        }
        self.adj.clear();
        self.adj.resize(m, 0);
        self.slot_of.clear();
        self.slot_of.resize(m, 0);
        // Two placement passes per node: initially-positive edges first (the
        // active prefix), then the zero-capacity ones; insertion order is
        // preserved within each group.
        let mut cursor = self.first_out.clone();
        for e in 0..m {
            if self.edges[e].initial_cap > 0 {
                let u = self.edges[e ^ 1].to as usize;
                let slot = cursor[u];
                self.adj[slot as usize] = e as u32;
                self.slot_of[e] = slot;
                cursor[u] += 1;
            }
        }
        self.active_end.clear();
        self.active_end.extend_from_slice(&cursor[..n]);
        for e in 0..m {
            if self.edges[e].initial_cap <= 0 {
                let u = self.edges[e ^ 1].to as usize;
                let slot = cursor[u];
                self.adj[slot as usize] = e as u32;
                self.slot_of[e] = slot;
                cursor[u] += 1;
            }
        }
        self.cap.clear();
        self.cost.clear();
        self.to.clear();
        self.cap.reserve(m);
        self.cost.reserve(m);
        self.to.reserve(m);
        for slot in 0..m {
            let edge = self.edges[self.adj[slot] as usize];
            self.cap.push(edge.initial_cap);
            self.cost.push(edge.cost);
            self.to.push(edge.to);
        }
    }

    fn is_finalized(&self) -> bool {
        !self.first_out.is_empty()
    }

    /// Slot range of node `u`'s outgoing edges (active or not). The solvers
    /// only ever scan [`Residual::active_slots`]; the full range exists for
    /// white-box tests of the slot layout.
    #[cfg(test)]
    pub fn slots(&self, u: usize) -> std::ops::Range<usize> {
        debug_assert!(self.is_finalized(), "slots() before finalize");
        self.first_out[u] as usize..self.first_out[u + 1] as usize
    }

    /// Slot range of node `u`'s **active** outgoing edges — the only ones
    /// that can have positive residual capacity. Slots inside the range may
    /// still be saturated, so scans keep their `cap > 0` check.
    #[inline]
    pub fn active_slots(&self, u: usize) -> std::ops::Range<usize> {
        debug_assert!(self.is_finalized(), "active_slots() before finalize");
        self.first_out[u] as usize..self.active_end[u] as usize
    }

    /// Outgoing edge indices of node `u`, for white-box tests; solver loops
    /// read the parallel slot arrays directly.
    #[cfg(test)]
    pub fn out(&self, u: usize) -> &[u32] {
        debug_assert!(self.is_finalized(), "out() before finalize");
        &self.adj[self.first_out[u] as usize..self.first_out[u + 1] as usize]
    }

    /// Tail node of edge `e` (the head of its backward partner).
    #[inline]
    pub fn tail(&self, e: u32) -> usize {
        self.edges[(e ^ 1) as usize].to as usize
    }

    /// Live residual capacity of edge `e`. Requires [`Residual::finalize`].
    #[inline]
    pub fn cap_of(&self, e: u32) -> i64 {
        self.cap[self.slot_of[e as usize] as usize]
    }

    /// Cost per unit of edge `e`. Requires [`Residual::finalize`].
    #[inline]
    pub fn cost_of(&self, e: u32) -> i64 {
        self.cost[self.slot_of[e as usize] as usize]
    }

    /// Overwrites the cost of edge `e` in the slot arrays and the staging
    /// vector (warm-start reoptimisation applies sweep cost deltas in place;
    /// callers keep the `e`/`e ^ 1` negation convention themselves).
    #[inline]
    pub fn set_cost_of(&mut self, e: u32, cost: i64) {
        self.cost[self.slot_of[e as usize] as usize] = cost;
        self.edges[e as usize].cost = cost;
    }

    /// Head node of edge `e`.
    #[inline]
    pub fn head(&self, e: u32) -> usize {
        self.edges[e as usize].to as usize
    }

    /// Overwrites the live residual capacity of edge `e` (used to freeze the
    /// circulation edge in the max-flow lower-bound transformation).
    #[inline]
    pub fn set_cap_of(&mut self, e: u32, cap: i64) {
        let slot = self.slot_of[e as usize] as usize;
        self.cap[slot] = cap;
        if cap > 0 {
            self.activate(e, slot);
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Flow currently carried by forward edge `e` (the residual capacity of
    /// its backward partner).
    pub fn flow_on(&self, e: u32) -> i64 {
        self.cap_of(e ^ 1)
    }

    /// Pushes `amount` units through edge `e`.
    #[inline]
    pub fn push(&mut self, e: u32, amount: i64) {
        self.cap[self.slot_of[e as usize] as usize] -= amount;
        let back = e ^ 1;
        let back_slot = self.slot_of[back as usize] as usize;
        self.cap[back_slot] += amount;
        if self.cap[back_slot] > 0 {
            self.activate(back, back_slot);
        }
    }

    /// Moves edge `e` (at `slot`) into its tail's active prefix if it is not
    /// there already, swapping it with the first dormant slot. The displaced
    /// edge has capacity ≤ 0, so the active-prefix invariant is preserved.
    fn activate(&mut self, e: u32, slot: usize) {
        let u = self.edges[(e ^ 1) as usize].to as usize;
        let boundary = self.active_end[u] as usize;
        if slot < boundary {
            return;
        }
        debug_assert!(self.cap[boundary] <= 0 || boundary == slot);
        self.adj.swap(boundary, slot);
        self.cap.swap(boundary, slot);
        self.cost.swap(boundary, slot);
        self.to.swap(boundary, slot);
        self.slot_of[e as usize] = boundary as u32;
        self.slot_of[self.adj[slot] as usize] = slot as u32;
        self.active_end[u] = boundary as u32 + 1;
    }

    /// Flows on the original arcs, **excluding** their lower bounds (callers
    /// add those back).
    pub fn arc_flows(&self) -> Vec<i64> {
        self.edge_of_arc.iter().map(|&e| self.flow_on(e)).collect()
    }
}

/// Convenience: node index of a [`NodeId`].
pub(crate) fn idx(n: NodeId) -> usize {
    n.index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;

    #[test]
    fn pairing_and_push() {
        let mut r = Residual::new(2);
        let e = r.add_edge(0, 1, 5, 3);
        r.finalize();
        assert_eq!(r.flow_on(e), 0);
        r.push(e, 2);
        assert_eq!(r.flow_on(e), 2);
        assert_eq!(r.cap_of(e), 3);
        r.push(e ^ 1, 1); // cancel one unit
        assert_eq!(r.flow_on(e), 1);
    }

    #[test]
    fn from_network_subtracts_lower_bounds() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_arc_bounded(a, b, 2, 5, 1).unwrap();
        let mut r = Residual::from_network(&net, 0);
        r.finalize();
        assert_eq!(r.cap_of(r.edge_of_arc[0]), 3);
    }

    #[test]
    fn csr_groups_edges_by_tail() {
        let mut r = Residual::new(4);
        let e01 = r.add_edge(0, 1, 1, 0);
        let e02 = r.add_edge(0, 2, 1, 0);
        let e13 = r.add_edge(1, 3, 1, 0);
        let e23 = r.add_edge(2, 3, 1, 0);
        r.finalize();
        // Initially-positive edges come first (the active prefix), then the
        // zero-capacity backward edges, insertion order within each group.
        assert_eq!(r.out(0), &[e01, e02]);
        assert_eq!(r.out(1), &[e13, e01 ^ 1]);
        assert_eq!(r.out(2), &[e23, e02 ^ 1]);
        assert_eq!(r.out(3), &[e13 ^ 1, e23 ^ 1]);
        assert_eq!(r.active_slots(0).len(), 2);
        assert_eq!(r.active_slots(1).len(), 1);
        assert_eq!(r.active_slots(2).len(), 1);
        assert_eq!(r.active_slots(3).len(), 0);
        for u in 0..4 {
            for &e in r.out(u) {
                assert_eq!(r.tail(e), u);
            }
        }
    }

    #[test]
    fn pushes_activate_backward_edges() {
        // s -> a -> t chain; pushing along it must activate the backward
        // edges so a later cancelling pass can see them.
        let mut r = Residual::new(3);
        let sa = r.add_edge(0, 1, 2, 1);
        let at = r.add_edge(1, 2, 2, 1);
        r.finalize();
        assert_eq!(r.active_slots(1).len(), 1);
        assert_eq!(r.active_slots(2).len(), 0);
        r.push(sa, 1);
        r.push(at, 1);
        // Backward edges a -> s and t -> a now have capacity 1 and must be
        // inside the active prefix of their tails.
        assert_eq!(r.active_slots(1).len(), 2);
        assert_eq!(r.active_slots(2).len(), 1);
        let a_active: Vec<u32> = r.active_slots(1).map(|s| r.adj[s]).collect();
        assert!(a_active.contains(&(sa ^ 1)));
        assert!(a_active.contains(&at));
        assert_eq!(r.adj[r.active_slots(2).next().unwrap()], at ^ 1);
        // Fully cancel: capacities drop to zero but the prefix never shrinks
        // and `cap > 0` checks still exclude them.
        r.push(sa ^ 1, 1);
        r.push(at ^ 1, 1);
        assert_eq!(r.active_slots(1).len(), 2);
        assert_eq!(r.cap_of(sa ^ 1), 0);
        assert_eq!(r.cap_of(sa), 2);
    }

    #[test]
    fn slot_arrays_mirror_edges() {
        let mut r = Residual::new(3);
        let e = r.add_edge(0, 1, 7, -4);
        let f = r.add_edge(1, 2, 2, 9);
        r.finalize();
        for u in 0..3 {
            for (slot, &eid) in r.slots(u).zip(r.out(u)) {
                let edge = r.edges[eid as usize];
                assert_eq!(r.cap[slot], edge.initial_cap);
                assert_eq!(r.cost[slot], edge.cost);
                assert_eq!(r.to[slot], edge.to);
            }
        }
        // A push is visible through the slot arrays and flow accessors.
        r.push(e, 3);
        assert_eq!(r.cap_of(e), 4);
        assert_eq!(r.cap_of(e ^ 1), 3);
        assert_eq!(r.cap_of(f), 2);
    }

    #[test]
    fn csr_handles_isolated_nodes() {
        let mut r = Residual::new(5);
        r.add_edge(0, 4, 1, 0);
        r.finalize();
        assert!(r.out(1).is_empty());
        assert!(r.out(2).is_empty());
        assert!(r.out(3).is_empty());
        assert_eq!(r.out(0).len(), 1);
        assert_eq!(r.out(4).len(), 1);
    }
}
