//! Graphviz export of flow networks and solutions — the fastest way to see
//! why an allocation network routed flow the way it did.

use crate::graph::{FlowNetwork, NodeId};
use crate::solution::FlowSolution;
use std::fmt::Write as _;

/// Renders `net` in Graphviz DOT syntax. Pass the solved [`FlowSolution`]
/// to bold the arcs carrying flow and annotate them with `flow/capacity`;
/// pass `None` for the bare network. `labels` names nodes by index (missing
/// entries fall back to `n<i>`).
///
/// # Examples
///
/// ```
/// use lemra_netflow::{min_cost_flow, to_dot, FlowNetwork};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, t) = (net.add_node(), net.add_node());
/// net.add_arc(s, t, 2, 5)?;
/// let sol = min_cost_flow(&net, s, t, 1)?;
/// let dot = to_dot(&net, Some(&sol), &["s", "t"]);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("1/2 @5"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(net: &FlowNetwork, solution: Option<&FlowSolution>, labels: &[&str]) -> String {
    let mut out = String::from("digraph flow {\n  rankdir=LR;\n  node [shape=circle];\n");
    for i in 0..net.node_count() {
        let name = labels.get(i).copied().unwrap_or("");
        if name.is_empty() {
            let _ = writeln!(out, "  n{i};");
        } else {
            let _ = writeln!(out, "  n{i} [label=\"{name}\"];");
        }
    }
    for (id, arc) in net.arcs() {
        let flow = solution.map_or(0, |s| s.flows[id.index()]);
        let style = if flow > 0 {
            " style=bold color=black"
        } else {
            " color=gray60"
        };
        let bound = if arc.lower_bound > 0 {
            format!(" lb={}", arc.lower_bound)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}/{} @{}{}\"{}];",
            node_idx(arc.from),
            node_idx(arc.to),
            flow,
            arc.capacity,
            arc.cost,
            bound,
            style
        );
    }
    out.push_str("}\n");
    out
}

fn node_idx(n: NodeId) -> usize {
    n.index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_cost_flow;

    #[test]
    fn renders_bare_network() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_arc_bounded(a, b, 1, 3, -7).unwrap();
        let dot = to_dot(&net, None, &["src", "dst"]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"src\""));
        assert!(dot.contains("0/3 @-7 lb=1"));
        assert!(dot.contains("gray60"));
    }

    #[test]
    fn bolds_flow_arcs() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, t, 1, 0).unwrap();
        net.add_arc(s, t, 1, 9).unwrap();
        let sol = min_cost_flow(&net, s, t, 1).unwrap();
        let dot = to_dot(&net, Some(&sol), &[]);
        assert!(dot.contains("style=bold"));
        assert!(dot.matches("style=bold").count() == 2); // s->a->t used
    }
}
