//! Batched min-cost flow: solve many independent problems across threads.
//!
//! Each worker thread owns one [`SolverWorkspace`], so a batch of `k`
//! problems performs `O(threads)` workspace allocations instead of `O(k)`,
//! and the independent solves run in parallel. Results come back in input
//! order regardless of scheduling, so batched output is byte-identical to a
//! serial loop.

use crate::config::LemraConfig;
use crate::graph::{FlowNetwork, NodeId};
use crate::solver::Backend;
use crate::workspace::SolverWorkspace;
use crate::{FlowSolution, NetflowError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One problem of a [`solve_batch`] call: solve `net` for exactly `target`
/// units from `s` to `t` (the [`min_cost_flow`](crate::min_cost_flow)
/// contract).
#[derive(Debug, Clone, Copy)]
pub struct BatchProblem<'a> {
    /// The network to solve over.
    pub net: &'a FlowNetwork,
    /// Source node.
    pub s: NodeId,
    /// Sink node.
    pub t: NodeId,
    /// Exact flow value to route.
    pub target: i64,
}

/// Solves every problem of the batch, in parallel, returning results in
/// input order (identical to mapping [`min_cost_flow`](crate::min_cost_flow)
/// over the slice serially).
///
/// Worker threads share nothing but an index counter; each owns a
/// [`SolverWorkspace`] reused across the problems it picks up. Set the
/// `LEMRA_THREADS` environment variable (read once into
/// [`LemraConfig`](crate::LemraConfig)) to bound the worker count (`1`
/// forces serial execution on the calling thread). Equivalent to
/// [`solve_batch_on`] with [`Backend::Ssp`].
///
/// # Examples
///
/// ```
/// use lemra_netflow::{solve_batch, BatchProblem, FlowNetwork};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, t) = (net.add_node(), net.add_node());
/// net.add_arc(s, t, 10, 3)?;
/// let problems: Vec<BatchProblem> = (1..=4)
///     .map(|f| BatchProblem { net: &net, s, t, target: f })
///     .collect();
/// let solutions = solve_batch(&problems);
/// for (f, sol) in (1..=4).zip(&solutions) {
///     assert_eq!(sol.as_ref().expect("feasible").cost, 3 * f);
/// }
/// # Ok(())
/// # }
/// ```
pub fn solve_batch(problems: &[BatchProblem<'_>]) -> Vec<Result<FlowSolution, NetflowError>> {
    solve_batch_on(Backend::Ssp, problems)
}

/// [`solve_batch`] with an explicit [`Backend`] (including
/// [`Backend::Auto`], resolved per problem against its network's shape).
///
/// Output order and per-problem results are identical to mapping
/// [`Backend::solve`] over the slice serially.
pub fn solve_batch_on(
    backend: Backend,
    problems: &[BatchProblem<'_>],
) -> Vec<Result<FlowSolution, NetflowError>> {
    let workers = LemraConfig::get().worker_count(problems.len());
    if workers <= 1 {
        let mut ws = SolverWorkspace::new();
        return problems
            .iter()
            .map(|p| backend.solve_with(p.net, p.s, p.t, p.target, &mut ws))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<FlowSolution, NetflowError>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || {
                let mut ws = SolverWorkspace::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(p) = problems.get(i) else { break };
                    let result = backend.solve_with(p.net, p.s, p.t, p.target, &mut ws);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);

    let mut out: Vec<Option<Result<FlowSolution, NetflowError>>> =
        (0..problems.len()).map(|_| None).collect();
    for (i, result) in rx {
        out[i] = Some(result);
    }
    // Invariant: the workers partition 0..problems.len() exactly — each
    // index is sent on `tx` once, and a panicking worker propagates out of
    // `thread::scope` before this line runs, so every slot is `Some`.
    out.into_iter()
        .map(|r| r.expect("every index solved exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_cost_flow;

    fn chain(n: usize, cap: i64, cost: i64) -> (FlowNetwork, NodeId, NodeId) {
        let mut net = FlowNetwork::new();
        let nodes = net.add_nodes(n);
        for w in nodes.windows(2) {
            net.add_arc(w[0], w[1], cap, cost).unwrap();
        }
        (net, nodes[0], nodes[n - 1])
    }

    #[test]
    fn batch_matches_serial_in_order() {
        let nets: Vec<_> = (2..12).map(|n| chain(n, 4, 1)).collect();
        let problems: Vec<BatchProblem> = nets
            .iter()
            .map(|(net, s, t)| BatchProblem {
                net,
                s: *s,
                t: *t,
                target: 3,
            })
            .collect();
        let batched = solve_batch(&problems);
        for (p, got) in problems.iter().zip(&batched) {
            let serial = min_cost_flow(p.net, p.s, p.t, p.target);
            match (serial, got) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.cost, b.cost);
                    assert_eq!(a.flows, b.flows);
                }
                (Err(a), Err(b)) => assert_eq!(&a, b),
                (a, b) => panic!("disagreement: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn batch_reports_per_problem_errors() {
        let (net, s, t) = chain(3, 2, 1);
        let problems = [
            BatchProblem {
                net: &net,
                s,
                t,
                target: 1,
            },
            BatchProblem {
                net: &net,
                s,
                t,
                target: 99,
            }, // infeasible
            BatchProblem {
                net: &net,
                s,
                t,
                target: 2,
            },
        ];
        let results = solve_batch(&problems);
        assert_eq!(results[0].as_ref().unwrap().cost, 2);
        assert!(matches!(results[1], Err(NetflowError::Infeasible { .. })));
        assert_eq!(results[2].as_ref().unwrap().cost, 4);
    }

    #[test]
    fn empty_batch() {
        assert!(solve_batch(&[]).is_empty());
    }

    #[test]
    fn batch_on_any_backend_matches_serial() {
        let nets: Vec<_> = (2..8).map(|n| chain(n, 4, 1)).collect();
        let problems: Vec<BatchProblem> = nets
            .iter()
            .map(|(net, s, t)| BatchProblem {
                net,
                s: *s,
                t: *t,
                target: 2,
            })
            .collect();
        for backend in Backend::ALL.into_iter().chain([Backend::Auto]) {
            let batched = solve_batch_on(backend, &problems);
            for (p, got) in problems.iter().zip(&batched) {
                let serial = backend.solve(p.net, p.s, p.t, p.target).unwrap();
                let got = got.as_ref().unwrap();
                assert_eq!(serial.cost, got.cost, "{backend}");
                assert_eq!(serial.flows, got.flows, "{backend}");
            }
        }
    }
}
