//! Canonical instance IR: a content-addressed form of a flow network.
//!
//! The `(uid, version)` stamp in [`graph`](crate::graph) answers "is this
//! the same network *object*, unmutated?" — good enough for memoising work
//! inside one solve, useless for recognising that two independently built
//! networks pose the same problem. This module answers the second question:
//! [`canonicalize`] reduces a built instance `(net, s, t, target)` to a
//! canonical arc ordering plus two 128-bit fingerprints,
//!
//! * [`CanonicalInstance::fingerprint`] — the **exact** key: covers node
//!   structure, lower bounds, capacities, costs, endpoints and the flow
//!   target. Two instances with equal fingerprints are the same problem
//!   arc-for-arc (up to arc numbering), so a cached optimal flow can be
//!   replayed through the recorded permutation.
//! * [`CanonicalInstance::class`] — the **structural** key: covers node
//!   structure, lower bounds and endpoints only. Costs and capacities are
//!   deliberately excluded because they are exactly what a voltage/encoding
//!   sweep perturbs; instances in one class are warm-start neighbours, so
//!   retained [`Reoptimizer`](crate::Reoptimizer) state transfers between
//!   them (its own snapshot diff re-verifies topology before trusting it).
//!
//! Canonical node colours come from Weisfeiler–Leman refinement over the
//! arc structure (commutative accumulation, so the result is invariant
//! under arc reordering). WL is not a complete isomorphism test; nodes
//! still sharing a colour when refinement stabilises are individualised by
//! their original index. That trades relabel-invariance for soundness on
//! symmetric instances — a fingerprint match never equates two genuinely
//! different problems, and invariance under *arc* permutation (the property
//! the cache actually leans on: builders vary emission order, not node
//! identity) holds unconditionally.

use crate::graph::{FlowNetwork, NodeId};

/// Identity stamp of a network's contents for a given endpoint pair: the
/// process-unique `(uid, version)` of [`FlowNetwork`] plus `s`/`t`. Two
/// stamps compare equal only if taken from the same network instance, with
/// no mutation in between, for the same endpoints — the validity condition
/// for caching artifacts derived from a scan of the arcs (input-validation
/// verdicts, residual CSR layouts). This is the *identity*-keyed complement
/// of the *content*-keyed [`Fingerprint`]; both caches share this one
/// vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheStamp {
    pub(crate) uid: u64,
    pub(crate) version: u64,
    pub(crate) s: u32,
    pub(crate) t: u32,
}

impl CacheStamp {
    /// Stamp of `net`'s current contents for endpoints `s → t`.
    #[inline]
    pub fn of(net: &FlowNetwork, s: NodeId, t: NodeId) -> Self {
        let (uid, version) = net.cache_stamp();
        Self {
            uid,
            version,
            s: s.index() as u32,
            t: t.index() as u32,
        }
    }

    /// Stamp from raw parts (for call sites that carry indices, not ids).
    #[inline]
    pub(crate) fn from_parts(net: &FlowNetwork, s: usize, t: usize) -> Self {
        let (uid, version) = net.cache_stamp();
        Self {
            uid,
            version,
            s: s as u32,
            t: t as u32,
        }
    }
}

/// A 128-bit content fingerprint (see [`canonicalize`]). Displayed as hex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The canonical form of one built instance: both fingerprints plus the
/// arc permutation that maps canonical positions back to creation order.
#[derive(Debug, Clone)]
pub struct CanonicalInstance {
    /// Exact content key (structure + bounds + capacities + costs + target).
    pub fingerprint: Fingerprint,
    /// Structural class key (structure + lower bounds + endpoints only).
    pub class: Fingerprint,
    /// `perm[k]` = original arc index of the `k`-th canonical arc.
    perm: Vec<u32>,
}

impl CanonicalInstance {
    /// Number of arcs in the canonicalized instance.
    pub fn arc_count(&self) -> usize {
        self.perm.len()
    }

    /// Reorders per-arc values (creation order) into canonical order —
    /// e.g. a solved [`FlowSolution::flows`](crate::FlowSolution::flows)
    /// before caching it under [`Self::fingerprint`].
    ///
    /// # Panics
    ///
    /// If `values` does not have one entry per canonicalized arc.
    pub fn to_canonical_order(&self, values: &[i64]) -> Vec<i64> {
        assert_eq!(values.len(), self.perm.len(), "one value per arc");
        self.perm.iter().map(|&i| values[i as usize]).collect()
    }

    /// Inverse of [`Self::to_canonical_order`]: scatters canonical-order
    /// values back to this instance's creation order (the replay direction
    /// on an exact cache hit).
    ///
    /// # Panics
    ///
    /// If `canonical` does not have one entry per canonicalized arc.
    pub fn from_canonical_order(&self, canonical: &[i64]) -> Vec<i64> {
        assert_eq!(canonical.len(), self.perm.len(), "one value per arc");
        let mut out = vec![0i64; self.perm.len()];
        for (k, &i) in self.perm.iter().enumerate() {
            out[i as usize] = canonical[k];
        }
        out
    }
}

/// splitmix64 finalizer: the bijective avalanche at the heart of every hash
/// in this module (and of the tie-break weights in `solver.rs`).
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Order-dependent 128-bit fold over a word stream: two decorrelated u64
/// lanes, finalized through [`mix`].
#[derive(Clone, Copy)]
struct Fold {
    a: u64,
    b: u64,
}

impl Fold {
    fn new(tag: u64) -> Self {
        Self {
            a: mix(tag ^ 0x9e37_79b9_7f4a_7c15),
            b: mix(tag.wrapping_add(0x6a09_e667_f3bc_c909)),
        }
    }

    #[inline]
    fn push(&mut self, w: u64) {
        self.a = mix(self.a ^ w);
        self.b = mix(self.b.wrapping_add(w).rotate_left(17));
    }

    #[inline]
    fn push_i64(&mut self, w: i64) {
        self.push(w as u64);
    }

    fn finish(self) -> Fingerprint {
        let hi = mix(self.a ^ self.b.rotate_left(32));
        let lo = mix(self.b.wrapping_add(self.a));
        Fingerprint((u128::from(hi) << 64) | u128::from(lo))
    }
}

/// WL refinement rounds before giving up on further splitting. Colour
/// counts increase monotonically, so stabilisation is detected by count;
/// the cap only bounds pathological near-stable chains.
const MAX_ROUNDS: usize = 10;

/// Computes the canonical form of the built instance `(net, s, t, target)`.
///
/// Cost is `O(rounds · E + E log E)` — a handful of refinement sweeps plus
/// one sort of the arc keys. Node colours are derived only from topology,
/// lower bounds and the `s`/`t` distinction, so two sweep points over the
/// same built structure land in the same [`CanonicalInstance::class`] even
/// though their costs (and bypass capacities) differ.
pub fn canonicalize(net: &FlowNetwork, s: NodeId, t: NodeId, target: i64) -> CanonicalInstance {
    let n = net.node_count();
    let arcs = net.arcs_slice();
    let si = s.index();
    let ti = t.index();

    // Seed colours: s, t and everyone else. (s == t is rejected later by
    // input validation; the stamp is still well defined.)
    let mut color: Vec<u64> = (0..n)
        .map(|u| {
            if u == si {
                mix(0x00A1_1CE5)
            } else if u == ti {
                mix(0x00B0_B517)
            } else {
                mix(0x0DD5)
            }
        })
        .collect();

    let mut distinct = count_distinct(&color);
    let mut acc_out = vec![0u64; n];
    let mut acc_in = vec![0u64; n];
    for _ in 0..MAX_ROUNDS {
        if distinct == n {
            break;
        }
        acc_out.iter_mut().for_each(|x| *x = 0);
        acc_in.iter_mut().for_each(|x| *x = 0);
        for arc in arcs {
            let f = arc.from.index();
            let t = arc.to.index();
            // Structural signature of the arc as seen from each endpoint.
            // Only the lower bound participates: costs and capacities are
            // sweep-variant and must not split structural classes.
            let sig = mix(color[f] ^ mix(color[t].wrapping_add(arc.lower_bound as u64)));
            // wrapping_add (not xor) so duplicate arcs don't cancel.
            acc_out[f] = acc_out[f].wrapping_add(sig);
            acc_in[t] = acc_in[t].wrapping_add(mix(sig ^ 0x5EED));
        }
        for u in 0..n {
            color[u] = mix(color[u] ^ mix(acc_out[u] ^ acc_in[u].rotate_left(21)));
        }
        let now = count_distinct(&color);
        if now == distinct {
            break;
        }
        distinct = now;
    }

    if distinct < n {
        // WL stabilised with non-singleton classes (a genuinely symmetric
        // or WL-ambiguous instance). Individualise survivors by original
        // index: sound (never merges distinct problems) and still
        // arc-order invariant, at the price of relabel-invariance for
        // these instances only.
        individualize(&mut color);
    }

    // Canonical arc order: sort by per-arc content hashes instead of the
    // raw 5-word keys — at allocation-network sizes (~10⁵ arcs) moving and
    // comparing 40-byte tuples costs more than everything else in this
    // function combined. `h_class` covers exactly the class-relevant words
    // (endpoint colours + lower bound) and LEADS the key, so arcs group by
    // class content first and cost/capacity deltas can only reorder arcs
    // within one class group — which keeps the class fold's word sequence
    // sweep-invariant. `h_rest` (capacity + cost) completes the content
    // key; the creation index breaks full ties, so duplicate-key groups
    // (parallel arcs identical in every field — interchangeable by
    // definition) replay in creation order, exactly as a stable sort would
    // place them. A hash collision between *different* keys can only
    // reorder the canonical form, never equate two distinct problems: the
    // fingerprints fold the hashes in sorted order, so a reordering
    // disagreement yields differing fingerprints — a missed hit, not a
    // wrong answer.
    let mut keyed: Vec<(u64, u64, u32)> = Vec::with_capacity(arcs.len());
    for (i, a) in arcs.iter().enumerate() {
        let mut hc = mix(color[a.from.index()] ^ 0x0C1A_55E5);
        hc = mix(hc ^ color[a.to.index()]);
        hc = mix(hc ^ a.lower_bound as u64);
        let hr = mix((a.capacity as u64) ^ mix((a.cost as u64) ^ 0x0C05_7CA9));
        keyed.push((hc, hr, i as u32));
    }
    keyed.sort_unstable();

    let mut exact = Fold::new(0xF1F0);
    exact.push(n as u64);
    exact.push_i64(target);
    exact.push(color[si]);
    exact.push(color[ti]);
    let mut class = Fold::new(0xC1A5);
    class.push(n as u64);
    class.push(color[si]);
    class.push(color[ti]);
    let mut order: Vec<u32> = Vec::with_capacity(arcs.len());
    for &(hc, hr, i) in &keyed {
        exact.push(hc);
        exact.push(hr);
        class.push(hc);
        order.push(i);
    }

    CanonicalInstance {
        fingerprint: exact.finish(),
        class: class.finish(),
        perm: order,
    }
}

fn count_distinct(color: &[u64]) -> usize {
    let mut sorted: Vec<u64> = color.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

fn individualize(color: &mut [u64]) {
    let mut sorted: Vec<u64> = color.to_vec();
    sorted.sort_unstable();
    let mut ambiguous: Vec<u64> = Vec::new();
    for w in sorted.windows(2) {
        if w[0] == w[1] && ambiguous.last() != Some(&w[0]) {
            ambiguous.push(w[0]);
        }
    }
    for (u, c) in color.iter_mut().enumerate() {
        if ambiguous.binary_search(c).is_ok() {
            *c = mix(*c ^ mix(u as u64 ^ 0x1DE2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A small sweep-shaped network: source → variables → {mem, reg} → sink.
    fn build(costs: &[i64], caps: &[i64]) -> (FlowNetwork, NodeId, NodeId) {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        let mem = net.add_node();
        let reg = net.add_node();
        for (i, (&c, _)) in costs.iter().zip(caps).enumerate() {
            let v = net.add_node();
            net.add_arc_bounded(s, v, 1, 1, 0).unwrap();
            net.add_arc(v, mem, 1, c).unwrap();
            net.add_arc(v, reg, 1, c / 2 - i as i64).unwrap();
        }
        net.add_arc(mem, t, caps[0].max(1), 1).unwrap();
        net.add_arc(reg, t, caps.iter().sum::<i64>().max(1), 2)
            .unwrap();
        (net, s, t)
    }

    /// Rebuilds `net` with its arcs emitted in `order`.
    fn permuted(net: &FlowNetwork, order: &[usize]) -> FlowNetwork {
        let mut out = FlowNetwork::new();
        out.add_nodes(net.node_count());
        let arcs: Vec<_> = net.arcs().map(|(_, a)| *a).collect();
        for &i in order {
            let a = arcs[i];
            out.add_arc_bounded(a.from, a.to, a.lower_bound, a.capacity, a.cost)
                .unwrap();
        }
        out
    }

    #[test]
    fn identical_builds_share_both_fingerprints() {
        let (na, s, t) = build(&[10, 20, 30], &[1, 1, 1]);
        let (nb, _, _) = build(&[10, 20, 30], &[1, 1, 1]);
        let a = canonicalize(&na, s, t, 3);
        let b = canonicalize(&nb, s, t, 3);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.class, b.class);
    }

    #[test]
    fn cost_shift_changes_fingerprint_but_not_class() {
        let (na, s, t) = build(&[10, 20, 30], &[1, 1, 1]);
        let (nb, _, _) = build(&[11, 21, 31], &[1, 1, 1]);
        let a = canonicalize(&na, s, t, 3);
        let b = canonicalize(&nb, s, t, 3);
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(a.class, b.class, "costs must not split structural classes");
    }

    #[test]
    fn target_changes_fingerprint_but_not_class() {
        let (na, s, t) = build(&[10, 20, 30], &[1, 1, 1]);
        let a = canonicalize(&na, s, t, 3);
        let b = canonicalize(&na, s, t, 2);
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(a.class, b.class, "target deltas are warm-repairable");
    }

    #[test]
    fn lower_bound_change_splits_the_class() {
        let (na, s, t) = build(&[10, 20, 30], &[1, 1, 1]);
        let nb = permuted(&na, &(0..na.arc_count()).collect::<Vec<_>>());
        let arcs: Vec<_> = nb.arcs().map(|(_, a)| *a).collect();
        let mut nc = FlowNetwork::new();
        nc.add_nodes(nb.node_count());
        for (i, a) in arcs.iter().enumerate() {
            let lb = if i == 0 { 0 } else { a.lower_bound };
            nc.add_arc_bounded(a.from, a.to, lb, a.capacity, a.cost)
                .unwrap();
        }
        let a = canonicalize(&na, s, t, 3);
        let b = canonicalize(&nb, s, t, 3);
        let c = canonicalize(&nc, s, t, 3);
        assert_eq!(a.class, b.class);
        assert_ne!(a.class, c.class, "lower bounds are structural");
    }

    #[test]
    fn round_trip_through_canonical_order_is_identity() {
        let (net, s, t) = build(&[10, 20, 30], &[1, 1, 1]);
        let canon = canonicalize(&net, s, t, 3);
        let values: Vec<i64> = (0..net.arc_count() as i64).map(|i| i * 7 - 3).collect();
        let back = canon.from_canonical_order(&canon.to_canonical_order(&values));
        assert_eq!(back, values);
    }

    #[test]
    fn symmetric_instance_is_individualized_not_collapsed() {
        // Two interchangeable variables: WL alone cannot split them, the
        // index individualization must still yield a deterministic stamp.
        let (na, s, t) = build(&[10, 10], &[1, 1]);
        let (nb, _, _) = build(&[10, 10], &[1, 1]);
        assert_eq!(
            canonicalize(&na, s, t, 2).fingerprint,
            canonicalize(&nb, s, t, 2).fingerprint
        );
    }

    #[test]
    fn display_is_32_hex_digits() {
        let (net, s, t) = build(&[10, 20], &[1, 1]);
        let fp = canonicalize(&net, s, t, 2).fingerprint;
        let text = fp.to_string();
        assert_eq!(text.len(), 32);
        assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
    }

    proptest! {
        /// The exact fingerprint (and the class) are invariant under any
        /// permutation of arc emission order, and the permutation journal
        /// maps per-arc values back to each instance's own creation order.
        #[test]
        fn fingerprint_invariant_under_arc_permutation(
            costs in proptest::collection::vec(-50i64..50, 2..8),
            seed in 0u64..u64::MAX,
        ) {
            let caps = vec![1i64; costs.len()];
            let (net, s, t) = build(&costs, &caps);
            let m = net.arc_count();
            // Deterministic shuffle driven by `seed`.
            let mut order: Vec<usize> = (0..m).collect();
            let mut x = seed;
            for i in (1..m).rev() {
                x = mix(x.wrapping_add(i as u64));
                order.swap(i, (x % (i as u64 + 1)) as usize);
            }
            let shuffled = permuted(&net, &order);
            let a = canonicalize(&net, s, t, costs.len() as i64);
            let b = canonicalize(&shuffled, s, t, costs.len() as i64);
            prop_assert_eq!(a.fingerprint, b.fingerprint);
            prop_assert_eq!(a.class, b.class);
            // Per-arc values tagged by original identity survive the
            // canonical round trip on both orderings and agree arc-for-arc.
            let va: Vec<i64> = (0..m as i64).collect();
            let vb: Vec<i64> = order.iter().map(|&i| i as i64).collect();
            prop_assert_eq!(a.to_canonical_order(&va), b.to_canonical_order(&vb));
        }

        /// Perturbing a single cost or a single capacity moves the exact
        /// fingerprint but leaves the structural class alone.
        #[test]
        fn single_perturbation_distinguishes_fingerprint_only(
            costs in proptest::collection::vec(-50i64..50, 2..8),
            which in 0usize..64,
            bump in 1i64..5,
            cap_not_cost in proptest::bool::ANY,
        ) {
            let caps = vec![2i64; costs.len()];
            let (net, s, t) = build(&costs, &caps);
            let arcs: Vec<_> = net.arcs().map(|(_, a)| *a).collect();
            let hit = which % arcs.len();
            let mut nb = FlowNetwork::new();
            nb.add_nodes(net.node_count());
            for (i, a) in arcs.iter().enumerate() {
                let (cap, cost) = if i == hit {
                    if cap_not_cost {
                        (a.capacity + bump, a.cost)
                    } else {
                        (a.capacity, a.cost + bump)
                    }
                } else {
                    (a.capacity, a.cost)
                };
                nb.add_arc_bounded(a.from, a.to, a.lower_bound, cap, cost)
                    .unwrap();
            }
            let a = canonicalize(&net, s, t, costs.len() as i64);
            let b = canonicalize(&nb, s, t, costs.len() as i64);
            prop_assert_ne!(a.fingerprint, b.fingerprint);
            prop_assert_eq!(a.class, b.class);
        }
    }
}
