//! Directed flow networks with integer capacities, arc lower bounds and
//! (possibly negative) integer costs.
//!
//! A [`FlowNetwork`] is an arena of nodes and arcs. Nodes are created with
//! [`FlowNetwork::add_node`] and referenced by [`NodeId`]; arcs are created
//! with [`FlowNetwork::add_arc`] / [`FlowNetwork::add_arc_bounded`] and
//! referenced by [`ArcId`]. The network itself is pure data — solvers such as
//! [`min_cost_flow`](crate::min_cost_flow) borrow it immutably.
//!
//! # Examples
//!
//! ```
//! use lemra_netflow::{FlowNetwork, min_cost_flow};
//!
//! # fn main() -> Result<(), lemra_netflow::NetflowError> {
//! let mut net = FlowNetwork::new();
//! let s = net.add_node();
//! let a = net.add_node();
//! let t = net.add_node();
//! net.add_arc(s, a, 2, 1)?;
//! net.add_arc(a, t, 2, -3)?;
//! let sol = min_cost_flow(&net, s, t, 2)?;
//! assert_eq!(sol.cost, 2 * (1 - 3));
//! # Ok(())
//! # }
//! ```

use crate::NetflowError;

/// Identifier of a node inside one [`FlowNetwork`].
///
/// `NodeId`s are only meaningful for the network that created them; using a
/// `NodeId` from another network is a logic error that the solvers detect as
/// an out-of-range node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Position of the node in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an arc inside one [`FlowNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(pub(crate) u32);

impl ArcId {
    /// Position of the arc in creation order; also the index of the arc's
    /// flow in [`FlowSolution::flows`](crate::FlowSolution::flows).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ArcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A directed arc with integer bounds and cost.
///
/// Flow `x` on the arc must satisfy `lower_bound <= x <= capacity`; each unit
/// of flow contributes `cost` to the objective. Costs may be negative — the
/// allocation networks built by `lemra-core` rely on this (placing a variable
/// in a register *saves* memory energy, eq. (4) of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arc {
    /// Tail node (flow leaves here).
    pub from: NodeId,
    /// Head node (flow arrives here).
    pub to: NodeId,
    /// Minimum flow the arc must carry.
    pub lower_bound: i64,
    /// Maximum flow the arc may carry.
    pub capacity: i64,
    /// Cost per unit of flow; negative values model energy savings.
    pub cost: i64,
}

/// A directed flow network: an arena of nodes and [`Arc`]s.
///
/// See the module documentation for an example.
#[derive(Debug)]
pub struct FlowNetwork {
    node_count: usize,
    arcs: Vec<Arc>,
    /// Process-unique identity of this network instance, paired with
    /// `version` to key per-workspace caches (validated-input scans, rebuilt
    /// residual graphs). A clone gets a fresh `uid`: two networks with equal
    /// contents may diverge through later mutation, so identity never
    /// survives a copy.
    uid: u64,
    /// Bumped by every structural or value mutation; see
    /// [`FlowNetwork::cache_stamp`].
    version: u64,
}

/// Source of [`FlowNetwork::uid`] values.
static NEXT_NETWORK_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn fresh_network_uid() -> u64 {
    NEXT_NETWORK_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl Default for FlowNetwork {
    fn default() -> Self {
        Self {
            node_count: 0,
            arcs: Vec::new(),
            uid: fresh_network_uid(),
            version: 0,
        }
    }
}

impl Clone for FlowNetwork {
    fn clone(&self) -> Self {
        Self {
            node_count: self.node_count,
            arcs: self.arcs.clone(),
            uid: fresh_network_uid(),
            version: 0,
        }
    }
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty network with capacity reserved for `nodes` nodes and
    /// `arcs` arcs.
    pub fn with_capacity(nodes: usize, arcs: usize) -> Self {
        let _ = nodes;
        Self {
            arcs: Vec::with_capacity(arcs),
            ..Self::default()
        }
    }

    /// `(uid, version)` identity of the network's current contents. Two
    /// stamps compare equal only if they were taken from the same network
    /// instance with no mutation in between, which is exactly the validity
    /// condition for caching derived artifacts (input-scan verdicts, residual
    /// CSR layouts) outside the network itself.
    #[inline]
    pub(crate) fn cache_stamp(&self) -> (u64, u64) {
        (self.uid, self.version)
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(u32::try_from(self.node_count).expect("more than u32::MAX nodes"));
        self.node_count += 1;
        self.version += 1;
        id
    }

    /// Adds `n` nodes at once and returns their ids in creation order.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Adds an arc with lower bound 0.
    ///
    /// # Errors
    ///
    /// Returns [`NetflowError::InvalidArc`] if `capacity` is negative or an
    /// endpoint does not belong to this network.
    pub fn add_arc(
        &mut self,
        from: NodeId,
        to: NodeId,
        capacity: i64,
        cost: i64,
    ) -> Result<ArcId, NetflowError> {
        self.add_arc_bounded(from, to, 0, capacity, cost)
    }

    /// Adds an arc whose flow is constrained to `lower_bound ..= capacity`.
    ///
    /// # Errors
    ///
    /// Returns [`NetflowError::InvalidArc`] if `lower_bound` is negative,
    /// `lower_bound > capacity`, or an endpoint does not belong to this
    /// network.
    pub fn add_arc_bounded(
        &mut self,
        from: NodeId,
        to: NodeId,
        lower_bound: i64,
        capacity: i64,
        cost: i64,
    ) -> Result<ArcId, NetflowError> {
        if from.index() >= self.node_count || to.index() >= self.node_count {
            return Err(NetflowError::InvalidArc {
                reason: format!(
                    "endpoint out of range ({from} or {to} >= {} nodes)",
                    self.node_count
                ),
            });
        }
        if lower_bound < 0 {
            return Err(NetflowError::InvalidArc {
                reason: format!("negative lower bound {lower_bound}"),
            });
        }
        if capacity < lower_bound {
            return Err(NetflowError::InvalidArc {
                reason: format!("capacity {capacity} below lower bound {lower_bound}"),
            });
        }
        let id = ArcId(u32::try_from(self.arcs.len()).expect("more than u32::MAX arcs"));
        self.arcs.push(Arc {
            from,
            to,
            lower_bound,
            capacity,
            cost,
        });
        self.version += 1;
        Ok(id)
    }

    /// Overwrites the cost of `arc`, keeping everything else.
    ///
    /// Parameter sweeps mutate one network in place between solves so a
    /// [`Reoptimizer`](crate::Reoptimizer) can treat successive points as
    /// arc deltas instead of fresh graphs.
    ///
    /// # Panics
    ///
    /// Panics if `arc` does not belong to this network.
    pub fn set_arc_cost(&mut self, arc: ArcId, cost: i64) {
        self.arcs[arc.index()].cost = cost;
        self.version += 1;
    }

    /// Rewrites every arc's cost in place through `f`, called in creation
    /// order with the arc's id and current fields.
    ///
    /// Equivalent to a [`FlowNetwork::set_arc_cost`] loop but with a single
    /// version bump and no intermediate `(ArcId, cost)` buffer — the bulk
    /// re-pricing passes (tie-break encoding, sweep refreshes) run over
    /// every arc of networks with hundreds of thousands of arcs, where the
    /// per-call bookkeeping and the staging allocation are measurable.
    pub fn map_costs(&mut self, mut f: impl FnMut(ArcId, &Arc) -> i64) {
        for (i, arc) in self.arcs.iter_mut().enumerate() {
            arc.cost = f(ArcId(i as u32), arc);
        }
        self.version += 1;
    }

    /// Overwrites the capacity of `arc`, keeping everything else.
    ///
    /// # Errors
    ///
    /// Returns [`NetflowError::InvalidArc`] if `capacity` is below the arc's
    /// lower bound.
    ///
    /// # Panics
    ///
    /// Panics if `arc` does not belong to this network.
    pub fn set_arc_capacity(&mut self, arc: ArcId, capacity: i64) -> Result<(), NetflowError> {
        let a = &mut self.arcs[arc.index()];
        if capacity < a.lower_bound {
            return Err(NetflowError::InvalidArc {
                reason: format!(
                    "capacity {capacity} below lower bound {} on {arc}",
                    a.lower_bound
                ),
            });
        }
        a.capacity = capacity;
        self.version += 1;
        Ok(())
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Bytes of heap the arc arena currently holds (capacity, not length —
    /// a builder that over-grows the arena is charged for the slack). Nodes
    /// are a bare count and occupy no heap. Feeds the `--timings` per-stage
    /// peak-memory counter.
    pub fn heap_bytes(&self) -> usize {
        self.arcs.capacity() * std::mem::size_of::<Arc>()
    }

    /// Number of arcs in the network.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The arc with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn arc(&self, id: ArcId) -> &Arc {
        &self.arcs[id.index()]
    }

    /// Iterates over `(id, arc)` pairs in creation order.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcId, &Arc)> + '_ {
        self.arcs
            .iter()
            .enumerate()
            .map(|(i, a)| (ArcId(i as u32), a))
    }

    /// The arc arena in creation order, for the solvers' residual-graph
    /// construction loops.
    pub(crate) fn arcs_slice(&self) -> &[Arc] {
        &self.arcs
    }

    /// True if any arc has a non-zero lower bound.
    pub fn has_lower_bounds(&self) -> bool {
        self.arcs.iter().any(|a| a.lower_bound > 0)
    }

    /// Returns whether `node` belongs to this network.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count
    }

    /// Validates this network together with a solve request, rejecting
    /// malformed inputs with a typed error before any solver touches them.
    ///
    /// Every solver entry point runs this check first, so a malformed
    /// instance fails identically across backends. The pass rejects:
    ///
    /// * out-of-range / equal endpoints and a negative `target`
    ///   ([`NetflowError::InvalidArc`]);
    /// * arcs with out-of-range endpoints, negative lower bounds or
    ///   `lower_bound > capacity` (invariants the arc builders enforce,
    ///   re-checked in case the network was assembled another way) and
    ///   self-loop arcs, which no solver can route useful flow over
    ///   ([`NetflowError::InvalidArc`]);
    /// * a `target` exceeding the total capacity leaving `s` or entering
    ///   `t` — a necessary feasibility condition checked without running a
    ///   max-flow ([`NetflowError::Infeasible`]);
    /// * cost/capacity magnitudes whose worst-case accumulated cost
    ///   (`Σ |cost|·max(capacity, 1)`, the bound on any distance, potential
    ///   or objective the solvers form) does not fit the solvers' `i64`
    ///   arithmetic with its `i64::MAX / 4` sentinel headroom
    ///   ([`NetflowError::Overflow`]); backends with an `i128` wide path
    ///   (cycle cancelling) select it themselves below this threshold.
    ///
    /// # Errors
    ///
    /// As listed above; `Ok(())` means the instance is safe to hand to any
    /// backend.
    pub fn validate_input(&self, s: NodeId, t: NodeId, target: i64) -> Result<(), NetflowError> {
        self.validate_request(s, t, target)?;
        let achievable = self.scan_arcs(s, t)?;
        if target > achievable {
            return Err(NetflowError::Infeasible {
                required: target,
                achieved: achievable,
            });
        }
        Ok(())
    }

    /// The O(1) head of [`FlowNetwork::validate_input`]: endpoint and target
    /// checks that depend on the request alone, re-run on every solve even
    /// when the arc scan below is cached.
    pub(crate) fn validate_request(
        &self,
        s: NodeId,
        t: NodeId,
        target: i64,
    ) -> Result<(), NetflowError> {
        if !self.contains_node(s) || !self.contains_node(t) {
            return Err(NetflowError::InvalidArc {
                reason: format!("source {s} or sink {t} out of range"),
            });
        }
        if s == t {
            return Err(NetflowError::InvalidArc {
                reason: "source and sink must differ".to_owned(),
            });
        }
        if target < 0 {
            return Err(NetflowError::InvalidArc {
                reason: format!("negative flow target {target}"),
            });
        }
        Ok(())
    }

    /// The O(arcs) tail of [`FlowNetwork::validate_input`]: per-arc
    /// invariants and the overflow audit. Returns the capacity bound
    /// `min(out of s, into t)` so the caller can compare it against any
    /// target. Depends only on the arc list and `(s, t)`, which makes the
    /// verdict cacheable against [`FlowNetwork::cache_stamp`] — sweeps
    /// re-solving one network pay for the scan once.
    pub(crate) fn scan_arcs(&self, s: NodeId, t: NodeId) -> Result<i64, NetflowError> {
        let mut out_of_s = 0i64;
        let mut into_t = 0i64;
        let mut lower_sum = 0i64;
        let mut cost_mass = 0u128;
        for (id, a) in self.arcs() {
            if a.from.index() >= self.node_count || a.to.index() >= self.node_count {
                return Err(NetflowError::InvalidArc {
                    reason: format!("{id} endpoint out of range ({} -> {})", a.from, a.to),
                });
            }
            if a.from == a.to {
                return Err(NetflowError::InvalidArc {
                    reason: format!("{id} is a self-loop on {}", a.from),
                });
            }
            if a.lower_bound < 0 || a.capacity < a.lower_bound {
                return Err(NetflowError::InvalidArc {
                    reason: format!(
                        "{id} bounds invalid (lower {} > capacity {})",
                        a.lower_bound, a.capacity
                    ),
                });
            }
            lower_sum =
                lower_sum
                    .checked_add(a.lower_bound)
                    .ok_or_else(|| NetflowError::Overflow {
                        reason: format!("sum of arc lower bounds overflows i64 at {id}"),
                    })?;
            if a.from == s {
                out_of_s = out_of_s.saturating_add(a.capacity);
            }
            if a.to == t {
                into_t = into_t.saturating_add(a.capacity);
            }
            cost_mass = cost_mass.saturating_add(
                (a.cost.unsigned_abs() as u128) * (a.capacity.unsigned_abs().max(1) as u128),
            );
        }
        // The SSP family treats i64::MAX / 4 as infinity and forms sums of
        // distances, potentials and arc costs below it; keep the worst-case
        // accumulated cost strictly inside that headroom.
        if cost_mass >= (i64::MAX / 4) as u128 {
            return Err(NetflowError::Overflow {
                reason: format!(
                    "worst-case accumulated cost {cost_mass} (sum of |cost| x \
                     capacity over {} arcs) exceeds the i64 solver range",
                    self.arcs.len()
                ),
            });
        }
        Ok(out_of_s.min(into_t))
    }

    /// Sum of all positive arc costs times capacities — a safe upper bound on
    /// the magnitude of any feasible flow cost, used for overflow auditing.
    pub fn cost_bound(&self) -> i64 {
        self.arcs
            .iter()
            .map(|a| {
                a.cost
                    .unsigned_abs()
                    .saturating_mul(a.capacity.unsigned_abs())
            })
            .fold(0u64, u64::saturating_add)
            .min(i64::MAX as u64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids_are_sequential() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(net.node_count(), 2);
    }

    #[test]
    fn add_nodes_bulk() {
        let mut net = FlowNetwork::new();
        let ids = net.add_nodes(5);
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[4].index(), 4);
        assert_eq!(net.node_count(), 5);
    }

    #[test]
    fn arc_fields_roundtrip() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        let id = net.add_arc_bounded(a, b, 1, 3, -7).unwrap();
        let arc = net.arc(id);
        assert_eq!(arc.from, a);
        assert_eq!(arc.to, b);
        assert_eq!(arc.lower_bound, 1);
        assert_eq!(arc.capacity, 3);
        assert_eq!(arc.cost, -7);
        assert!(net.has_lower_bounds());
    }

    #[test]
    fn rejects_bad_bounds() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        assert!(net.add_arc_bounded(a, b, -1, 3, 0).is_err());
        assert!(net.add_arc_bounded(a, b, 4, 3, 0).is_err());
        assert!(net.add_arc(a, b, -1, 0).is_err());
    }

    #[test]
    fn rejects_foreign_nodes() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let mut other = FlowNetwork::new();
        let x = other.add_node();
        let y = other.add_node();
        assert!(net.contains_node(a));
        assert!(!net.contains_node(y));
        assert!(net.add_arc(x, y, 1, 0).is_err());
    }

    #[test]
    fn arcs_iterator_order() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        let i0 = net.add_arc(a, b, 1, 5).unwrap();
        let i1 = net.add_arc(b, a, 2, 6).unwrap();
        let collected: Vec<_> = net.arcs().map(|(id, arc)| (id, arc.cost)).collect();
        assert_eq!(collected, vec![(i0, 5), (i1, 6)]);
    }

    #[test]
    fn validate_input_accepts_well_formed_requests() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 5, 3).unwrap();
        assert!(net.validate_input(s, t, 4).is_ok());
        assert!(net.validate_input(s, t, 0).is_ok());
    }

    #[test]
    fn validate_input_rejects_bad_endpoints_and_target() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 5, 3).unwrap();
        let mut other = FlowNetwork::new();
        other.add_nodes(9);
        let foreign = NodeId(7);
        assert!(matches!(
            net.validate_input(s, foreign, 1),
            Err(NetflowError::InvalidArc { .. })
        ));
        assert!(matches!(
            net.validate_input(s, s, 1),
            Err(NetflowError::InvalidArc { .. })
        ));
        assert!(matches!(
            net.validate_input(s, t, -1),
            Err(NetflowError::InvalidArc { .. })
        ));
    }

    #[test]
    fn validate_input_flags_capacity_shortfall_early() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 5, 3).unwrap();
        let err = net.validate_input(s, t, 6).unwrap_err();
        assert!(matches!(
            err,
            NetflowError::Infeasible {
                required: 6,
                achieved: 5
            }
        ));
    }

    #[test]
    fn validate_input_rejects_self_loops() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 5, 0).unwrap();
        net.add_arc(a, a, 1, -2).unwrap();
        let err = net.validate_input(s, t, 1).unwrap_err();
        assert!(matches!(err, NetflowError::InvalidArc { .. }));
        assert!(err.to_string().contains("self-loop"));
    }

    #[test]
    fn validate_input_rejects_overflowing_cost_mass() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, i64::MAX / 2, i64::MAX / 2).unwrap();
        let err = net.validate_input(s, t, 1).unwrap_err();
        assert!(matches!(err, NetflowError::Overflow { .. }));
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    fn map_costs_rewrites_every_arc_with_one_version_bump() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_arc(a, b, 2, 5).unwrap();
        net.add_arc(b, a, 3, -1).unwrap();
        let before = net.cache_stamp();
        net.map_costs(|id, arc| arc.cost * 10 + id.index() as i64);
        let costs: Vec<i64> = net.arcs().map(|(_, a)| a.cost).collect();
        assert_eq!(costs, vec![50, -9]);
        let after = net.cache_stamp();
        assert_eq!(after.0, before.0);
        assert_eq!(after.1, before.1 + 1, "exactly one version bump");
    }

    #[test]
    fn display_ids() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        let e = net.add_arc(a, b, 1, 0).unwrap();
        assert_eq!(a.to_string(), "n0");
        assert_eq!(e.to_string(), "a0");
    }
}
