//! Directed flow networks with integer capacities, arc lower bounds and
//! (possibly negative) integer costs.
//!
//! A [`FlowNetwork`] is an arena of nodes and arcs. Nodes are created with
//! [`FlowNetwork::add_node`] and referenced by [`NodeId`]; arcs are created
//! with [`FlowNetwork::add_arc`] / [`FlowNetwork::add_arc_bounded`] and
//! referenced by [`ArcId`]. The network itself is pure data — solvers such as
//! [`min_cost_flow`](crate::min_cost_flow) borrow it immutably.
//!
//! # Examples
//!
//! ```
//! use lemra_netflow::{FlowNetwork, min_cost_flow};
//!
//! # fn main() -> Result<(), lemra_netflow::NetflowError> {
//! let mut net = FlowNetwork::new();
//! let s = net.add_node();
//! let a = net.add_node();
//! let t = net.add_node();
//! net.add_arc(s, a, 2, 1)?;
//! net.add_arc(a, t, 2, -3)?;
//! let sol = min_cost_flow(&net, s, t, 2)?;
//! assert_eq!(sol.cost, 2 * (1 - 3));
//! # Ok(())
//! # }
//! ```

use crate::NetflowError;

/// Identifier of a node inside one [`FlowNetwork`].
///
/// `NodeId`s are only meaningful for the network that created them; using a
/// `NodeId` from another network is a logic error that the solvers detect as
/// an out-of-range node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Position of the node in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an arc inside one [`FlowNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(pub(crate) u32);

impl ArcId {
    /// Position of the arc in creation order; also the index of the arc's
    /// flow in [`FlowSolution::flows`](crate::FlowSolution::flows).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ArcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A directed arc with integer bounds and cost.
///
/// Flow `x` on the arc must satisfy `lower_bound <= x <= capacity`; each unit
/// of flow contributes `cost` to the objective. Costs may be negative — the
/// allocation networks built by `lemra-core` rely on this (placing a variable
/// in a register *saves* memory energy, eq. (4) of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arc {
    /// Tail node (flow leaves here).
    pub from: NodeId,
    /// Head node (flow arrives here).
    pub to: NodeId,
    /// Minimum flow the arc must carry.
    pub lower_bound: i64,
    /// Maximum flow the arc may carry.
    pub capacity: i64,
    /// Cost per unit of flow; negative values model energy savings.
    pub cost: i64,
}

/// A directed flow network: an arena of nodes and [`Arc`]s.
///
/// See the module documentation for an example.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    node_count: usize,
    arcs: Vec<Arc>,
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty network with capacity reserved for `nodes` nodes and
    /// `arcs` arcs.
    pub fn with_capacity(nodes: usize, arcs: usize) -> Self {
        let _ = nodes;
        Self {
            node_count: 0,
            arcs: Vec::with_capacity(arcs),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(u32::try_from(self.node_count).expect("more than u32::MAX nodes"));
        self.node_count += 1;
        id
    }

    /// Adds `n` nodes at once and returns their ids in creation order.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Adds an arc with lower bound 0.
    ///
    /// # Errors
    ///
    /// Returns [`NetflowError::InvalidArc`] if `capacity` is negative or an
    /// endpoint does not belong to this network.
    pub fn add_arc(
        &mut self,
        from: NodeId,
        to: NodeId,
        capacity: i64,
        cost: i64,
    ) -> Result<ArcId, NetflowError> {
        self.add_arc_bounded(from, to, 0, capacity, cost)
    }

    /// Adds an arc whose flow is constrained to `lower_bound ..= capacity`.
    ///
    /// # Errors
    ///
    /// Returns [`NetflowError::InvalidArc`] if `lower_bound` is negative,
    /// `lower_bound > capacity`, or an endpoint does not belong to this
    /// network.
    pub fn add_arc_bounded(
        &mut self,
        from: NodeId,
        to: NodeId,
        lower_bound: i64,
        capacity: i64,
        cost: i64,
    ) -> Result<ArcId, NetflowError> {
        if from.index() >= self.node_count || to.index() >= self.node_count {
            return Err(NetflowError::InvalidArc {
                reason: format!(
                    "endpoint out of range ({from} or {to} >= {} nodes)",
                    self.node_count
                ),
            });
        }
        if lower_bound < 0 {
            return Err(NetflowError::InvalidArc {
                reason: format!("negative lower bound {lower_bound}"),
            });
        }
        if capacity < lower_bound {
            return Err(NetflowError::InvalidArc {
                reason: format!("capacity {capacity} below lower bound {lower_bound}"),
            });
        }
        let id = ArcId(u32::try_from(self.arcs.len()).expect("more than u32::MAX arcs"));
        self.arcs.push(Arc {
            from,
            to,
            lower_bound,
            capacity,
            cost,
        });
        Ok(id)
    }

    /// Overwrites the cost of `arc`, keeping everything else.
    ///
    /// Parameter sweeps mutate one network in place between solves so a
    /// [`Reoptimizer`](crate::Reoptimizer) can treat successive points as
    /// arc deltas instead of fresh graphs.
    ///
    /// # Panics
    ///
    /// Panics if `arc` does not belong to this network.
    pub fn set_arc_cost(&mut self, arc: ArcId, cost: i64) {
        self.arcs[arc.index()].cost = cost;
    }

    /// Overwrites the capacity of `arc`, keeping everything else.
    ///
    /// # Errors
    ///
    /// Returns [`NetflowError::InvalidArc`] if `capacity` is below the arc's
    /// lower bound.
    ///
    /// # Panics
    ///
    /// Panics if `arc` does not belong to this network.
    pub fn set_arc_capacity(&mut self, arc: ArcId, capacity: i64) -> Result<(), NetflowError> {
        let a = &mut self.arcs[arc.index()];
        if capacity < a.lower_bound {
            return Err(NetflowError::InvalidArc {
                reason: format!(
                    "capacity {capacity} below lower bound {} on {arc}",
                    a.lower_bound
                ),
            });
        }
        a.capacity = capacity;
        Ok(())
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of arcs in the network.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The arc with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn arc(&self, id: ArcId) -> &Arc {
        &self.arcs[id.index()]
    }

    /// Iterates over `(id, arc)` pairs in creation order.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcId, &Arc)> + '_ {
        self.arcs
            .iter()
            .enumerate()
            .map(|(i, a)| (ArcId(i as u32), a))
    }

    /// True if any arc has a non-zero lower bound.
    pub fn has_lower_bounds(&self) -> bool {
        self.arcs.iter().any(|a| a.lower_bound > 0)
    }

    /// Returns whether `node` belongs to this network.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count
    }

    /// Sum of all positive arc costs times capacities — a safe upper bound on
    /// the magnitude of any feasible flow cost, used for overflow auditing.
    pub fn cost_bound(&self) -> i64 {
        self.arcs
            .iter()
            .map(|a| {
                a.cost
                    .unsigned_abs()
                    .saturating_mul(a.capacity.unsigned_abs())
            })
            .fold(0u64, u64::saturating_add)
            .min(i64::MAX as u64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids_are_sequential() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(net.node_count(), 2);
    }

    #[test]
    fn add_nodes_bulk() {
        let mut net = FlowNetwork::new();
        let ids = net.add_nodes(5);
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[4].index(), 4);
        assert_eq!(net.node_count(), 5);
    }

    #[test]
    fn arc_fields_roundtrip() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        let id = net.add_arc_bounded(a, b, 1, 3, -7).unwrap();
        let arc = net.arc(id);
        assert_eq!(arc.from, a);
        assert_eq!(arc.to, b);
        assert_eq!(arc.lower_bound, 1);
        assert_eq!(arc.capacity, 3);
        assert_eq!(arc.cost, -7);
        assert!(net.has_lower_bounds());
    }

    #[test]
    fn rejects_bad_bounds() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        assert!(net.add_arc_bounded(a, b, -1, 3, 0).is_err());
        assert!(net.add_arc_bounded(a, b, 4, 3, 0).is_err());
        assert!(net.add_arc(a, b, -1, 0).is_err());
    }

    #[test]
    fn rejects_foreign_nodes() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let mut other = FlowNetwork::new();
        let x = other.add_node();
        let y = other.add_node();
        assert!(net.contains_node(a));
        assert!(!net.contains_node(y));
        assert!(net.add_arc(x, y, 1, 0).is_err());
    }

    #[test]
    fn arcs_iterator_order() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        let i0 = net.add_arc(a, b, 1, 5).unwrap();
        let i1 = net.add_arc(b, a, 2, 6).unwrap();
        let collected: Vec<_> = net.arcs().map(|(id, arc)| (id, arc.cost)).collect();
        assert_eq!(collected, vec![(i0, 5), (i1, 6)]);
    }

    #[test]
    fn display_ids() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        let e = net.add_arc(a, b, 1, 0).unwrap();
        assert_eq!(a.to_string(), "n0");
        assert_eq!(e.to_string(), "a0");
    }
}
