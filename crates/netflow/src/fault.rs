//! Deterministic fault injection for exercising the resilience layer
//! (`fault-inject` cargo feature only).
//!
//! A [`FaultPlan`] names which solve should fail and how. Plans come from
//! two places:
//!
//! * the [`FAULT_ENV`] (`LEMRA_FAULT`) environment variable — e.g.
//!   `LEMRA_FAULT=panic@5` makes the 6th [`ResilientSolver`] solve panic in
//!   its primary attempt; `budget@3,overflow@7:ssp` combines faults and can
//!   pin one to a named backend;
//! * programmatic [`FaultPlan::install`] for tests.
//!
//! Faults fire **once**: after a fault trips at its solve index, the
//! fallback chain retries the same index unharmed, which is exactly the
//! degradation path the plan exists to test. An unqualified fault targets
//! only the first attempt (`attempt == 0`) of its solve; a
//! backend-qualified fault (`kind@index:backend`) targets whichever attempt
//! runs that backend.
//!
//! Injection happens inside [`ResilientSolver`]'s per-attempt
//! `catch_unwind` region, so an injected panic exercises the genuine
//! containment path, not a shortcut.
//!
//! The backend qualifier `region<k>` (e.g. `panic@0:region<k>`) targets
//! settle region `k` of the decomposed parallel solver instead of a whole
//! backend attempt: the panic fires inside region `k`'s worker on the
//! first parallel settle that reaches it (the solve index is ignored),
//! travels to the coordinating thread, and surfaces as an ordinary
//! `SolverPanicked` incident for the resilience chain to absorb. Only
//! `panic` faults accept a region qualifier.
//!
//! # Request-scoped faults (the allocation server)
//!
//! `lemra-server` workers wrap each request in a [`RequestScope`] guard, so
//! a fault can target one request instead of a process-wide solve index:
//!
//! * `panic@solve:req7` — panic the first solve attempt that runs anywhere
//!   inside request 7, whatever the process-wide solve count is by then.
//!   The literal index `solve` is a wildcard (any solve index) and is only
//!   accepted together with a qualifier, so a bare wildcard can never fire
//!   on an arbitrary first solve. `panic@2:req7` further restricts the
//!   wildcard to solve index 2.
//! * `conn@5` — a connection fault: [`maybe_inject_conn`] fires for
//!   request id 5, and the server kills that connection mid-response. The
//!   index position names the *request id*, not a solve; `conn` faults
//!   never reach the solver injection points.
//!
//! [`ResilientSolver`]: crate::ResilientSolver

use crate::NetflowError;
use std::cell::Cell;
use std::sync::{Mutex, OnceLock};

/// Environment variable holding the fault specification
/// (`kind@target[:qualifier]`, comma-separated; kinds: `panic`, `budget`,
/// `overflow`, `conn`; target: solve index, request id for `conn`, or the
/// wildcard `solve`; qualifier: backend name, `region<k>`, `cache` or
/// `req<id>`).
pub const FAULT_ENV: &str = "LEMRA_FAULT";

/// The kind of failure an injected fault simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the solve (contained by the resilience boundary).
    Panic,
    /// A [`NetflowError::BudgetExceeded`] as if a budget ran out.
    Budget,
    /// A [`NetflowError::Overflow`] as if the overflow pre-check tripped.
    Overflow,
    /// Kill a server connection mid-response ([`maybe_inject_conn`]); the
    /// target index is the request id. Never reaches the solver.
    Conn,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "budget" => Some(FaultKind::Budget),
            "overflow" => Some(FaultKind::Overflow),
            "conn" => Some(FaultKind::Conn),
            _ => None,
        }
    }
}

/// One planned fault: fail solve number `at` (0-based, counted per
/// [`ResilientSolver`](crate::ResilientSolver)) with `kind`. `at == None`
/// is the `solve` wildcard — any solve index — and always travels with a
/// qualifier. For [`FaultKind::Conn`], `at` is the request id instead.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fault {
    kind: FaultKind,
    at: Option<u64>,
    /// Restrict to attempts running this backend (or the `region<k>` /
    /// `cache` / `req<id>` conventions); `None` hits the first attempt of
    /// the solve regardless of backend.
    backend: Option<String>,
    fired: bool,
}

impl Fault {
    /// The request id a `req<id>` qualifier pins this fault to.
    fn request_qualifier(&self) -> Option<u64> {
        self.backend
            .as_deref()
            .and_then(|b| b.strip_prefix("req"))
            .and_then(|id| id.parse().ok())
    }
}

thread_local! {
    /// The request id the current thread is solving for, set by server
    /// workers via [`RequestScope`]; `None` outside any request.
    static REQUEST_SCOPE: Cell<Option<u64>> = const { Cell::new(None) };
}

/// RAII guard scoping fault injection on the current thread to one server
/// request: while alive, `req<id>`-qualified faults compare against
/// `request`. Nested scopes restore the outer request on drop.
///
/// # Examples
///
/// ```
/// use lemra_netflow::RequestScope;
///
/// let _scope = RequestScope::enter(7);
/// // ... solves on this thread now match `panic@solve:req7` ...
/// ```
#[derive(Debug)]
pub struct RequestScope {
    prev: Option<u64>,
}

impl RequestScope {
    /// Marks the current thread as solving for `request` until the guard
    /// drops.
    pub fn enter(request: u64) -> Self {
        let prev = REQUEST_SCOPE.with(|c| c.replace(Some(request)));
        RequestScope { prev }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        let prev = self.prev;
        REQUEST_SCOPE.with(|c| c.set(prev));
    }
}

fn current_request() -> Option<u64> {
    REQUEST_SCOPE.with(Cell::get)
}

/// A deterministic schedule of injected solver faults.
///
/// # Examples
///
/// ```
/// use lemra_netflow::FaultPlan;
///
/// let plan: FaultPlan = "panic@5,budget@3:ssp".parse().unwrap();
/// plan.install();
/// // ... run the sweep under test ...
/// FaultPlan::clear();
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

static ACTIVE: Mutex<Option<FaultPlan>> = Mutex::new(None);
static ENV_LOADED: OnceLock<()> = OnceLock::new();

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault of `kind` at solve index `at`, hitting the solve's
    /// first attempt.
    #[must_use]
    pub fn fail_at(mut self, kind: FaultKind, at: u64) -> Self {
        self.faults.push(Fault {
            kind,
            at: Some(at),
            backend: None,
            fired: false,
        });
        self
    }

    /// Adds a fault of `kind` at solve index `at`, hitting whichever
    /// attempt runs the backend named `backend`.
    #[must_use]
    pub fn fail_backend_at(mut self, kind: FaultKind, at: u64, backend: &str) -> Self {
        self.faults.push(Fault {
            kind,
            at: Some(at),
            backend: Some(backend.to_owned()),
            fired: false,
        });
        self
    }

    /// Adds a request-scoped fault of `kind`: the first solve attempt that
    /// runs inside a [`RequestScope`] for `request` fails, at any solve
    /// index (the `kind@solve:req<id>` spelling).
    #[must_use]
    pub fn fail_request(mut self, kind: FaultKind, request: u64) -> Self {
        self.faults.push(Fault {
            kind,
            at: None,
            backend: Some(format!("req{request}")),
            fired: false,
        });
        self
    }

    /// Adds a connection fault: [`maybe_inject_conn`] fires for `request`
    /// and the server kills that connection mid-response (the
    /// `conn@<request>` spelling).
    #[must_use]
    pub fn kill_conn(mut self, request: u64) -> Self {
        self.faults.push(Fault {
            kind: FaultKind::Conn,
            at: Some(request),
            backend: None,
            fired: false,
        });
        self
    }

    /// Makes this plan the process-wide active plan, replacing any
    /// previous one (including one loaded from [`FAULT_ENV`]).
    pub fn install(&self) {
        *ACTIVE.lock().expect("fault plan lock poisoned") = Some(self.clone());
    }

    /// Clears the active plan; subsequent solves run fault-free.
    pub fn clear() {
        *ACTIVE.lock().expect("fault plan lock poisoned") = None;
    }

    /// Parses and installs the plan in [`FAULT_ENV`], if set. Called once
    /// per process by the resilience layer; explicit [`Self::install`]
    /// calls override it.
    pub(crate) fn ensure_env_plan() {
        ENV_LOADED.get_or_init(|| {
            if let Ok(spec) = std::env::var(FAULT_ENV) {
                match spec.parse::<FaultPlan>() {
                    Ok(plan) => plan.install(),
                    Err(e) => eprintln!("ignoring invalid {FAULT_ENV}: {e}"),
                }
            }
        });
    }
}

/// Loads the [`FAULT_ENV`] plan if none was installed yet. The server
/// calls this on startup so `conn@…` faults work even before the first
/// solve touches the resilience layer (which otherwise triggers the load).
pub fn ensure_env_plan() {
    FaultPlan::ensure_env_plan();
}

/// Faults from the active plan that have fired, excluding
/// [`FaultKind::Conn`] (connection kills produce no solver incident). The
/// admin endpoint reports this so CI can assert *zero non-injected
/// incidents*: total incidents must equal this count exactly.
pub fn injected_fault_count() -> u64 {
    let guard = ACTIVE.lock().expect("fault plan lock poisoned");
    guard.as_ref().map_or(0, |plan| {
        plan.faults
            .iter()
            .filter(|f| f.fired && f.kind != FaultKind::Conn)
            .count() as u64
    })
}

/// Fired [`FaultKind::Conn`] faults in the active plan.
pub fn injected_conn_count() -> u64 {
    let guard = ACTIVE.lock().expect("fault plan lock poisoned");
    guard.as_ref().map_or(0, |plan| {
        plan.faults
            .iter()
            .filter(|f| f.fired && f.kind == FaultKind::Conn)
            .count() as u64
    })
}

impl std::str::FromStr for FaultPlan {
    type Err = NetflowError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let invalid = || NetflowError::InvalidArc {
                reason: format!(
                    "invalid fault spec `{part}` (expected kind@target[:qualifier], \
                     kinds: panic, budget, overflow, conn; target: solve index, \
                     request id for conn, or the wildcard `solve`)"
                ),
            };
            let (kind, rest) = part.split_once('@').ok_or_else(invalid)?;
            let kind = FaultKind::parse(kind.trim()).ok_or_else(invalid)?;
            let (at, backend) = match rest.split_once(':') {
                Some((at, backend)) => (at, Some(backend.trim().to_owned())),
                None => (rest, None),
            };
            let at = match at.trim() {
                "solve" => None,
                n => Some(n.parse::<u64>().map_err(|_| invalid())?),
            };
            if at.is_none() && backend.is_none() {
                return Err(NetflowError::InvalidArc {
                    reason: format!(
                        "invalid fault spec `{part}`: the wildcard index `solve` \
                         needs a qualifier (e.g. panic@solve:req7)"
                    ),
                });
            }
            if let Some(b) = backend.as_deref() {
                if let Some(id) = b.strip_prefix("req") {
                    if id.parse::<u64>().is_err() {
                        return Err(NetflowError::InvalidArc {
                            reason: format!(
                                "invalid fault spec `{part}`: `req` qualifier needs \
                                 a numeric request id (e.g. req7)"
                            ),
                        });
                    }
                }
            }
            if kind == FaultKind::Conn && (at.is_none() || backend.is_some()) {
                return Err(NetflowError::InvalidArc {
                    reason: format!(
                        "invalid fault spec `{part}`: conn faults name a request id \
                         and take no qualifier (e.g. conn@5)"
                    ),
                });
            }
            plan.faults.push(Fault {
                kind,
                at,
                backend,
                fired: false,
            });
        }
        Ok(plan)
    }
}

/// Consults the active plan for a `panic` fault pinned to settle region
/// `region` of the decomposed parallel solver, via the backend qualifier
/// convention `region<k>` (e.g. `LEMRA_FAULT=panic@0:region0`). Region
/// faults fire on the first parallel settle that reaches that region's
/// worker — the solve index in the spec is ignored, because region workers
/// have no view of the resilience layer's solve counter. Fires once, like
/// every fault.
pub(crate) fn maybe_inject_region(region: usize) -> bool {
    let mut guard = ACTIVE.lock().expect("fault plan lock poisoned");
    let Some(plan) = guard.as_mut() else {
        return false;
    };
    let name = format!("region{region}");
    for fault in &mut plan.faults {
        if fault.fired || fault.kind != FaultKind::Panic {
            continue;
        }
        if fault.backend.as_deref() == Some(name.as_str()) {
            fault.fired = true;
            return true;
        }
    }
    false
}

/// Injection point inside a cache-hit solve, selected by the backend-name
/// convention `cache` (e.g. `LEMRA_FAULT=panic@0:cache`). The allocation
/// cache consults it at both of its hit paths — the exact-entry replay and
/// the adopted-reoptimizer warm solve — and the fault fires on whichever
/// hit comes first after installation. The solve index in the spec is
/// ignored, because replays never reach the resilience layer's solve
/// counter. Fires once, like every fault; the caller is expected to
/// contain the panic and fall back to a cold solve.
pub fn maybe_inject_cache() -> bool {
    let mut guard = ACTIVE.lock().expect("fault plan lock poisoned");
    let Some(plan) = guard.as_mut() else {
        return false;
    };
    for fault in &mut plan.faults {
        if fault.fired || fault.kind != FaultKind::Panic {
            continue;
        }
        if fault.backend.as_deref() == Some("cache") {
            fault.fired = true;
            return true;
        }
    }
    false
}

/// Consults the active plan for a connection fault targeting `request`
/// (`conn@<request>`). The server calls this just before writing a
/// response; a hit means "kill this connection mid-response instead".
/// Fires once, like every fault.
pub fn maybe_inject_conn(request: u64) -> bool {
    let mut guard = ACTIVE.lock().expect("fault plan lock poisoned");
    let Some(plan) = guard.as_mut() else {
        return false;
    };
    for fault in &mut plan.faults {
        if fault.fired || fault.kind != FaultKind::Conn {
            continue;
        }
        if fault.at == Some(request) {
            fault.fired = true;
            return true;
        }
    }
    false
}

/// Consults the active plan for a fault matching this attempt, marking a
/// match as fired so the fallback retry of the same solve runs clean.
///
/// A `req<id>`-qualified fault matches the first attempt of a solve whose
/// thread is inside [`RequestScope`] `id` (any solve index when the spec
/// used the `solve` wildcard); other qualified faults match by backend
/// name, and unqualified faults match the solve's first attempt.
pub(crate) fn maybe_inject(solve_index: u64, attempt: usize, backend: &str) -> Option<FaultKind> {
    let mut guard = ACTIVE.lock().expect("fault plan lock poisoned");
    let plan = guard.as_mut()?;
    for fault in &mut plan.faults {
        if fault.fired || fault.kind == FaultKind::Conn {
            continue;
        }
        if fault.at.is_some_and(|at| at != solve_index) {
            continue;
        }
        let hit = if let Some(request) = fault.request_qualifier() {
            attempt == 0 && current_request() == Some(request)
        } else {
            match &fault.backend {
                Some(b) => b == backend,
                None => attempt == 0,
            }
        };
        if hit {
            fault.fired = true;
            return Some(fault.kind);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The active plan is process-global; tests that install one must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parses_single_and_combined_specs() {
        let plan: FaultPlan = "panic@5".parse().unwrap();
        assert_eq!(plan.faults.len(), 1);
        assert_eq!(plan.faults[0].kind, FaultKind::Panic);
        assert_eq!(plan.faults[0].at, Some(5));
        assert_eq!(plan.faults[0].backend, None);

        let plan: FaultPlan = " budget@3 , overflow@7:ssp ".parse().unwrap();
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.faults[1].kind, FaultKind::Overflow);
        assert_eq!(plan.faults[1].backend.as_deref(), Some("ssp"));
    }

    #[test]
    fn parses_request_scoped_and_conn_specs() {
        let plan: FaultPlan = "panic@solve:req7,conn@5".parse().unwrap();
        assert_eq!(plan.faults[0].at, None);
        assert_eq!(plan.faults[0].backend.as_deref(), Some("req7"));
        assert_eq!(plan.faults[0].request_qualifier(), Some(7));
        assert_eq!(plan.faults[1].kind, FaultKind::Conn);
        assert_eq!(plan.faults[1].at, Some(5));

        let plan: FaultPlan = "budget@2:req9".parse().unwrap();
        assert_eq!(plan.faults[0].at, Some(2));
        assert_eq!(plan.faults[0].request_qualifier(), Some(9));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!("panic".parse::<FaultPlan>().is_err());
        assert!("explode@3".parse::<FaultPlan>().is_err());
        assert!("panic@x".parse::<FaultPlan>().is_err());
        // A bare wildcard would fire on any first solve: refuse it.
        assert!("panic@solve".parse::<FaultPlan>().is_err());
        // `req` qualifiers must carry a numeric id.
        assert!("panic@solve:reqx".parse::<FaultPlan>().is_err());
        // Conn faults name a request id, no wildcard, no qualifier.
        assert!("conn@solve:req3".parse::<FaultPlan>().is_err());
        assert!("conn@3:ssp".parse::<FaultPlan>().is_err());
        assert!("".parse::<FaultPlan>().unwrap().faults.is_empty());
    }

    #[test]
    fn faults_fire_once_and_respect_backend_qualifiers() {
        let _serial = serial();
        let plan = FaultPlan::new()
            .fail_at(FaultKind::Budget, 2)
            .fail_backend_at(FaultKind::Panic, 4, "simplex");
        plan.install();
        // Wrong index: nothing.
        assert_eq!(maybe_inject(1, 0, "ssp"), None);
        // Unqualified fault hits only attempt 0.
        assert_eq!(maybe_inject(2, 1, "ssp"), None);
        assert_eq!(maybe_inject(2, 0, "ssp"), Some(FaultKind::Budget));
        // Fired: the fallback retry of the same index runs clean.
        assert_eq!(maybe_inject(2, 0, "ssp"), None);
        // Qualified fault waits for its backend, at any attempt.
        assert_eq!(maybe_inject(4, 0, "ssp"), None);
        assert_eq!(maybe_inject(4, 1, "simplex"), Some(FaultKind::Panic));
        assert_eq!(maybe_inject(4, 2, "simplex"), None);
        FaultPlan::clear();
        assert_eq!(maybe_inject(2, 0, "ssp"), None);
    }

    #[test]
    fn request_scoped_faults_match_only_inside_their_scope() {
        let _serial = serial();
        FaultPlan::new().fail_request(FaultKind::Panic, 7).install();
        // Outside any request scope: nothing, at any solve index.
        assert_eq!(maybe_inject(0, 0, "ssp"), None);
        {
            let _scope = RequestScope::enter(6);
            assert_eq!(maybe_inject(1, 0, "ssp"), None);
        }
        {
            let _scope = RequestScope::enter(7);
            // Wildcard index: any solve, but only attempt 0.
            assert_eq!(maybe_inject(9, 1, "ssp"), None);
            assert_eq!(maybe_inject(9, 0, "ssp"), Some(FaultKind::Panic));
            // Fired once; the retry runs clean inside the same scope.
            assert_eq!(maybe_inject(10, 0, "ssp"), None);
        }
        assert_eq!(injected_fault_count(), 1);
        FaultPlan::clear();
    }

    #[test]
    fn request_scopes_nest_and_restore() {
        let _serial = serial();
        FaultPlan::new()
            .fail_request(FaultKind::Budget, 3)
            .install();
        let outer = RequestScope::enter(1);
        {
            let _inner = RequestScope::enter(3);
            assert_eq!(maybe_inject(0, 0, "ssp"), Some(FaultKind::Budget));
        }
        // Back in request 1: a second request-3 fault would not match here.
        FaultPlan::new()
            .fail_request(FaultKind::Budget, 3)
            .install();
        assert_eq!(maybe_inject(0, 0, "ssp"), None);
        drop(outer);
        FaultPlan::clear();
    }

    #[test]
    fn conn_faults_fire_once_for_their_request_only() {
        let _serial = serial();
        FaultPlan::new().kill_conn(5).install();
        assert!(!maybe_inject_conn(4));
        // Conn faults never reach the solver injection point.
        assert_eq!(maybe_inject(5, 0, "ssp"), None);
        assert!(maybe_inject_conn(5));
        assert!(!maybe_inject_conn(5));
        assert_eq!(injected_conn_count(), 1);
        assert_eq!(injected_fault_count(), 0);
        FaultPlan::clear();
    }

    #[test]
    fn cache_faults_match_the_cache_qualifier_and_fire_once() {
        let _serial = serial();
        let plan: FaultPlan = "panic@0:cache".parse().unwrap();
        plan.install();
        assert!(maybe_inject_cache());
        assert!(!maybe_inject_cache());
        // Index-targeted and backend-targeted faults never hit the replay.
        let plan: FaultPlan = "panic@0".parse().unwrap();
        plan.install();
        assert!(!maybe_inject_cache());
        FaultPlan::clear();
    }

    #[test]
    fn region_faults_match_the_region_qualifier_and_fire_once() {
        let _serial = serial();
        let plan: FaultPlan = "panic@0:region1".parse().unwrap();
        plan.install();
        assert!(!maybe_inject_region(0));
        assert!(maybe_inject_region(1));
        assert!(!maybe_inject_region(1));
        // Only panic faults can target a region worker.
        FaultPlan::new()
            .fail_backend_at(FaultKind::Budget, 0, "region0")
            .install();
        assert!(!maybe_inject_region(0));
        FaultPlan::clear();
    }
}
