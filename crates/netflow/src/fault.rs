//! Deterministic fault injection for exercising the resilience layer
//! (`fault-inject` cargo feature only).
//!
//! A [`FaultPlan`] names which solve should fail and how. Plans come from
//! two places:
//!
//! * the [`FAULT_ENV`] (`LEMRA_FAULT`) environment variable — e.g.
//!   `LEMRA_FAULT=panic@5` makes the 6th [`ResilientSolver`] solve panic in
//!   its primary attempt; `budget@3,overflow@7:ssp` combines faults and can
//!   pin one to a named backend;
//! * programmatic [`FaultPlan::install`] for tests.
//!
//! Faults fire **once**: after a fault trips at its solve index, the
//! fallback chain retries the same index unharmed, which is exactly the
//! degradation path the plan exists to test. An unqualified fault targets
//! only the first attempt (`attempt == 0`) of its solve; a
//! backend-qualified fault (`kind@index:backend`) targets whichever attempt
//! runs that backend.
//!
//! Injection happens inside [`ResilientSolver`]'s per-attempt
//! `catch_unwind` region, so an injected panic exercises the genuine
//! containment path, not a shortcut.
//!
//! The backend qualifier `region<k>` (e.g. `panic@0:region<k>`) targets
//! settle region `k` of the decomposed parallel solver instead of a whole
//! backend attempt: the panic fires inside region `k`'s worker on the
//! first parallel settle that reaches it (the solve index is ignored),
//! travels to the coordinating thread, and surfaces as an ordinary
//! `SolverPanicked` incident for the resilience chain to absorb. Only
//! `panic` faults accept a region qualifier.
//!
//! [`ResilientSolver`]: crate::ResilientSolver

use crate::NetflowError;
use std::sync::{Mutex, OnceLock};

/// Environment variable holding the fault specification
/// (`kind@solve_index[:backend]`, comma-separated; kinds: `panic`,
/// `budget`, `overflow`).
pub const FAULT_ENV: &str = "LEMRA_FAULT";

/// The kind of failure an injected fault simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the solve (contained by the resilience boundary).
    Panic,
    /// A [`NetflowError::BudgetExceeded`] as if a budget ran out.
    Budget,
    /// A [`NetflowError::Overflow`] as if the overflow pre-check tripped.
    Overflow,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "budget" => Some(FaultKind::Budget),
            "overflow" => Some(FaultKind::Overflow),
            _ => None,
        }
    }
}

/// One planned fault: fail solve number `at` (0-based, counted per
/// [`ResilientSolver`](crate::ResilientSolver)) with `kind`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fault {
    kind: FaultKind,
    at: u64,
    /// Restrict to attempts running this backend; `None` hits the first
    /// attempt of the solve regardless of backend.
    backend: Option<String>,
    fired: bool,
}

/// A deterministic schedule of injected solver faults.
///
/// # Examples
///
/// ```
/// use lemra_netflow::FaultPlan;
///
/// let plan: FaultPlan = "panic@5,budget@3:ssp".parse().unwrap();
/// plan.install();
/// // ... run the sweep under test ...
/// FaultPlan::clear();
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

static ACTIVE: Mutex<Option<FaultPlan>> = Mutex::new(None);
static ENV_LOADED: OnceLock<()> = OnceLock::new();

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault of `kind` at solve index `at`, hitting the solve's
    /// first attempt.
    #[must_use]
    pub fn fail_at(mut self, kind: FaultKind, at: u64) -> Self {
        self.faults.push(Fault {
            kind,
            at,
            backend: None,
            fired: false,
        });
        self
    }

    /// Adds a fault of `kind` at solve index `at`, hitting whichever
    /// attempt runs the backend named `backend`.
    #[must_use]
    pub fn fail_backend_at(mut self, kind: FaultKind, at: u64, backend: &str) -> Self {
        self.faults.push(Fault {
            kind,
            at,
            backend: Some(backend.to_owned()),
            fired: false,
        });
        self
    }

    /// Makes this plan the process-wide active plan, replacing any
    /// previous one (including one loaded from [`FAULT_ENV`]).
    pub fn install(&self) {
        *ACTIVE.lock().expect("fault plan lock poisoned") = Some(self.clone());
    }

    /// Clears the active plan; subsequent solves run fault-free.
    pub fn clear() {
        *ACTIVE.lock().expect("fault plan lock poisoned") = None;
    }

    /// Parses and installs the plan in [`FAULT_ENV`], if set. Called once
    /// per process by the resilience layer; explicit [`Self::install`]
    /// calls override it.
    pub(crate) fn ensure_env_plan() {
        ENV_LOADED.get_or_init(|| {
            if let Ok(spec) = std::env::var(FAULT_ENV) {
                match spec.parse::<FaultPlan>() {
                    Ok(plan) => plan.install(),
                    Err(e) => eprintln!("ignoring invalid {FAULT_ENV}: {e}"),
                }
            }
        });
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = NetflowError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let invalid = || NetflowError::InvalidArc {
                reason: format!(
                    "invalid fault spec `{part}` (expected kind@solve_index[:backend], \
                     kinds: panic, budget, overflow)"
                ),
            };
            let (kind, rest) = part.split_once('@').ok_or_else(invalid)?;
            let kind = FaultKind::parse(kind.trim()).ok_or_else(invalid)?;
            let (at, backend) = match rest.split_once(':') {
                Some((at, backend)) => (at, Some(backend.trim().to_owned())),
                None => (rest, None),
            };
            let at: u64 = at.trim().parse().map_err(|_| invalid())?;
            plan.faults.push(Fault {
                kind,
                at,
                backend,
                fired: false,
            });
        }
        Ok(plan)
    }
}

/// Consults the active plan for a `panic` fault pinned to settle region
/// `region` of the decomposed parallel solver, via the backend qualifier
/// convention `region<k>` (e.g. `LEMRA_FAULT=panic@0:region0`). Region
/// faults fire on the first parallel settle that reaches that region's
/// worker — the solve index in the spec is ignored, because region workers
/// have no view of the resilience layer's solve counter. Fires once, like
/// every fault.
pub(crate) fn maybe_inject_region(region: usize) -> bool {
    let mut guard = ACTIVE.lock().expect("fault plan lock poisoned");
    let Some(plan) = guard.as_mut() else {
        return false;
    };
    let name = format!("region{region}");
    for fault in &mut plan.faults {
        if fault.fired || fault.kind != FaultKind::Panic {
            continue;
        }
        if fault.backend.as_deref() == Some(name.as_str()) {
            fault.fired = true;
            return true;
        }
    }
    false
}

/// Injection point inside a cache-hit solve, selected by the backend-name
/// convention `cache` (e.g. `LEMRA_FAULT=panic@0:cache`). The allocation
/// cache consults it at both of its hit paths — the exact-entry replay and
/// the adopted-reoptimizer warm solve — and the fault fires on whichever
/// hit comes first after installation. The solve index in the spec is
/// ignored, because replays never reach the resilience layer's solve
/// counter. Fires once, like every fault; the caller is expected to
/// contain the panic and fall back to a cold solve.
pub fn maybe_inject_cache() -> bool {
    let mut guard = ACTIVE.lock().expect("fault plan lock poisoned");
    let Some(plan) = guard.as_mut() else {
        return false;
    };
    for fault in &mut plan.faults {
        if fault.fired || fault.kind != FaultKind::Panic {
            continue;
        }
        if fault.backend.as_deref() == Some("cache") {
            fault.fired = true;
            return true;
        }
    }
    false
}

/// Consults the active plan for a fault matching this attempt, marking a
/// match as fired so the fallback retry of the same solve runs clean.
pub(crate) fn maybe_inject(solve_index: u64, attempt: usize, backend: &str) -> Option<FaultKind> {
    let mut guard = ACTIVE.lock().expect("fault plan lock poisoned");
    let plan = guard.as_mut()?;
    for fault in &mut plan.faults {
        if fault.fired || fault.at != solve_index {
            continue;
        }
        let hit = match &fault.backend {
            Some(b) => b == backend,
            None => attempt == 0,
        };
        if hit {
            fault.fired = true;
            return Some(fault.kind);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_and_combined_specs() {
        let plan: FaultPlan = "panic@5".parse().unwrap();
        assert_eq!(plan.faults.len(), 1);
        assert_eq!(plan.faults[0].kind, FaultKind::Panic);
        assert_eq!(plan.faults[0].at, 5);
        assert_eq!(plan.faults[0].backend, None);

        let plan: FaultPlan = " budget@3 , overflow@7:ssp ".parse().unwrap();
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.faults[1].kind, FaultKind::Overflow);
        assert_eq!(plan.faults[1].backend.as_deref(), Some("ssp"));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!("panic".parse::<FaultPlan>().is_err());
        assert!("explode@3".parse::<FaultPlan>().is_err());
        assert!("panic@x".parse::<FaultPlan>().is_err());
        assert!("".parse::<FaultPlan>().unwrap().faults.is_empty());
    }

    #[test]
    fn faults_fire_once_and_respect_backend_qualifiers() {
        let plan = FaultPlan::new()
            .fail_at(FaultKind::Budget, 2)
            .fail_backend_at(FaultKind::Panic, 4, "simplex");
        plan.install();
        // Wrong index: nothing.
        assert_eq!(maybe_inject(1, 0, "ssp"), None);
        // Unqualified fault hits only attempt 0.
        assert_eq!(maybe_inject(2, 1, "ssp"), None);
        assert_eq!(maybe_inject(2, 0, "ssp"), Some(FaultKind::Budget));
        // Fired: the fallback retry of the same index runs clean.
        assert_eq!(maybe_inject(2, 0, "ssp"), None);
        // Qualified fault waits for its backend, at any attempt.
        assert_eq!(maybe_inject(4, 0, "ssp"), None);
        assert_eq!(maybe_inject(4, 1, "simplex"), Some(FaultKind::Panic));
        assert_eq!(maybe_inject(4, 2, "simplex"), None);
        FaultPlan::clear();
        assert_eq!(maybe_inject(2, 0, "ssp"), None);
    }

    #[test]
    fn cache_faults_match_the_cache_qualifier_and_fire_once() {
        let plan: FaultPlan = "panic@0:cache".parse().unwrap();
        plan.install();
        assert!(maybe_inject_cache());
        assert!(!maybe_inject_cache());
        // Index-targeted and backend-targeted faults never hit the replay.
        let plan: FaultPlan = "panic@0".parse().unwrap();
        plan.install();
        assert!(!maybe_inject_cache());
        FaultPlan::clear();
    }

    #[test]
    fn region_faults_match_the_region_qualifier_and_fire_once() {
        let plan: FaultPlan = "panic@0:region1".parse().unwrap();
        plan.install();
        assert!(!maybe_inject_region(0));
        assert!(maybe_inject_region(1));
        assert!(!maybe_inject_region(1));
        // Only panic faults can target a region worker.
        FaultPlan::new()
            .fail_backend_at(FaultKind::Budget, 0, "region0")
            .install();
        assert!(!maybe_inject_region(0));
        FaultPlan::clear();
    }
}
