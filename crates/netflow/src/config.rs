//! Process-wide runtime configuration, read once.
//!
//! The knobs that used to be scattered env reads — `LEMRA_THREADS` in the
//! batch solver *and again* in the bench drivers, `LEMRA_COLD` per
//! `SweepAllocator`, the backend choice nowhere at all — live in one
//! [`LemraConfig`], parsed from the environment exactly once per process
//! (or installed explicitly by a binary's flag parser before first use).
//! Every consumer reads the same snapshot, so a sweep driver and the batch
//! solver can never disagree about the thread count mid-run.
//!
//! Parsing is strict: a malformed variable is an error carrying the list of
//! accepted values, never a silent fallback (a mistyped
//! `LEMRA_BACKEND=simplx` used to run `Ssp` without a word).

use crate::solver::Backend;
use crate::NetflowError;
use std::sync::OnceLock;

/// Environment variable selecting the min-cost-flow [`Backend`]
/// (`ssp`, `scaling`, `cycle`, `simplex`, `cost_scaling`, `auto`;
/// default `ssp`).
pub const BACKEND_ENV: &str = "LEMRA_BACKEND";

/// Environment variable overriding the worker-thread count (`1` forces
/// serial execution; useful for debugging and timing comparisons).
pub const THREADS_ENV: &str = "LEMRA_THREADS";

/// Environment variable: set `LEMRA_COLD=1` to make sweep drivers
/// cold-solve every point (escape hatch for debugging and for timing
/// comparisons against the warm path).
pub const COLD_ENV: &str = "LEMRA_COLD";

/// Environment variable overriding the network-simplex entering-arc block
/// size (positive integer; unset picks `max(⌈√arcs⌉, 10)` per solve).
/// Block size 1 degenerates to a first-eligible rule, useful for pivot
/// sequence comparisons.
pub const SIMPLEX_BLOCK_ENV: &str = "LEMRA_SIMPLEX_BLOCK";

/// Environment variable controlling when [`Backend::Auto`] engages the
/// decomposed parallel solver (`auto` — size threshold, the default;
/// `1`/`force`/`on` — always; `0`/`off` — never).
pub const PAR_SOLVE_ENV: &str = "LEMRA_PAR_SOLVE";

/// Environment variable selecting the cross-request allocation cache mode
/// (`off` — default, no cache; `exact` — replay byte-identical solutions on
/// exact fingerprint hits; `warm` — additionally adopt retained reoptimizer
/// state across requests within a structural class).
pub const CACHE_ENV: &str = "LEMRA_CACHE";

/// Environment variable capping the allocation cache's entry count per
/// table (positive integer; default 128). Above the cap the entry with the
/// fewest recorded accesses is evicted, oldest first on ties.
pub const CACHE_CAP_ENV: &str = "LEMRA_CACHE_CAP";

/// Cross-request allocation cache mode, parsed from [`CACHE_ENV`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum CacheMode {
    /// No cross-request caching (the default; byte-identical to the
    /// pre-cache pipeline by construction).
    #[default]
    Off,
    /// Exact-fingerprint hits replay the cached solution; misses solve
    /// cold and populate the cache.
    Exact,
    /// [`CacheMode::Exact`] plus warm-start adoption: retained reoptimizer
    /// state is checked out per structural class, so sweep-style cost
    /// deltas repair instead of re-solving.
    Warm,
}

impl std::str::FromStr for CacheMode {
    type Err = NetflowError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(CacheMode::Off),
            "exact" => Ok(CacheMode::Exact),
            "warm" => Ok(CacheMode::Warm),
            other => Err(NetflowError::InvalidArc {
                reason: format!(
                    "{CACHE_ENV}=`{other}` is not a cache mode \
                     (expected off, exact or warm)"
                ),
            }),
        }
    }
}

/// When [`Backend::Auto`] hands a solve to the decomposed parallel path
/// (`par_ssp`). Parsed from [`PAR_SOLVE_ENV`]; a concrete backend choice is
/// never overridden by this knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ParSolve {
    /// Engage above the arc-count threshold pinned in the selection table.
    #[default]
    Auto,
    /// Engage on every `Auto` solve, regardless of size.
    Force,
    /// Never engage; `Auto` selects among the serial backends only.
    Off,
}

impl std::str::FromStr for ParSolve {
    type Err = NetflowError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(ParSolve::Auto),
            "1" | "force" | "on" => Ok(ParSolve::Force),
            "0" | "off" => Ok(ParSolve::Off),
            other => Err(NetflowError::InvalidArc {
                reason: format!(
                    "{PAR_SOLVE_ENV}=`{other}` is not a parallel-solve mode \
                     (expected auto, force/1/on or off/0)"
                ),
            }),
        }
    }
}

/// The process-wide configuration snapshot.
///
/// Obtain it with [`LemraConfig::get`]; binaries with their own flags build
/// one ([`LemraConfig::from_env`] then field overrides) and
/// [`install`](LemraConfig::install) it before any library call.
///
/// # Examples
///
/// ```
/// use lemra_netflow::LemraConfig;
///
/// let cfg = LemraConfig::get();
/// assert!(cfg.threads.map_or(true, |n| n > 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LemraConfig {
    /// Min-cost-flow algorithm the pipeline solve stages use.
    pub backend: Backend,
    /// Worker-thread cap for batched solves and parallel sweeps; `None`
    /// means one per item up to the machine's parallelism.
    pub threads: Option<usize>,
    /// Force sweep drivers to cold-solve every point (no warm-start reuse).
    pub cold: bool,
    /// Collect and report per-stage timings and solver counters.
    pub timings: bool,
    /// Whether the `validate` cargo feature (in-solve invariant auditing)
    /// is compiled in — informational, for reports.
    pub validate: bool,
    /// Entering-arc block size for the network-simplex backend; `None`
    /// lets each solve pick `max(⌈√arcs⌉, 10)`.
    pub simplex_block: Option<usize>,
    /// When [`Backend::Auto`] engages the decomposed parallel solver.
    pub par_solve: ParSolve,
    /// Cross-request allocation cache mode (default off).
    pub cache: CacheMode,
    /// Allocation cache capacity, entries per table (default 128).
    pub cache_cap: usize,
}

impl Default for LemraConfig {
    fn default() -> Self {
        Self {
            backend: Backend::Ssp,
            threads: None,
            cold: false,
            timings: false,
            validate: cfg!(feature = "validate"),
            simplex_block: None,
            par_solve: ParSolve::Auto,
            cache: CacheMode::Off,
            cache_cap: 128,
        }
    }
}

static CONFIG: OnceLock<LemraConfig> = OnceLock::new();

impl LemraConfig {
    /// Builds a configuration from the environment ([`BACKEND_ENV`],
    /// [`THREADS_ENV`], [`COLD_ENV`], [`SIMPLEX_BLOCK_ENV`]); unset
    /// variables fall back to the defaults. Timings are flag-only (no env
    /// variable), so they default to off.
    ///
    /// # Errors
    ///
    /// [`NetflowError::InvalidArc`] naming the offending variable and the
    /// accepted values when one is set but malformed — a typo'd
    /// `LEMRA_BACKEND` must fail loudly, not silently run a different
    /// solver than the one the measurement was labelled with.
    pub fn from_env() -> Result<Self, NetflowError> {
        Self::from_vars(
            std::env::var(BACKEND_ENV).ok().as_deref(),
            std::env::var(THREADS_ENV).ok().as_deref(),
            std::env::var(COLD_ENV).ok().as_deref(),
            std::env::var(SIMPLEX_BLOCK_ENV).ok().as_deref(),
            std::env::var(PAR_SOLVE_ENV).ok().as_deref(),
            std::env::var(CACHE_ENV).ok().as_deref(),
            std::env::var(CACHE_CAP_ENV).ok().as_deref(),
        )
    }

    /// [`from_env`](Self::from_env) over explicit values (`None` = unset),
    /// so parsing is testable without racy process-environment mutation.
    ///
    /// # Errors
    ///
    /// Same as [`from_env`](Self::from_env).
    pub fn from_vars(
        backend: Option<&str>,
        threads: Option<&str>,
        cold: Option<&str>,
        simplex_block: Option<&str>,
        par_solve: Option<&str>,
        cache: Option<&str>,
        cache_cap: Option<&str>,
    ) -> Result<Self, NetflowError> {
        let backend = backend.map_or(Ok(Backend::default()), str::parse)?;
        let threads = threads
            .map(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| NetflowError::InvalidArc {
                        reason: format!("{THREADS_ENV}=`{v}` is not a positive thread count"),
                    })
            })
            .transpose()?;
        let cold = cold.is_some_and(|v| !v.is_empty() && v != "0");
        let simplex_block = simplex_block
            .map(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| NetflowError::InvalidArc {
                        reason: format!("{SIMPLEX_BLOCK_ENV}=`{v}` is not a positive block size"),
                    })
            })
            .transpose()?;
        let par_solve = par_solve.map_or(Ok(ParSolve::default()), str::parse)?;
        let cache = cache.map_or(Ok(CacheMode::default()), str::parse)?;
        let cache_cap = cache_cap
            .map(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| NetflowError::InvalidArc {
                        reason: format!("{CACHE_CAP_ENV}=`{v}` is not a positive entry count"),
                    })
            })
            .transpose()?;
        Ok(Self {
            backend,
            threads,
            cold,
            simplex_block,
            par_solve,
            cache,
            cache_cap: cache_cap.unwrap_or(Self::default().cache_cap),
            ..Self::default()
        })
    }

    /// The process-wide snapshot, initialised from the environment on first
    /// call (unless a binary [`install`](Self::install)ed one earlier).
    ///
    /// # Panics
    ///
    /// On a malformed environment variable (see
    /// [`from_env`](Self::from_env)) — library code has no channel to
    /// surface the error, and proceeding with a silently-substituted
    /// default would falsify any measurement keyed on the variable.
    /// Binaries that want a graceful message call `from_env` themselves and
    /// install the result.
    pub fn get() -> &'static LemraConfig {
        CONFIG.get_or_init(|| match Self::from_env() {
            Ok(cfg) => cfg,
            Err(e) => panic!("invalid lemra environment: {e}"),
        })
    }

    /// Installs `self` as the process-wide snapshot. Must run before the
    /// first [`get`](Self::get) (i.e. before any solver/pipeline call);
    /// returns whether it won the slot. Binaries call this right after flag
    /// parsing; libraries never call it.
    pub fn install(self) -> bool {
        CONFIG.set(self).is_ok()
    }

    /// Effective worker count for `len` independent items: one per item up
    /// to the machine's parallelism, capped by [`Self::threads`].
    pub fn worker_count(&self, len: usize) -> usize {
        let hw = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        hw.min(len).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ssp_warm_untimed() {
        let cfg = LemraConfig::default();
        assert_eq!(cfg.backend, Backend::Ssp);
        assert!(!cfg.cold);
        assert!(!cfg.timings);
        assert_eq!(cfg.threads, None);
        assert_eq!(cfg.simplex_block, None);
    }

    #[test]
    fn worker_count_honours_cap_and_len() {
        let cfg = LemraConfig {
            threads: Some(4),
            ..LemraConfig::default()
        };
        assert_eq!(cfg.worker_count(100), 4);
        assert_eq!(cfg.worker_count(2), 2);
        assert_eq!(cfg.worker_count(0), 1);
        let serial = LemraConfig {
            threads: Some(1),
            ..LemraConfig::default()
        };
        assert_eq!(serial.worker_count(100), 1);
    }

    #[test]
    fn get_returns_a_stable_snapshot() {
        assert_eq!(LemraConfig::get(), LemraConfig::get());
    }

    #[test]
    fn from_vars_parses_each_knob() {
        let cfg = LemraConfig::from_vars(
            Some("simplex"),
            Some("3"),
            Some("1"),
            Some("8"),
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(cfg.backend, Backend::Simplex);
        assert_eq!(cfg.threads, Some(3));
        assert!(cfg.cold);
        assert_eq!(cfg.simplex_block, Some(8));
        let unset = LemraConfig::from_vars(None, None, None, None, None, None, None).unwrap();
        assert_eq!(unset, LemraConfig::default());
        let off = LemraConfig::from_vars(None, None, Some("0"), None, None, None, None).unwrap();
        assert!(!off.cold);
    }

    #[test]
    fn unknown_backend_is_an_error_listing_valid_names() {
        let err =
            LemraConfig::from_vars(Some("simplx"), None, None, None, None, None, None).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("simplx"), "names the offender: {msg}");
        for name in [
            "ssp",
            "scaling",
            "cycle",
            "simplex",
            "cost_scaling",
            "par_ssp",
            "auto",
        ] {
            assert!(msg.contains(name), "lists `{name}`: {msg}");
        }
    }

    #[test]
    fn par_solve_parses_all_spellings() {
        assert_eq!("auto".parse::<ParSolve>().unwrap(), ParSolve::Auto);
        for force in ["1", "force", "on"] {
            assert_eq!(force.parse::<ParSolve>().unwrap(), ParSolve::Force);
        }
        for off in ["0", "off"] {
            assert_eq!(off.parse::<ParSolve>().unwrap(), ParSolve::Off);
        }
        assert!("yes".parse::<ParSolve>().is_err());
        let cfg =
            LemraConfig::from_vars(None, None, None, None, Some("force"), None, None).unwrap();
        assert_eq!(cfg.par_solve, ParSolve::Force);
        assert!(LemraConfig::from_vars(None, None, None, None, Some("maybe"), None, None).is_err());
    }

    #[test]
    fn cache_mode_parses_strictly_and_rejects_typos() {
        assert_eq!("off".parse::<CacheMode>().unwrap(), CacheMode::Off);
        assert_eq!("exact".parse::<CacheMode>().unwrap(), CacheMode::Exact);
        assert_eq!("warm".parse::<CacheMode>().unwrap(), CacheMode::Warm);
        for bad in ["on", "1", "Warm", "wram", ""] {
            let err = bad.parse::<CacheMode>().unwrap_err().to_string();
            assert!(err.contains(CACHE_ENV), "names the variable: {err}");
            for name in ["off", "exact", "warm"] {
                assert!(err.contains(name), "lists `{name}`: {err}");
            }
        }
        let cfg =
            LemraConfig::from_vars(None, None, None, None, None, Some("warm"), Some("7")).unwrap();
        assert_eq!(cfg.cache, CacheMode::Warm);
        assert_eq!(cfg.cache_cap, 7);
        assert!(
            LemraConfig::from_vars(None, None, None, None, None, Some("wram"), None).is_err(),
            "a typo'd {CACHE_ENV} must fail loudly"
        );
        assert!(LemraConfig::from_vars(None, None, None, None, None, None, Some("0")).is_err());
        assert!(LemraConfig::from_vars(None, None, None, None, None, None, Some("many")).is_err());
    }

    #[test]
    fn cost_scaling_backend_parses_from_env_vars() {
        let cfg = LemraConfig::from_vars(Some("cost_scaling"), None, None, None, None, None, None)
            .unwrap();
        assert_eq!(cfg.backend, Backend::CostScaling);
        let dashed =
            LemraConfig::from_vars(Some("cost-scaling"), None, None, None, None, None, None)
                .unwrap();
        assert_eq!(dashed.backend, Backend::CostScaling);
    }

    #[test]
    fn malformed_numeric_knobs_are_errors() {
        assert!(LemraConfig::from_vars(None, Some("zero"), None, None, None, None, None).is_err());
        assert!(LemraConfig::from_vars(None, Some("0"), None, None, None, None, None).is_err());
        assert!(LemraConfig::from_vars(None, None, None, Some("-1"), None, None, None).is_err());
        assert!(LemraConfig::from_vars(None, None, None, Some("0"), None, None, None).is_err());
    }
}
