//! Process-wide runtime configuration, read once.
//!
//! The knobs that used to be scattered env reads — `LEMRA_THREADS` in the
//! batch solver *and again* in the bench drivers, `LEMRA_COLD` per
//! `SweepAllocator`, the backend choice nowhere at all — live in one
//! [`LemraConfig`], parsed from the environment exactly once per process
//! (or installed explicitly by a binary's flag parser before first use).
//! Every consumer reads the same snapshot, so a sweep driver and the batch
//! solver can never disagree about the thread count mid-run.

use crate::solver::Backend;
use std::sync::OnceLock;

/// Environment variable selecting the min-cost-flow [`Backend`]
/// (`ssp`, `scaling`, `cycle`, `simplex`, `auto`; default `ssp`).
pub const BACKEND_ENV: &str = "LEMRA_BACKEND";

/// Environment variable overriding the worker-thread count (`1` forces
/// serial execution; useful for debugging and timing comparisons).
pub const THREADS_ENV: &str = "LEMRA_THREADS";

/// Environment variable: set `LEMRA_COLD=1` to make sweep drivers
/// cold-solve every point (escape hatch for debugging and for timing
/// comparisons against the warm path).
pub const COLD_ENV: &str = "LEMRA_COLD";

/// The process-wide configuration snapshot.
///
/// Obtain it with [`LemraConfig::get`]; binaries with their own flags build
/// one ([`LemraConfig::from_env`] then field overrides) and
/// [`install`](LemraConfig::install) it before any library call.
///
/// # Examples
///
/// ```
/// use lemra_netflow::LemraConfig;
///
/// let cfg = LemraConfig::get();
/// assert!(cfg.threads.map_or(true, |n| n > 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LemraConfig {
    /// Min-cost-flow algorithm the pipeline solve stages use.
    pub backend: Backend,
    /// Worker-thread cap for batched solves and parallel sweeps; `None`
    /// means one per item up to the machine's parallelism.
    pub threads: Option<usize>,
    /// Force sweep drivers to cold-solve every point (no warm-start reuse).
    pub cold: bool,
    /// Collect and report per-stage timings and solver counters.
    pub timings: bool,
    /// Whether the `validate` cargo feature (in-solve invariant auditing)
    /// is compiled in — informational, for reports.
    pub validate: bool,
}

impl Default for LemraConfig {
    fn default() -> Self {
        Self {
            backend: Backend::Ssp,
            threads: None,
            cold: false,
            timings: false,
            validate: cfg!(feature = "validate"),
        }
    }
}

static CONFIG: OnceLock<LemraConfig> = OnceLock::new();

impl LemraConfig {
    /// Builds a configuration from the environment ([`BACKEND_ENV`],
    /// [`THREADS_ENV`], [`COLD_ENV`]); unset or unparsable variables fall
    /// back to the defaults. Timings are flag-only (no env variable), so
    /// they default to off.
    pub fn from_env() -> Self {
        let backend = std::env::var(BACKEND_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_default();
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let cold = std::env::var(COLD_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
        Self {
            backend,
            threads,
            cold,
            ..Self::default()
        }
    }

    /// The process-wide snapshot, initialised from the environment on first
    /// call (unless a binary [`install`](Self::install)ed one earlier).
    pub fn get() -> &'static LemraConfig {
        CONFIG.get_or_init(Self::from_env)
    }

    /// Installs `self` as the process-wide snapshot. Must run before the
    /// first [`get`](Self::get) (i.e. before any solver/pipeline call);
    /// returns whether it won the slot. Binaries call this right after flag
    /// parsing; libraries never call it.
    pub fn install(self) -> bool {
        CONFIG.set(self).is_ok()
    }

    /// Effective worker count for `len` independent items: one per item up
    /// to the machine's parallelism, capped by [`Self::threads`].
    pub fn worker_count(&self, len: usize) -> usize {
        let hw = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        hw.min(len).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ssp_warm_untimed() {
        let cfg = LemraConfig::default();
        assert_eq!(cfg.backend, Backend::Ssp);
        assert!(!cfg.cold);
        assert!(!cfg.timings);
        assert_eq!(cfg.threads, None);
    }

    #[test]
    fn worker_count_honours_cap_and_len() {
        let cfg = LemraConfig {
            threads: Some(4),
            ..LemraConfig::default()
        };
        assert_eq!(cfg.worker_count(100), 4);
        assert_eq!(cfg.worker_count(2), 2);
        assert_eq!(cfg.worker_count(0), 1);
        let serial = LemraConfig {
            threads: Some(1),
            ..LemraConfig::default()
        };
        assert_eq!(serial.worker_count(100), 1);
    }

    #[test]
    fn get_returns_a_stable_snapshot() {
        assert_eq!(LemraConfig::get(), LemraConfig::get());
    }
}
