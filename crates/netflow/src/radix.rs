//! Monotone priority queue (radix heap) for Dijkstra rounds.
//!
//! Dijkstra over non-negative reduced costs pops keys in non-decreasing
//! order and never pushes a key below the last popped one — exactly the
//! contract a radix heap needs. Compared with a binary heap it turns every
//! push into O(1) work on a sequentially-growing bucket (no sift-up through
//! a pointer-chased array), which matters because the solver pushes several
//! entries per settled node and discards most of them unpopped at early
//! termination.
//!
//! Keys are bucketed by the most significant bit in which they differ from
//! the last popped key; bucket 0 therefore holds keys *equal* to it and pops
//! are O(1) until it drains, at which point the lowest non-empty bucket is
//! emptied and its entries redistributed strictly downwards (each key agrees
//! with the new minimum on every bit above the bucket's own, so its new
//! bucket index is smaller — the classic amortised-O(bits) argument).

/// A monotone priority queue over `(key, value)` pairs with non-negative
/// `i64` keys.
///
/// `push` requires `key >= ` the last key returned by [`pop`] (and `>= 0`
/// after a [`reset`]); violating this is a logic error caught by a debug
/// assertion.
///
/// [`pop`]: RadixHeap::pop
/// [`reset`]: RadixHeap::reset
#[derive(Debug)]
pub(crate) struct RadixHeap {
    /// `buckets[b]` holds keys whose highest bit differing from `last` is
    /// `b - 1`; `buckets[0]` holds keys equal to `last`.
    buckets: Vec<Vec<(i64, u32)>>,
    /// Bit `b` set iff `buckets[b]` is non-empty, so finding the lowest
    /// occupied bucket is one `trailing_zeros` instead of a linear scan.
    occupied: u128,
    /// The monotone floor: last popped key (or the reset floor).
    last: i64,
    len: usize,
}

const BUCKETS: usize = 65;

impl Default for RadixHeap {
    fn default() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occupied: 0,
            last: 0,
            len: 0,
        }
    }
}

impl RadixHeap {
    /// Empties the heap and resets the monotone floor to 0, keeping bucket
    /// capacity for reuse across rounds.
    pub fn reset(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.occupied = 0;
        self.last = 0;
        self.len = 0;
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_index(last: i64, key: i64) -> usize {
        ((key as u64) ^ (last as u64))
            .checked_ilog2()
            .map_or(0, |b| b as usize + 1)
    }

    /// Inserts `(key, value)`. `key` must be `>=` the last popped key.
    #[inline]
    pub fn push(&mut self, key: i64, value: u32) {
        debug_assert!(key >= self.last, "radix heap requires monotone keys");
        let b = Self::bucket_index(self.last, key);
        self.buckets[b].push((key, value));
        self.occupied |= 1 << b;
        self.len += 1;
    }

    /// Removes and returns a pair with the minimum key.
    pub fn pop(&mut self) -> Option<(i64, u32)> {
        if self.len == 0 {
            return None;
        }
        if self.buckets[0].is_empty() {
            let b = self.occupied.trailing_zeros() as usize;
            debug_assert!(b < BUCKETS, "len > 0 implies a non-empty bucket");
            let min = self.buckets[b]
                .iter()
                .map(|&(k, _)| k)
                .min()
                .expect("bucket b is non-empty");
            self.last = min;
            // Take the bucket out to appease the borrow checker, but put it
            // back afterwards so its capacity survives for later rounds —
            // dropping it here would make every redistribution free and then
            // re-grow the same buffer.
            let mut drained = std::mem::take(&mut self.buckets[b]);
            self.occupied &= !(1u128 << b);
            for &(k, v) in &drained {
                let nb = Self::bucket_index(min, k);
                debug_assert!(nb < b, "redistribution must move entries down");
                self.buckets[nb].push((k, v));
                self.occupied |= 1 << nb;
            }
            drained.clear();
            self.buckets[b] = drained;
        }
        self.len -= 1;
        let out = self.buckets[0].pop();
        if self.buckets[0].is_empty() {
            self.occupied &= !1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_sorted_order() {
        let mut h = RadixHeap::default();
        for (i, k) in [5i64, 3, 9, 3, 0, 17, 8].into_iter().enumerate() {
            h.push(k, i as u32);
        }
        let mut keys = Vec::new();
        while let Some((k, _)) = h.pop() {
            keys.push(k);
        }
        assert_eq!(keys, vec![0, 3, 3, 5, 8, 9, 17]);
        assert!(h.pop().is_none());
    }

    #[test]
    fn interleaved_monotone_pushes() {
        let mut h = RadixHeap::default();
        h.push(2, 0);
        h.push(7, 1);
        assert_eq!(h.pop(), Some((2, 0)));
        // New keys at or above the popped key are fine.
        h.push(2, 2);
        h.push(1 << 40, 3);
        assert_eq!(h.pop().unwrap().0, 2);
        assert_eq!(h.pop().unwrap().0, 7);
        assert_eq!(h.pop().unwrap().0, 1 << 40);
        assert!(h.is_empty());
    }

    #[test]
    fn reset_restores_floor() {
        let mut h = RadixHeap::default();
        h.push(10, 0);
        assert_eq!(h.pop(), Some((10, 0)));
        h.reset();
        // After reset, small keys are legal again.
        h.push(1, 1);
        assert_eq!(h.pop(), Some((1, 1)));
    }

    #[test]
    fn equal_keys_all_surface() {
        let mut h = RadixHeap::default();
        for v in 0..100 {
            h.push(42, v);
        }
        let mut seen: Vec<u32> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn large_key_range() {
        let mut h = RadixHeap::default();
        let keys = [0i64, 1, i64::MAX / 4, 1 << 62, 12345678901234];
        for (i, &k) in keys.iter().enumerate() {
            h.push(k, i as u32);
        }
        let mut sorted = keys;
        sorted.sort_unstable();
        for &want in &sorted {
            assert_eq!(h.pop().unwrap().0, want);
        }
    }
}
