//! Reusable scratch memory for the shortest-path based solvers.
//!
//! Every successive-shortest-path augmentation needs distance labels, parent
//! pointers, a priority queue and assorted per-node buffers. Allocating them
//! fresh per augmentation (let alone per solve) dominates the runtime on the
//! small-to-medium networks the allocator produces, so they live in a
//! [`SolverWorkspace`] that is reused across augmentations and — via
//! [`min_cost_flow_with`](crate::min_cost_flow_with) or the solvers'
//! thread-local default workspace — across repeated solves in a sweep.
//!
//! Distance labels are invalidated in O(1) per augmentation with an epoch
//! stamp: `dist[v]`/`parent_edge[v]` are meaningful only while
//! `seen[v] == epoch`, so starting a new Dijkstra round is a single counter
//! increment instead of an O(V) fill.

use crate::budget::SolveBudget;
use crate::canon::CacheStamp;
use crate::radix::RadixHeap;
use crate::residual::Residual;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::AtomicI64;
use std::sync::Mutex;

pub(crate) const INF: i64 = i64::MAX / 4;

/// Per-region scratch owned exclusively by one settle worker: its frontier
/// heap and the seed buffer its cross-region inbox is drained into at the
/// start of each wave. Regions borrow these disjointly (one `&mut` each out
/// of [`ParScratch::arenas`]) while the shared read-only state — potentials,
/// kept adjacency, atomic distances — is borrowed once for everyone.
#[derive(Debug, Default)]
pub(crate) struct RegionArena {
    /// The region's private Dijkstra frontier; reset per wave.
    pub heap: RadixHeap,
    /// Nodes handed to this region since its last wave (drained inbox).
    pub seeds: Vec<u32>,
}

/// Split-borrowable scratch for the decomposed parallel solve path
/// (`netflow::decompose`). Lives on the [`SolverWorkspace`] so buffers are
/// reused across solves like every other arena; a plain `Default` when the
/// parallel path never runs.
///
/// The layout is "flat CSR + per-region index ranges": `bounds` partitions
/// `0..n` into contiguous regions, `region_of` inverts it, and `arenas[r]`
/// holds region `r`'s exclusively-owned state so a scoped worker borrows one
/// `&mut RegionArena` plus shared `&` views of everything else.
#[derive(Debug, Default)]
pub(crate) struct ParScratch {
    /// Shared tentative distances, CAS-min updated by all regions.
    pub dist: Vec<AtomicI64>,
    /// Potential scratch for the join-time price repair.
    pub potential: Vec<i64>,
    /// Region owning each node (index into `arenas`).
    pub region_of: Vec<u32>,
    /// Region end offsets: region `r` owns nodes `bounds[r]..bounds[r + 1]`.
    pub bounds: Vec<u32>,
    /// Working-set membership per edge id.
    pub keep: Vec<bool>,
    /// CSR row starts of the kept adjacency (edge ids per tail).
    pub kept_start: Vec<u32>,
    /// CSR payload of the kept adjacency: stable edge ids.
    pub kept_edges: Vec<u32>,
    /// Head node per kept-CSR entry — a sequential-scan copy, so the settle
    /// and blocking-flow hot loops never chase `slot_of` indirections.
    pub kept_to: Vec<u32>,
    /// Cost per kept-CSR entry (immutable over a solve, copied once).
    pub kept_cost: Vec<i64>,
    /// Live capacity per kept-CSR entry, patched from the residual's push
    /// log between rounds and updated in place by the kept blocking flow.
    pub kept_cap: Vec<i64>,
    /// Edge id → kept-CSR position (`u32::MAX`: not kept).
    pub kept_pos: Vec<u32>,
    /// Blocking-flow DFS node states ([`BF_FRESH`]-family constants).
    pub level: Vec<i32>,
    /// Blocking-flow DFS arc cursors (kept-CSR positions).
    pub iter: Vec<u32>,
    /// Blocking-flow DFS path: kept-CSR positions of the in-arcs taken.
    pub path: Vec<u32>,
    /// Blocking-flow DFS node trail, sink-anchored.
    pub chain: Vec<u32>,
    /// Ranking scratch of the working-set builder: `(reduced cost, edge)`.
    pub rank: Vec<(i64, u32)>,
    /// Counting-sort row starts for the in-arc (head-side) ranking pass.
    pub in_start: Vec<u32>,
    /// Counting-sort cursors for the in-arc ranking pass.
    pub in_cursor: Vec<u32>,
    /// Counting-sort payload for the in-arc ranking pass.
    pub in_items: Vec<(i64, u32)>,
    /// Per-region exclusively-owned worker state.
    pub arenas: Vec<RegionArena>,
    /// Cross-region handoff queues: a relaxation that improves a node owned
    /// by another region pushes it here instead of into a foreign heap.
    pub inboxes: Vec<Mutex<Vec<u32>>>,
}

/// Hot per-node solver state: the potential, the epoch-stamped tentative
/// distance and the blocking-flow BFS level, packed into one 24-byte record.
/// An edge relaxation or admissibility test makes one random access at the
/// head node; packing turns what used to be two or three parallel-array
/// touches into a single cache line.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeState {
    /// Node potential making reduced costs non-negative.
    pub potential: i64,
    /// Tentative shortest distance; valid while `stamp` equals the epoch.
    pub dist: i64,
    /// Epoch stamp validating `dist` (Dijkstra rounds) or `level`
    /// (blocking-flow phases); each phase bumps the epoch, so the two uses
    /// never overlap.
    pub stamp: u32,
    /// BFS level of the admissible subgraph; valid while `stamp` equals the
    /// epoch of the current blocking-flow phase.
    pub level: u32,
}

thread_local! {
    /// Default workspace for the plain solver entry points, one per thread,
    /// so repeated solves in a sweep reuse buffers without any API change.
    /// Shared by every SSP-family solver on the thread.
    static SHARED_WORKSPACE: RefCell<SolverWorkspace> = RefCell::new(SolverWorkspace::new());
}

/// Runs `f` with the calling thread's shared [`SolverWorkspace`].
pub(crate) fn with_thread_workspace<R>(f: impl FnOnce(&mut SolverWorkspace) -> R) -> R {
    SHARED_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

/// Snapshot of the calling thread's shared-workspace [`SolverStats`] — the
/// counters accumulated by every plain (workspace-less) solver entry point
/// run on this thread. Diff two snapshots around a solve to attribute work.
pub fn thread_solver_stats() -> SolverStats {
    SHARED_WORKSPACE.with(|ws| ws.borrow().stats())
}

/// Cumulative solver-effort counters of a [`SolverWorkspace`].
///
/// Counters never reset; subtract snapshots to scope them to a solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Shortest-path rounds run (Dijkstra frontiers started).
    pub dijkstra_rounds: u64,
    /// Flow units pushed along augmenting paths or cancelled cycles.
    pub pushed_units: u64,
    /// Solver incidents absorbed by a [`ResilientSolver`](crate::ResilientSolver)
    /// fallback chain. Always 0 in a raw workspace snapshot; resilience-aware
    /// aggregators (e.g. the allocation pipeline) fold their incident counts
    /// in here so one struct carries the whole effort/health picture.
    pub incidents: u64,
}

impl std::ops::Sub for SolverStats {
    type Output = SolverStats;
    fn sub(self, rhs: SolverStats) -> SolverStats {
        SolverStats {
            dijkstra_rounds: self.dijkstra_rounds.saturating_sub(rhs.dijkstra_rounds),
            pushed_units: self.pushed_units.saturating_sub(rhs.pushed_units),
            incidents: self.incidents.saturating_sub(rhs.incidents),
        }
    }
}

impl std::ops::Add for SolverStats {
    type Output = SolverStats;
    fn add(self, rhs: SolverStats) -> SolverStats {
        SolverStats {
            dijkstra_rounds: self.dijkstra_rounds + rhs.dijkstra_rounds,
            pushed_units: self.pushed_units + rhs.pushed_units,
            incidents: self.incidents + rhs.incidents,
        }
    }
}

/// Reusable scratch buffers for [`min_cost_flow`](crate::min_cost_flow) and
/// [`min_cost_flow_scaling`](crate::min_cost_flow_scaling).
///
/// Create one per thread and pass it to
/// [`min_cost_flow_with`](crate::min_cost_flow_with) to amortise allocations
/// across a sweep of solves; the plain entry points keep one per thread
/// internally, so using this type explicitly is an optimisation, never a
/// requirement.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{min_cost_flow_with, FlowNetwork, SolverWorkspace};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut ws = SolverWorkspace::new();
/// for cap in 1..10 {
///     let mut net = FlowNetwork::new();
///     let (s, t) = (net.add_node(), net.add_node());
///     net.add_arc(s, t, cap, 1)?;
///     let sol = min_cost_flow_with(&net, s, t, cap, &mut ws)?;
///     assert_eq!(sol.cost, cap);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    /// Per-node hot state: potential + epoch-stamped distance/level.
    pub(crate) node: Vec<NodeState>,
    /// Edge that last relaxed each node; valid while `node[v].stamp == epoch`.
    pub(crate) parent_edge: Vec<u32>,
    /// Bottleneck residual capacity along the tentative parent chain.
    pub(crate) bottleneck_to: Vec<i64>,
    /// Current epoch; bumped per Dijkstra round.
    pub(crate) epoch: u32,
    /// Dijkstra frontier, reused across rounds. Reduced-cost distances pop
    /// in non-decreasing order, so a monotone radix heap applies.
    pub(crate) heap: RadixHeap,
    /// FIFO/deque for SPFA potential initialisation and Kahn's algorithm.
    pub(crate) queue: VecDeque<u32>,
    /// SPFA in-queue flags.
    pub(crate) in_queue: Vec<bool>,
    /// SPFA enqueue counters (negative-cycle detection).
    pub(crate) enqueues: Vec<u32>,
    /// Kahn in-degrees over positive-capacity edges.
    pub(crate) indegree: Vec<u32>,
    /// Topological order buffer.
    pub(crate) order: Vec<u32>,
    /// Distance labels of the cost-scaling set-relabel sweep.
    pub(crate) level: Vec<u32>,
    /// Per-node cursor into the active slot range: the current-arc pointer
    /// of blocking-flow DFS and push-relabel discharge.
    pub(crate) cursor: Vec<u32>,
    /// Signed node imbalances for the scaling solvers. Wide: saturating
    /// admissible arcs can pile several near-`i64::MAX` capacities onto one
    /// node before a discharge rebalances it.
    pub(crate) excess: Vec<i128>,
    /// Cost-scaling node prices. Wide: costs are scaled by `n + 1` and
    /// prices drop by `O(n · epsilon)` per refine phase, which outgrows
    /// `i64` on inputs that `validate_input` admits.
    pub(crate) price: Vec<i128>,
    /// Wide scratch labels for the cost-scaling price-refinement SPFA.
    pub(crate) dist_scratch: Vec<i128>,
    /// Residual-graph arena: the workspace-backed solvers rebuild the
    /// per-solve residual topology in these buffers (via `mem::take` /
    /// restore around the solve) instead of allocating a fresh graph — the
    /// dominant per-solve allocation on small networks.
    pub(crate) arena: Residual,
    /// Shortest-path rounds started, cumulative across solves.
    pub(crate) dijkstra_rounds: u64,
    /// Flow units pushed along augmenting paths, cumulative across solves.
    pub(crate) pushed_units: u64,
    /// Cooperative work limits consulted by the solvers at phase boundaries.
    /// Defaults to unlimited; survives [`Self::prepare`] so a budget set once
    /// governs every solve run on this workspace.
    pub(crate) budget: SolveBudget,
    /// Memo of the last passing [`FlowNetwork::scan_arcs`](crate::FlowNetwork)
    /// run through this workspace: [`CacheStamp`] → achievable capacity
    /// bound. Keyed on the network's identity stamp, so any mutation
    /// invalidates it; only passing scans are cached (errors are terminal
    /// and re-deriving their message is fine). Survives [`Self::prepare`].
    pub(crate) validate_cache: Option<(CacheStamp, i64)>,
    /// Scratch of the decomposed parallel solve path; empty until the first
    /// parallel solve on this workspace.
    pub(crate) par: ParScratch,
    /// Build-stage region boundary hints (ascending node indices at which a
    /// partition cut is structurally cheap, e.g. variable starts in the
    /// allocation network). Consulted by the parallel path's partitioner;
    /// `None` falls back to uniform cuts. Survives [`Self::prepare`].
    pub(crate) region_hints: Option<Vec<u32>>,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes every buffer for an `n`-node residual graph and resets the
    /// epoch machinery. Called once per solve; keeps capacity across calls.
    pub(crate) fn prepare(&mut self, n: usize) {
        self.node.clear();
        self.node.resize(
            n,
            NodeState {
                potential: INF,
                dist: INF,
                stamp: 0,
                level: u32::MAX,
            },
        );
        self.parent_edge.clear();
        self.parent_edge.resize(n, u32::MAX);
        self.bottleneck_to.clear();
        self.bottleneck_to.resize(n, 0);
        self.epoch = 0;
        self.heap.reset();
        self.queue.clear();
        self.in_queue.clear();
        self.in_queue.resize(n, false);
        self.enqueues.clear();
        self.enqueues.resize(n, 0);
        self.indegree.clear();
        self.indegree.resize(n, 0);
        self.order.clear();
        // `level`, `cursor`, `excess`, `price` and `dist_scratch` are
        // deliberately *not* sized here: only the blocking-flow and scaling
        // solvers use them, and they reset exactly the prefix they need per
        // phase. Touching three i128 and two u32 arrays on every solve
        // would tax the common SSP path for nothing.
    }

    /// Takes the residual arena out of the workspace for a solve (leaving an
    /// empty graph behind); pair with [`Self::put_arena`]. The take/restore
    /// dance side-steps the simultaneous `&mut` borrows a resident graph
    /// would need, at the cost of a pointer swap.
    pub(crate) fn take_arena(&mut self) -> Residual {
        std::mem::take(&mut self.arena)
    }

    /// Returns a residual arena taken with [`Self::take_arena`], preserving
    /// its buffers for the next solve.
    pub(crate) fn put_arena(&mut self, arena: Residual) {
        self.arena = arena;
    }

    /// Leases the residual arena behind a drop guard: the guard hands out
    /// disjoint `&mut` borrows of the residual and the rest of the workspace
    /// via [`ArenaGuard::parts`], and its `Drop` returns the arena even if
    /// the solve panics — so a `catch_unwind` boundary (e.g. in
    /// [`ResilientSolver`](crate::ResilientSolver)) never leaks the buffers
    /// a thread-local workspace was meant to reuse.
    pub(crate) fn lease_arena(&mut self) -> ArenaGuard<'_> {
        let res = self.take_arena();
        ArenaGuard {
            ws: self,
            res: Some(res),
        }
    }

    /// Installs build-stage region boundary hints for the decomposed
    /// parallel solve path: ascending node indices where a partition cut is
    /// structurally cheap (few crossing arcs). `None` clears them.
    pub fn set_region_hints(&mut self, hints: Option<Vec<u32>>) {
        self.region_hints = hints;
    }

    /// Cumulative effort counters (never reset by [`Self::prepare`]; diff
    /// snapshots to scope them to a solve).
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            dijkstra_rounds: self.dijkstra_rounds,
            pushed_units: self.pushed_units,
            incidents: 0,
        }
    }

    /// Installs a [`SolveBudget`] that every subsequent solve on this
    /// workspace checks cooperatively, returning the previous budget so
    /// callers can scope a budget to one call and restore the old one after.
    /// The default budget is unlimited.
    pub fn set_budget(&mut self, budget: SolveBudget) -> SolveBudget {
        std::mem::replace(&mut self.budget, budget)
    }

    /// Starts a new label phase (a Dijkstra round or a blocking-flow BFS):
    /// invalidates all distance and level labels in O(1) by bumping the
    /// epoch.
    pub(crate) fn begin_phase(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                for st in &mut self.node {
                    st.stamp = 0;
                }
                1
            }
        };
    }

    /// Starts a new shortest-path round: [`Self::begin_phase`] plus the
    /// frontier reset and the effort counter.
    pub(crate) fn begin_round(&mut self) {
        self.dijkstra_rounds += 1;
        self.begin_phase();
        self.heap.reset();
    }

    /// Distance label of `v` this round (`INF` if untouched).
    #[inline]
    pub(crate) fn dist_of(&self, v: usize) -> i64 {
        let st = self.node[v];
        if st.stamp == self.epoch {
            st.dist
        } else {
            INF
        }
    }

    /// Sets the distance label of `v` for this round.
    #[inline]
    pub(crate) fn set_dist(&mut self, v: usize, d: i64) {
        let st = &mut self.node[v];
        st.stamp = self.epoch;
        st.dist = d;
    }

    /// Sets the BFS level of `v` for this phase.
    #[inline]
    pub(crate) fn set_level(&mut self, v: usize, level: u32) {
        let st = &mut self.node[v];
        st.stamp = self.epoch;
        st.level = level;
    }
}

/// Drop guard around a leased residual arena (see
/// [`SolverWorkspace::lease_arena`]). Holds the arena out of the workspace
/// for the duration of a solve and restores it on drop — including the
/// unwind path, which the bare `take_arena`/`put_arena` pair missed.
#[derive(Debug)]
pub(crate) struct ArenaGuard<'a> {
    ws: &'a mut SolverWorkspace,
    res: Option<Residual>,
}

impl ArenaGuard<'_> {
    /// Disjoint reborrows of the leased residual and the workspace, so a
    /// solve can mutate both simultaneously (the whole reason the arena is
    /// taken out rather than borrowed in place).
    pub(crate) fn parts(&mut self) -> (&mut Residual, &mut SolverWorkspace) {
        let res = self.res.as_mut().expect("arena still leased");
        (res, self.ws)
    }
}

impl Drop for ArenaGuard<'_> {
    fn drop(&mut self) {
        if let Some(res) = self.res.take() {
            self.ws.put_arena(res);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_invalidate_distances() {
        let mut ws = SolverWorkspace::new();
        ws.prepare(3);
        ws.begin_round();
        ws.set_dist(1, 7);
        assert_eq!(ws.dist_of(1), 7);
        assert_eq!(ws.dist_of(2), INF);
        ws.begin_round();
        assert_eq!(ws.dist_of(1), INF);
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let mut ws = SolverWorkspace::new();
        ws.prepare(2);
        ws.epoch = u32::MAX;
        ws.node[0].stamp = u32::MAX; // stale stamp from the "previous" epoch
        ws.begin_round();
        assert_eq!(ws.epoch, 1);
        assert_eq!(ws.dist_of(0), INF);
    }

    #[test]
    fn arena_guard_returns_arena_on_panic() {
        let mut ws = SolverWorkspace::new();
        ws.arena.reset(7);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut guard = ws.lease_arena();
            let (res, _ws) = guard.parts();
            res.reset(3);
            panic!("solver blew up mid-solve");
        }));
        assert!(caught.is_err());
        // The arena came back (with the state it had at unwind time), not a
        // fresh empty graph left behind by `take_arena`.
        assert_eq!(ws.arena.node_count(), 3);
    }

    #[test]
    fn prepare_resizes_between_solves() {
        let mut ws = SolverWorkspace::new();
        ws.prepare(2);
        ws.begin_round();
        ws.set_dist(1, 3);
        ws.prepare(5);
        ws.begin_round();
        assert_eq!(ws.dist_of(1), INF);
        assert_eq!(ws.dist_of(4), INF);
    }
}
