//! Reusable scratch memory for the shortest-path based solvers.
//!
//! Every successive-shortest-path augmentation needs distance labels, parent
//! pointers, a priority queue and assorted per-node buffers. Allocating them
//! fresh per augmentation (let alone per solve) dominates the runtime on the
//! small-to-medium networks the allocator produces, so they live in a
//! [`SolverWorkspace`] that is reused across augmentations and — via
//! [`min_cost_flow_with`](crate::min_cost_flow_with) or the solvers'
//! thread-local default workspace — across repeated solves in a sweep.
//!
//! Distance labels are invalidated in O(1) per augmentation with an epoch
//! stamp: `dist[v]`/`parent_edge[v]` are meaningful only while
//! `seen[v] == epoch`, so starting a new Dijkstra round is a single counter
//! increment instead of an O(V) fill.

use crate::budget::SolveBudget;
use crate::radix::RadixHeap;
use std::cell::RefCell;
use std::collections::VecDeque;

pub(crate) const INF: i64 = i64::MAX / 4;

thread_local! {
    /// Default workspace for the plain solver entry points, one per thread,
    /// so repeated solves in a sweep reuse buffers without any API change.
    /// Shared by every SSP-family solver on the thread.
    static SHARED_WORKSPACE: RefCell<SolverWorkspace> = RefCell::new(SolverWorkspace::new());
}

/// Runs `f` with the calling thread's shared [`SolverWorkspace`].
pub(crate) fn with_thread_workspace<R>(f: impl FnOnce(&mut SolverWorkspace) -> R) -> R {
    SHARED_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

/// Snapshot of the calling thread's shared-workspace [`SolverStats`] — the
/// counters accumulated by every plain (workspace-less) solver entry point
/// run on this thread. Diff two snapshots around a solve to attribute work.
pub fn thread_solver_stats() -> SolverStats {
    SHARED_WORKSPACE.with(|ws| ws.borrow().stats())
}

/// Cumulative solver-effort counters of a [`SolverWorkspace`].
///
/// Counters never reset; subtract snapshots to scope them to a solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Shortest-path rounds run (Dijkstra frontiers started).
    pub dijkstra_rounds: u64,
    /// Flow units pushed along augmenting paths or cancelled cycles.
    pub pushed_units: u64,
    /// Solver incidents absorbed by a [`ResilientSolver`](crate::ResilientSolver)
    /// fallback chain. Always 0 in a raw workspace snapshot; resilience-aware
    /// aggregators (e.g. the allocation pipeline) fold their incident counts
    /// in here so one struct carries the whole effort/health picture.
    pub incidents: u64,
}

impl std::ops::Sub for SolverStats {
    type Output = SolverStats;
    fn sub(self, rhs: SolverStats) -> SolverStats {
        SolverStats {
            dijkstra_rounds: self.dijkstra_rounds.saturating_sub(rhs.dijkstra_rounds),
            pushed_units: self.pushed_units.saturating_sub(rhs.pushed_units),
            incidents: self.incidents.saturating_sub(rhs.incidents),
        }
    }
}

impl std::ops::Add for SolverStats {
    type Output = SolverStats;
    fn add(self, rhs: SolverStats) -> SolverStats {
        SolverStats {
            dijkstra_rounds: self.dijkstra_rounds + rhs.dijkstra_rounds,
            pushed_units: self.pushed_units + rhs.pushed_units,
            incidents: self.incidents + rhs.incidents,
        }
    }
}

/// Reusable scratch buffers for [`min_cost_flow`](crate::min_cost_flow) and
/// [`min_cost_flow_scaling`](crate::min_cost_flow_scaling).
///
/// Create one per thread and pass it to
/// [`min_cost_flow_with`](crate::min_cost_flow_with) to amortise allocations
/// across a sweep of solves; the plain entry points keep one per thread
/// internally, so using this type explicitly is an optimisation, never a
/// requirement.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{min_cost_flow_with, FlowNetwork, SolverWorkspace};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut ws = SolverWorkspace::new();
/// for cap in 1..10 {
///     let mut net = FlowNetwork::new();
///     let (s, t) = (net.add_node(), net.add_node());
///     net.add_arc(s, t, cap, 1)?;
///     let sol = min_cost_flow_with(&net, s, t, cap, &mut ws)?;
///     assert_eq!(sol.cost, cap);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    /// Tentative shortest distances; valid while `seen[v] == epoch`.
    pub(crate) dist: Vec<i64>,
    /// Edge that last relaxed each node; valid while `seen[v] == epoch`.
    pub(crate) parent_edge: Vec<u32>,
    /// Bottleneck residual capacity along the tentative parent chain.
    pub(crate) bottleneck_to: Vec<i64>,
    /// Epoch stamp per node.
    pub(crate) seen: Vec<u32>,
    /// Current epoch; bumped per Dijkstra round.
    pub(crate) epoch: u32,
    /// Dijkstra frontier, reused across rounds. Reduced-cost distances pop
    /// in non-decreasing order, so a monotone radix heap applies.
    pub(crate) heap: RadixHeap,
    /// Node potentials making reduced costs non-negative.
    pub(crate) potential: Vec<i64>,
    /// FIFO/deque for SPFA potential initialisation and Kahn's algorithm.
    pub(crate) queue: VecDeque<u32>,
    /// SPFA in-queue flags.
    pub(crate) in_queue: Vec<bool>,
    /// SPFA enqueue counters (negative-cycle detection).
    pub(crate) enqueues: Vec<u32>,
    /// Kahn in-degrees over positive-capacity edges.
    pub(crate) indegree: Vec<u32>,
    /// Topological order buffer.
    pub(crate) order: Vec<u32>,
    /// Shortest-path rounds started, cumulative across solves.
    pub(crate) dijkstra_rounds: u64,
    /// Flow units pushed along augmenting paths, cumulative across solves.
    pub(crate) pushed_units: u64,
    /// Cooperative work limits consulted by the solvers at phase boundaries.
    /// Defaults to unlimited; survives [`Self::prepare`] so a budget set once
    /// governs every solve run on this workspace.
    pub(crate) budget: SolveBudget,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes every buffer for an `n`-node residual graph and resets the
    /// epoch machinery. Called once per solve; keeps capacity across calls.
    pub(crate) fn prepare(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, INF);
        self.parent_edge.clear();
        self.parent_edge.resize(n, u32::MAX);
        self.bottleneck_to.clear();
        self.bottleneck_to.resize(n, 0);
        self.seen.clear();
        self.seen.resize(n, 0);
        self.epoch = 0;
        self.heap.reset();
        self.potential.clear();
        self.potential.resize(n, INF);
        self.queue.clear();
        self.in_queue.clear();
        self.in_queue.resize(n, false);
        self.enqueues.clear();
        self.enqueues.resize(n, 0);
        self.indegree.clear();
        self.indegree.resize(n, 0);
        self.order.clear();
    }

    /// Cumulative effort counters (never reset by [`Self::prepare`]; diff
    /// snapshots to scope them to a solve).
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            dijkstra_rounds: self.dijkstra_rounds,
            pushed_units: self.pushed_units,
            incidents: 0,
        }
    }

    /// Installs a [`SolveBudget`] that every subsequent solve on this
    /// workspace checks cooperatively, returning the previous budget so
    /// callers can scope a budget to one call and restore the old one after.
    /// The default budget is unlimited.
    pub fn set_budget(&mut self, budget: SolveBudget) -> SolveBudget {
        std::mem::replace(&mut self.budget, budget)
    }

    /// Starts a new shortest-path round: invalidates all distance labels in
    /// O(1) by bumping the epoch.
    pub(crate) fn begin_round(&mut self) {
        self.dijkstra_rounds += 1;
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.seen.fill(0);
                1
            }
        };
        self.heap.reset();
    }

    /// Distance label of `v` this round (`INF` if untouched).
    #[inline]
    pub(crate) fn dist_of(&self, v: usize) -> i64 {
        if self.seen[v] == self.epoch {
            self.dist[v]
        } else {
            INF
        }
    }

    /// Sets the distance label of `v` for this round.
    #[inline]
    pub(crate) fn set_dist(&mut self, v: usize, d: i64) {
        self.seen[v] = self.epoch;
        self.dist[v] = d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_invalidate_distances() {
        let mut ws = SolverWorkspace::new();
        ws.prepare(3);
        ws.begin_round();
        ws.set_dist(1, 7);
        assert_eq!(ws.dist_of(1), 7);
        assert_eq!(ws.dist_of(2), INF);
        ws.begin_round();
        assert_eq!(ws.dist_of(1), INF);
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let mut ws = SolverWorkspace::new();
        ws.prepare(2);
        ws.epoch = u32::MAX;
        ws.seen[0] = u32::MAX; // stale stamp from the "previous" epoch
        ws.begin_round();
        assert_eq!(ws.epoch, 1);
        assert_eq!(ws.dist_of(0), INF);
    }

    #[test]
    fn prepare_resizes_between_solves() {
        let mut ws = SolverWorkspace::new();
        ws.prepare(2);
        ws.begin_round();
        ws.set_dist(1, 3);
        ws.prepare(5);
        ws.begin_round();
        assert_eq!(ws.dist_of(1), INF);
        assert_eq!(ws.dist_of(4), INF);
    }
}
