//! Successive-shortest-path min-cost flow with node potentials.
//!
//! Initial potentials come from a single O(V+E) relaxation pass in
//! topological order when the positive-capacity residual graph is a DAG
//! (always true for the allocation networks of `lemra-core`), and from SPFA
//! with a deque otherwise (the general case, including negative arc costs on
//! cyclic networks). After that, reduced costs are non-negative and Dijkstra
//! with a binary heap takes over, terminating early as soon as the sink is
//! settled.
//!
//! All per-node scratch state lives in a [`SolverWorkspace`] reused across
//! augmentations and across solves; see [`min_cost_flow_with`].
//!
//! Arc lower bounds and the fixed flow requirement are reduced to a plain
//! min-cost max-flow between a synthetic super-source and super-sink using
//! the standard excess/deficit transformation; see
//! [`min_cost_flow`] for the contract.

use crate::canon::CacheStamp;
use crate::graph::{FlowNetwork, NodeId};
use crate::residual::{idx, Residual};
use crate::workspace::{with_thread_workspace, SolverWorkspace, INF};
use crate::{FlowSolution, NetflowError};

/// Solves for a minimum-cost flow of **exactly** `target` units from `s` to
/// `t`, honouring arc lower bounds.
///
/// The network may contain negative arc costs but must not contain a
/// directed cycle of negative total cost with positive capacity (the
/// networks produced by `lemra-core` are DAGs, so this always holds there).
///
/// Scratch memory is reused across calls through a per-thread workspace; to
/// control the workspace explicitly (e.g. one per worker in a hand-rolled
/// thread pool), use [`min_cost_flow_with`].
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if no feasible flow of value `target`
///   satisfying all lower bounds exists.
/// * [`NetflowError::NegativeCycle`] if a negative-cost cycle reachable from
///   the source is detected; use
///   [`min_cost_flow_cycle_canceling`](crate::min_cost_flow_cycle_canceling)
///   for such networks.
/// * [`NetflowError::InvalidArc`] / [`NetflowError::Overflow`] if
///   [`FlowNetwork::validate_input`] rejects the instance (bad endpoints,
///   self-loops, negative target, overflow-prone magnitudes).
/// * [`NetflowError::BudgetExceeded`] if a [`SolveBudget`](crate::SolveBudget)
///   installed on the workspace runs out before the solve converges.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{FlowNetwork, min_cost_flow};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, a, b, t) = (net.add_node(), net.add_node(), net.add_node(), net.add_node());
/// net.add_arc(s, a, 1, 0)?;
/// net.add_arc(s, b, 1, 0)?;
/// net.add_arc(a, t, 1, 5)?;
/// net.add_arc(b, t, 1, -2)?;
/// let sol = min_cost_flow(&net, s, t, 1)?;
/// assert_eq!(sol.cost, -2); // prefers the negative-cost route
/// # Ok(())
/// # }
/// ```
pub fn min_cost_flow(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<FlowSolution, NetflowError> {
    with_thread_workspace(|ws| min_cost_flow_with(net, s, t, target, ws))
}

/// [`min_cost_flow`] with an explicit [`SolverWorkspace`].
///
/// Identical contract; the workspace's buffers are reused across calls,
/// which removes all per-solve allocation beyond the residual graph itself.
///
/// # Errors
///
/// Same as [`min_cost_flow`].
pub fn min_cost_flow_with(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
    ws: &mut SolverWorkspace,
) -> Result<FlowSolution, NetflowError> {
    check_endpoints_with(net, s, t, target, ws)?;

    // The guard returns the arena to the pool even if the solve panics, so
    // a contained panic (see `ResilientSolver`) cannot leak the buffers.
    let mut guard = ws.lease_arena();
    let (res, ws) = guard.parts();
    let (super_s, super_t, required) = transform_into(net, s, t, target, res);

    let pushed = ssp_run(res, super_s, super_t, required, ws)?;
    if pushed < required {
        return Err(NetflowError::Infeasible {
            required,
            achieved: pushed,
        });
    }
    Ok(solution_from_residual(net, res, target))
}

/// Result of [`transform`]: a finalized residual graph with the synthetic
/// super-source/super-sink appended and the units that must reach the
/// super-sink for the original problem to be feasible.
pub(crate) struct Transformed {
    /// Finalized residual graph (network arcs plus supply edges).
    pub res: Residual,
    /// Super-source node index (`net.node_count()`).
    pub super_s: usize,
    /// Super-sink node index (`net.node_count() + 1`).
    pub super_t: usize,
    /// Total excess the solve must route from `super_s` to `super_t`.
    pub required: i64,
}

/// Excess/deficit transformation shared by the SSP-family solvers: every
/// lower bound `l` on arc `(u, v)` pre-routes `l` units, leaving `v` with
/// excess `+l` and `u` with deficit `-l`. The requirement "exactly `target`
/// units from `s` to `t`" is a virtual arc `t -> s` with lower bound =
/// capacity = `target`.
pub(crate) fn transform(net: &FlowNetwork, s: NodeId, t: NodeId, target: i64) -> Transformed {
    let mut res = Residual::default();
    let (super_s, super_t, required) = transform_into(net, s, t, target, &mut res);
    Transformed {
        res,
        super_s,
        super_t,
        required,
    }
}

/// [`transform`] into a caller-provided [`Residual`] arena (its buffers are
/// reused; see [`Residual::rebuild_from_network`]). Returns
/// `(super_s, super_t, required)`.
pub(crate) fn transform_into(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
    res: &mut Residual,
) -> (usize, usize, i64) {
    res.build_transformed(net, idx(s), idx(t), target)
}

/// Reconstructs a [`FlowSolution`] (adding back lower bounds) from a solved
/// residual graph.
pub(crate) fn solution_from_residual(
    net: &FlowNetwork,
    res: &Residual,
    value: i64,
) -> FlowSolution {
    let mut flows = Vec::with_capacity(net.arc_count());
    let mut cost = 0i64;
    for (i, arc) in net.arcs_slice().iter().enumerate() {
        let f = res.flow_on(res.edge_of_arc[i]) + arc.lower_bound;
        cost += arc.cost * f;
        flows.push(f);
    }
    FlowSolution { flows, value, cost }
}

/// Shared solve-entry validation: delegates to
/// [`FlowNetwork::validate_input`] so every backend rejects malformed
/// instances identically before building a residual graph.
pub(crate) fn check_endpoints(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<(), NetflowError> {
    net.validate_input(s, t, target)
}

/// [`check_endpoints`] with the per-arc scan memoised in the workspace: the
/// O(1) request checks always run, but the O(arcs) invariant/overflow sweep
/// is skipped when this workspace already validated the same network
/// contents for the same `(s, t)` — sweeps and benches re-solving one
/// network hit that path on every solve after the first.
pub(crate) fn check_endpoints_with(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
    ws: &mut SolverWorkspace,
) -> Result<(), NetflowError> {
    net.validate_request(s, t, target)?;
    let stamp = CacheStamp::of(net, s, t);
    let achievable = match ws.validate_cache {
        Some((cached, a)) if cached == stamp => a,
        _ => {
            let a = net.scan_arcs(s, t)?;
            ws.validate_cache = Some((stamp, a));
            a
        }
    };
    if target > achievable {
        return Err(NetflowError::Infeasible {
            required: target,
            achieved: achievable,
        });
    }
    Ok(())
}

/// Runs primal-dual blocking-flow phases on `res` until `target` units have
/// moved from `s` to `t` or `t` becomes unreachable. Returns the units
/// moved.
///
/// Each phase settles every node within the sink's distance with a full
/// Dijkstra round ([`dijkstra_settle`]), folds those *exact* distances into
/// the potentials, and then pushes a blocking flow over the admissible
/// subgraph — the arcs whose reduced cost is zero. Any admissible `s → t`
/// path telescopes to reduced length exactly `dist_t`, i.e. it is a true
/// shortest path, so the blocking flow sends many shortest paths per
/// Dijkstra round instead of one; exhausting the admissible subgraph
/// guarantees the next round's `dist_t` is strictly larger, so the phase
/// count is bounded by the number of distinct shortest-path lengths.
///
/// `res` must be finalized; `ws` is prepared here.
pub(crate) fn ssp_run(
    res: &mut Residual,
    s: usize,
    t: usize,
    target: i64,
    ws: &mut SolverWorkspace,
) -> Result<i64, NetflowError> {
    ssp_phases(res, s, t, target, ws, "ssp")
}

/// [`ssp_run`] with an explicit backend label for budget incidents — the
/// capacity-scaling solver delegates small-Δ instances here (Δ-scaling
/// degenerates into plain SSP plus pseudo-flow churn when every capacity is
/// tiny) and its budget errors must still report backend `"scaling"`.
pub(crate) fn ssp_phases(
    res: &mut Residual,
    s: usize,
    t: usize,
    target: i64,
    ws: &mut SolverWorkspace,
    backend: &'static str,
) -> Result<i64, NetflowError> {
    ws.prepare(res.node_count());
    initial_potentials(res, s, ws)?;
    let budget = ws.budget;
    let mut rounds = 0u64;
    let mut flow = 0i64;
    // Phase 0 needs no Dijkstra round at all: the initial potentials *are*
    // exact shortest distances, so the zero-reduced-cost subgraph is already
    // the shortest-path DAG and a blocking flow can run on it directly. On
    // the unit-ish targets the allocator produces this one phase usually
    // finishes the whole solve. It still counts against the round budget, so
    // a zero-round budget trips before any flow moves.
    if flow < target && ws.node[t].potential < INF {
        budget.check_rounds(backend, "augment", rounds)?;
        rounds += 1;
        flow += crate::dinic::blocking_flow_admissible(res, s, t, ws, target - flow);
    }
    while flow < target {
        budget.check_rounds(backend, "augment", rounds)?;
        rounds += 1;
        let dist_t = dijkstra_settle(res, s, t, ws)?;
        if dist_t >= INF {
            break;
        }
        update_potentials(ws, dist_t);
        let pushed = crate::dinic::blocking_flow_admissible(res, s, t, ws, target - flow);
        debug_assert!(pushed > 0, "reachable sink must admit a blocking flow");
        flow += pushed;
    }
    Ok(flow)
}

/// Computes initial shortest-path potentials from `s` over positive-capacity
/// residual edges, writing them into `ws.potential` (`INF` = unreachable).
///
/// When the positive-capacity subgraph is a DAG (detected with Kahn's
/// algorithm), one relaxation pass in topological order suffices — O(V+E).
/// Otherwise SPFA with a deque handles negative costs on cyclic networks and
/// reports negative cycles.
pub(crate) fn initial_potentials(
    res: &Residual,
    s: usize,
    ws: &mut SolverWorkspace,
) -> Result<(), NetflowError> {
    potentials_from(res, Some(s), ws)
}

/// Computes a *valid* potential function over positive-capacity residual
/// edges: every arc satisfies `cost + π(u) − π(v) ≥ 0`, with every node
/// finite. Equivalent to shortest paths from a virtual source wired to all
/// nodes at cost 0, so unlike [`initial_potentials`] it never leaves
/// unreachable nodes at `INF` — the form the cost-scaling warm start needs,
/// where reachability from the super-source is irrelevant but validity must
/// hold on every arc.
pub(crate) fn valid_potentials(
    res: &Residual,
    ws: &mut SolverWorkspace,
) -> Result<(), NetflowError> {
    potentials_from(res, None, ws)
}

/// Shared body: `Some(s)` seeds single-source distances, `None` seeds every
/// node at 0 (multi-source).
fn potentials_from(
    res: &Residual,
    source: Option<usize>,
    ws: &mut SolverWorkspace,
) -> Result<(), NetflowError> {
    let n = res.node_count();
    let seed = |ws: &mut SolverWorkspace| match source {
        Some(s) => {
            for st in &mut ws.node[..n] {
                st.potential = INF;
            }
            ws.node[s].potential = 0;
        }
        None => {
            for st in &mut ws.node[..n] {
                st.potential = 0;
            }
        }
    };

    if res.monotone {
        // Fresh transformed graph whose network arcs all ascend in node
        // index: `[super_s, 0, 1, ..]` is already a topological order of the
        // positive-capacity subgraph (supply arcs leave the super-source
        // before every regular node and enter the super-sink after), so one
        // relaxation pass in that order replaces Kahn's algorithm. This is
        // the common case for the allocator's layered networks.
        seed(ws);
        for u in std::iter::once(n - 2).chain(0..n - 2) {
            let du = ws.node[u].potential;
            if du >= INF {
                continue;
            }
            for sl in &res.slots[res.active_slots(u)] {
                if sl.cap > 0 {
                    let v = sl.to as usize;
                    if du + sl.cost < ws.node[v].potential {
                        ws.node[v].potential = du + sl.cost;
                    }
                }
            }
        }
        return Ok(());
    }

    // Kahn's algorithm over edges with residual capacity. Positive-capacity
    // edges all live in the active prefixes (dormant slots are ≤ 0 by the
    // prefix invariant), so scanning active slots visits half the edge array
    // of a fresh graph.
    ws.indegree[..n].fill(0);
    for u in 0..n {
        for slot in res.active_slots(u) {
            if res.slots[slot].cap > 0 {
                ws.indegree[res.slots[slot].to as usize] += 1;
            }
        }
    }
    ws.queue.clear();
    for v in 0..n {
        if ws.indegree[v] == 0 {
            ws.queue.push_back(v as u32);
        }
    }
    ws.order.clear();
    while let Some(u) = ws.queue.pop_front() {
        ws.order.push(u);
        for slot in res.active_slots(u as usize) {
            if res.slots[slot].cap <= 0 {
                continue;
            }
            let v = res.slots[slot].to as usize;
            ws.indegree[v] -= 1;
            if ws.indegree[v] == 0 {
                ws.queue.push_back(v as u32);
            }
        }
    }

    seed(ws);

    if ws.order.len() == n {
        // DAG: one relaxation pass in topological order.
        for i in 0..ws.order.len() {
            let u = ws.order[i] as usize;
            let du = ws.node[u].potential;
            if du >= INF {
                continue;
            }
            for sl in &res.slots[res.active_slots(u)] {
                if sl.cap > 0 {
                    let v = sl.to as usize;
                    if du + sl.cost < ws.node[v].potential {
                        ws.node[v].potential = du + sl.cost;
                    }
                }
            }
        }
        return Ok(());
    }

    // Cyclic: SPFA with a deque (small-label-first) and enqueue counting for
    // negative-cycle detection.
    ws.queue.clear();
    ws.in_queue[..n].fill(false);
    ws.enqueues[..n].fill(0);
    for v in 0..n {
        if ws.node[v].potential < INF {
            ws.queue.push_back(v as u32);
            ws.in_queue[v] = true;
            ws.enqueues[v] = 1;
        }
    }
    let limit = n as u32 + 1;
    while let Some(u) = ws.queue.pop_front() {
        let u = u as usize;
        ws.in_queue[u] = false;
        let du = ws.node[u].potential;
        for slot in res.active_slots(u) {
            if res.slots[slot].cap <= 0 {
                continue;
            }
            let v = res.slots[slot].to as usize;
            let nd = du + res.slots[slot].cost;
            if nd < ws.node[v].potential {
                ws.node[v].potential = nd;
                if !ws.in_queue[v] {
                    ws.enqueues[v] += 1;
                    if ws.enqueues[v] > limit {
                        return Err(NetflowError::NegativeCycle);
                    }
                    // Small-label-first: likely-final labels jump the queue.
                    if ws
                        .queue
                        .front()
                        .is_some_and(|&f| nd < ws.node[f as usize].potential)
                    {
                        ws.queue.push_front(v as u32);
                    } else {
                        ws.queue.push_back(v as u32);
                    }
                    ws.in_queue[v] = true;
                }
            }
        }
    }
    Ok(())
}

/// A Dijkstra round over reduced costs that keeps settling until every node
/// within the sink's distance is exact: popping continues through ties and
/// stops only once a popped key exceeds the sink's settled distance. The
/// potentials updated from these distances are therefore *exact* for every
/// node that can lie on a shortest path, which is what makes zero reduced
/// cost a reliable admissibility test for the blocking-flow phase —
/// early-terminated rounds leave tentative labels whose reduced-cost ties
/// are artifacts.
///
/// Returns the sink's distance (`INF` if unreachable). Does not build the
/// parent tree: callers route flow through the admissible subgraph instead
/// of a single parent path.
///
/// # Errors
///
/// With the `validate` feature, returns [`NetflowError::InvalidSolution`]
/// when a negative reduced cost is encountered.
pub(crate) fn dijkstra_settle(
    res: &Residual,
    s: usize,
    t: usize,
    ws: &mut SolverWorkspace,
) -> Result<i64, NetflowError> {
    ws.begin_round();
    ws.set_dist(s, 0);
    ws.heap.push(0, s as u32);
    let mut dist_t = INF;
    while let Some((d, u)) = ws.heap.pop() {
        if d > dist_t {
            break;
        }
        let u = u as usize;
        if d > ws.dist_of(u) {
            continue;
        }
        if u == t {
            dist_t = d;
            continue;
        }
        let pu = ws.node[u].potential;
        if pu >= INF {
            continue;
        }
        for sl in &res.slots[res.active_slots(u)] {
            if sl.cap <= 0 {
                continue;
            }
            let v = sl.to as usize;
            if ws.node[v].potential >= INF {
                // Nodes the initialisation proved unreachable cannot carry
                // flow to t; new residual edges only appear along augmented
                // (reachable) paths, so skipping them is safe.
                continue;
            }
            let reduced = sl.cost + pu - ws.node[v].potential;
            #[cfg(feature = "validate")]
            if reduced < 0 {
                return Err(NetflowError::InvalidSolution {
                    reason: format!(
                        "negative reduced cost {reduced} on residual edge {} \
                         ({u} -> {v}); potentials are inconsistent",
                        sl.edge
                    ),
                });
            }
            debug_assert!(reduced >= 0, "negative reduced cost");
            let nd = d + reduced;
            if nd < ws.dist_of(v) {
                ws.set_dist(v, nd);
                ws.heap.push(nd, v as u32);
            }
        }
    }
    Ok(dist_t)
}

/// Folds the round's distances into the potentials.
///
/// With early termination only nodes settled before `t` have exact
/// distances; every other node's true distance is at least `dist_t`, so
/// `min(dist, dist_t)` is a valid (and standard) update that keeps all
/// reduced costs non-negative.
pub(crate) fn update_potentials(ws: &mut SolverWorkspace, dist_t: i64) {
    let epoch = ws.epoch;
    for st in &mut ws.node {
        if st.potential < INF {
            let d = if st.stamp == epoch {
                st.dist.min(dist_t)
            } else {
                dist_t
            };
            st.potential += d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (FlowNetwork, NodeId, NodeId) {
        // s -> a -> t (cost 1+1), s -> b -> t (cost 3+3), caps 1 each
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 1).unwrap();
        net.add_arc(a, t, 1, 1).unwrap();
        net.add_arc(s, b, 1, 3).unwrap();
        net.add_arc(b, t, 1, 3).unwrap();
        (net, s, t)
    }

    #[test]
    fn picks_cheaper_path_first() {
        let (net, s, t) = diamond();
        let sol = min_cost_flow(&net, s, t, 1).unwrap();
        assert_eq!(sol.cost, 2);
        assert_eq!(sol.value, 1);
        let sol2 = min_cost_flow(&net, s, t, 2).unwrap();
        assert_eq!(sol2.cost, 8);
    }

    #[test]
    fn infeasible_when_target_exceeds_capacity() {
        let (net, s, t) = diamond();
        let err = min_cost_flow(&net, s, t, 3).unwrap_err();
        assert!(matches!(err, NetflowError::Infeasible { .. }));
    }

    #[test]
    fn zero_target_is_trivially_feasible() {
        let (net, s, t) = diamond();
        let sol = min_cost_flow(&net, s, t, 0).unwrap();
        assert_eq!(sol.cost, 0);
        assert!(sol.flows.iter().all(|&f| f == 0));
    }

    #[test]
    fn negative_costs_on_dag() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 2).unwrap();
        net.add_arc(a, t, 1, -10).unwrap();
        net.add_arc(s, b, 1, 0).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        let sol = min_cost_flow(&net, s, t, 2).unwrap();
        assert_eq!(sol.cost, -8);
    }

    #[test]
    fn lower_bound_forces_expensive_arc() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 1, 1, 100).unwrap();
        net.add_arc(a, t, 1, 0).unwrap();
        net.add_arc(s, b, 1, 0).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        // Without the lower bound a single unit would route via b (cost 0).
        let sol = min_cost_flow(&net, s, t, 1).unwrap();
        assert_eq!(sol.cost, 100);
        assert_eq!(sol.flows[0], 1);
        assert_eq!(sol.value, 1);
    }

    #[test]
    fn lower_bound_infeasible_without_connecting_flow() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        // Arc a->b demands a unit but nothing feeds node a.
        net.add_arc_bounded(a, b, 1, 1, 0).unwrap();
        net.add_arc(s, t, 1, 0).unwrap();
        let err = min_cost_flow(&net, s, t, 1).unwrap_err();
        assert!(matches!(err, NetflowError::Infeasible { .. }));
    }

    #[test]
    fn negative_cycle_detected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, b, 1, -5).unwrap();
        net.add_arc(b, a, 1, -5).unwrap();
        net.add_arc(a, t, 1, 0).unwrap();
        let err = min_cost_flow(&net, s, t, 1).unwrap_err();
        assert!(matches!(err, NetflowError::NegativeCycle));
    }

    #[test]
    fn rejects_equal_endpoints() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        assert!(min_cost_flow(&net, s, s, 1).is_err());
    }

    #[test]
    fn bypass_arc_absorbs_excess_flow() {
        // Mirrors the allocator's s->t bypass: target larger than the useful
        // network, excess routed at cost 0.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, t, 1, -4).unwrap();
        net.add_arc(s, t, 10, 0).unwrap();
        let sol = min_cost_flow(&net, s, t, 8).unwrap();
        assert_eq!(sol.cost, -4);
        assert_eq!(sol.flows[2], 7);
    }

    #[test]
    fn cyclic_positive_network_uses_spfa_path() {
        // A positive-capacity cycle (a <-> b) forces the SPFA fallback; the
        // optimum is still found.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 2, 1).unwrap();
        net.add_arc(a, b, 2, 1).unwrap();
        net.add_arc(b, a, 2, 1).unwrap();
        net.add_arc(b, t, 2, 1).unwrap();
        net.add_arc(a, t, 2, 9).unwrap();
        let sol = min_cost_flow(&net, s, t, 2).unwrap();
        assert_eq!(sol.cost, 6);
    }

    #[test]
    fn explicit_workspace_reuse_across_solves() {
        let mut ws = SolverWorkspace::new();
        let (net, s, t) = diamond();
        for _ in 0..3 {
            assert_eq!(min_cost_flow_with(&net, s, t, 2, &mut ws).unwrap().cost, 8);
        }
        // A differently-sized problem right after: buffers must resize.
        let mut net2 = FlowNetwork::new();
        let nodes = net2.add_nodes(20);
        for w in nodes.windows(2) {
            net2.add_arc(w[0], w[1], 3, 1).unwrap();
        }
        let sol = min_cost_flow_with(&net2, nodes[0], nodes[19], 3, &mut ws).unwrap();
        assert_eq!(sol.cost, 3 * 19);
        assert_eq!(min_cost_flow_with(&net, s, t, 1, &mut ws).unwrap().cost, 2);
    }

    #[cfg(feature = "validate")]
    #[test]
    fn validate_flags_corrupted_potentials() {
        // Build a residual directly and hand the settling round
        // inconsistent potentials: the reduced cost of the only edge
        // becomes negative.
        let mut res = Residual::new(2);
        res.add_edge(0, 1, 1, 5);
        res.finalize();
        let mut ws = SolverWorkspace::new();
        ws.prepare(2);
        ws.node[0].potential = 0;
        ws.node[1].potential = 100; // 5 + 0 - 100 < 0
        let err = dijkstra_settle(&res, 0, 1, &mut ws).unwrap_err();
        assert!(matches!(err, NetflowError::InvalidSolution { .. }));
        assert!(err.to_string().contains("reduced cost"));
    }

    #[cfg(feature = "validate")]
    #[test]
    fn validate_passes_on_well_formed_solves() {
        // End-to-end solves succeed with the check armed.
        let (net, s, t) = diamond();
        assert_eq!(min_cost_flow(&net, s, t, 2).unwrap().cost, 8);
    }
}
