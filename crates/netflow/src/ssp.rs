//! Successive-shortest-path min-cost flow with node potentials.
//!
//! The first shortest-path tree is computed with Bellman–Ford (the allocation
//! networks of `lemra-core` contain negative arc costs), after which reduced
//! costs are non-negative and Dijkstra with a binary heap takes over.
//!
//! Arc lower bounds and the fixed flow requirement are reduced to a plain
//! min-cost max-flow between a synthetic super-source and super-sink using
//! the standard excess/deficit transformation; see
//! [`min_cost_flow`] for the contract.

use crate::graph::{FlowNetwork, NodeId};
use crate::residual::{idx, Residual};
use crate::{FlowSolution, NetflowError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const INF: i64 = i64::MAX / 4;

/// Solves for a minimum-cost flow of **exactly** `target` units from `s` to
/// `t`, honouring arc lower bounds.
///
/// The network may contain negative arc costs but must not contain a
/// directed cycle of negative total cost with positive capacity (the
/// networks produced by `lemra-core` are DAGs, so this always holds there).
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if no feasible flow of value `target`
///   satisfying all lower bounds exists.
/// * [`NetflowError::NegativeCycle`] if a negative-cost cycle reachable from
///   the source is detected; use
///   [`min_cost_flow_cycle_canceling`](crate::min_cost_flow_cycle_canceling)
///   for such networks.
/// * [`NetflowError::InvalidArc`] if `s` or `t` are out of range or equal.
///
/// # Examples
///
/// ```
/// use lemra_netflow::{FlowNetwork, min_cost_flow};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, a, b, t) = (net.add_node(), net.add_node(), net.add_node(), net.add_node());
/// net.add_arc(s, a, 1, 0)?;
/// net.add_arc(s, b, 1, 0)?;
/// net.add_arc(a, t, 1, 5)?;
/// net.add_arc(b, t, 1, -2)?;
/// let sol = min_cost_flow(&net, s, t, 1)?;
/// assert_eq!(sol.cost, -2); // prefers the negative-cost route
/// # Ok(())
/// # }
/// ```
pub fn min_cost_flow(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<FlowSolution, NetflowError> {
    check_endpoints(net, s, t, target)?;

    // Excess/deficit transformation: every lower bound l on arc (u, v)
    // pre-routes l units, leaving v with excess +l and u with deficit -l.
    // The requirement "exactly `target` units from s to t" is a virtual arc
    // t -> s with lower bound = capacity = target.
    let n = net.node_count();
    let mut res = Residual::from_network(net, 2);
    let super_s = n;
    let super_t = n + 1;

    let mut excess = vec![0i64; n];
    for (_, arc) in net.arcs() {
        excess[idx(arc.to)] += arc.lower_bound;
        excess[idx(arc.from)] -= arc.lower_bound;
    }
    excess[idx(s)] += target;
    excess[idx(t)] -= target;

    let mut required = 0i64;
    for (v, &e) in excess.iter().enumerate() {
        if e > 0 {
            res.add_edge(super_s, v, e, 0);
            required += e;
        } else if e < 0 {
            res.add_edge(v, super_t, -e, 0);
        }
    }

    let pushed = ssp_run(&mut res, super_s, super_t, required)?;
    if pushed < required {
        return Err(NetflowError::Infeasible {
            required,
            achieved: pushed,
        });
    }

    Ok(solution_from_residual(net, &res, target))
}

/// Reconstructs a [`FlowSolution`] (adding back lower bounds) from a solved
/// residual graph.
pub(crate) fn solution_from_residual(
    net: &FlowNetwork,
    res: &Residual,
    value: i64,
) -> FlowSolution {
    let base = res.arc_flows();
    let mut flows = Vec::with_capacity(net.arc_count());
    let mut cost = 0i64;
    for (i, (_, arc)) in net.arcs().enumerate() {
        let f = base[i] + arc.lower_bound;
        cost += arc.cost * f;
        flows.push(f);
    }
    FlowSolution { flows, value, cost }
}

pub(crate) fn check_endpoints(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<(), NetflowError> {
    if !net.contains_node(s) || !net.contains_node(t) {
        return Err(NetflowError::InvalidArc {
            reason: format!("source {s} or sink {t} out of range"),
        });
    }
    if s == t {
        return Err(NetflowError::InvalidArc {
            reason: "source and sink must differ".to_owned(),
        });
    }
    if target < 0 {
        return Err(NetflowError::InvalidArc {
            reason: format!("negative flow target {target}"),
        });
    }
    Ok(())
}

/// Runs successive shortest paths on `res` until `target` units have moved
/// from `s` to `t` or `t` becomes unreachable. Returns the units moved.
fn ssp_run(res: &mut Residual, s: usize, t: usize, target: i64) -> Result<i64, NetflowError> {
    let n = res.node_count();
    let mut potential = bellman_ford(res, s)?;
    let mut flow = 0i64;

    while flow < target {
        // Dijkstra on reduced costs.
        let mut dist = vec![INF; n];
        let mut parent_edge = vec![u32::MAX; n];
        let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
        dist[s] = 0;
        heap.push(Reverse((0, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &e in &res.adj[u] {
                let edge = res.edges[e as usize];
                if edge.cap <= 0 {
                    continue;
                }
                let v = edge.to as usize;
                if potential[u] >= INF || potential[v] >= INF {
                    // Unreachable in the Bellman-Ford phase: reachable now
                    // only through new residual edges, whose reduced cost we
                    // cannot trust; Bellman-Ford already proved no flow can
                    // reach t through such nodes initially, and residual
                    // edges only appear along augmented (reachable) paths.
                    continue;
                }
                let nd = d + edge.cost + potential[u] - potential[v];
                debug_assert!(
                    edge.cost + potential[u] - potential[v] >= 0,
                    "negative reduced cost"
                );
                if nd < dist[v] {
                    dist[v] = nd;
                    parent_edge[v] = e;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        if dist[t] >= INF {
            break;
        }
        for (v, p) in potential.iter_mut().enumerate() {
            if dist[v] < INF && *p < INF {
                *p += dist[v];
            }
        }
        // Bottleneck along the path.
        let mut bottleneck = target - flow;
        let mut v = t;
        while v != s {
            let e = parent_edge[v];
            bottleneck = bottleneck.min(res.edges[e as usize].cap);
            v = res.edges[(e ^ 1) as usize].to as usize;
        }
        let mut v = t;
        while v != s {
            let e = parent_edge[v];
            res.push(e, bottleneck);
            v = res.edges[(e ^ 1) as usize].to as usize;
        }
        flow += bottleneck;
    }
    Ok(flow)
}

/// Bellman–Ford from `s`; returns shortest distances usable as initial
/// potentials, or an error if a negative cycle is reachable from `s`.
fn bellman_ford(res: &Residual, s: usize) -> Result<Vec<i64>, NetflowError> {
    let n = res.node_count();
    let mut dist = vec![INF; n];
    dist[s] = 0;
    for round in 0..n {
        let mut changed = false;
        for u in 0..n {
            if dist[u] >= INF {
                continue;
            }
            for &e in &res.adj[u] {
                let edge = res.edges[e as usize];
                if edge.cap <= 0 {
                    continue;
                }
                let v = edge.to as usize;
                if dist[u] + edge.cost < dist[v] {
                    dist[v] = dist[u] + edge.cost;
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(dist);
        }
        if round == n - 1 {
            return Err(NetflowError::NegativeCycle);
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (FlowNetwork, NodeId, NodeId) {
        // s -> a -> t (cost 1+1), s -> b -> t (cost 3+3), caps 1 each
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 1).unwrap();
        net.add_arc(a, t, 1, 1).unwrap();
        net.add_arc(s, b, 1, 3).unwrap();
        net.add_arc(b, t, 1, 3).unwrap();
        (net, s, t)
    }

    #[test]
    fn picks_cheaper_path_first() {
        let (net, s, t) = diamond();
        let sol = min_cost_flow(&net, s, t, 1).unwrap();
        assert_eq!(sol.cost, 2);
        assert_eq!(sol.value, 1);
        let sol2 = min_cost_flow(&net, s, t, 2).unwrap();
        assert_eq!(sol2.cost, 8);
    }

    #[test]
    fn infeasible_when_target_exceeds_capacity() {
        let (net, s, t) = diamond();
        let err = min_cost_flow(&net, s, t, 3).unwrap_err();
        assert!(matches!(err, NetflowError::Infeasible { .. }));
    }

    #[test]
    fn zero_target_is_trivially_feasible() {
        let (net, s, t) = diamond();
        let sol = min_cost_flow(&net, s, t, 0).unwrap();
        assert_eq!(sol.cost, 0);
        assert!(sol.flows.iter().all(|&f| f == 0));
    }

    #[test]
    fn negative_costs_on_dag() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 2).unwrap();
        net.add_arc(a, t, 1, -10).unwrap();
        net.add_arc(s, b, 1, 0).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        let sol = min_cost_flow(&net, s, t, 2).unwrap();
        assert_eq!(sol.cost, -8);
    }

    #[test]
    fn lower_bound_forces_expensive_arc() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 1, 1, 100).unwrap();
        net.add_arc(a, t, 1, 0).unwrap();
        net.add_arc(s, b, 1, 0).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        // Without the lower bound a single unit would route via b (cost 0).
        let sol = min_cost_flow(&net, s, t, 1).unwrap();
        assert_eq!(sol.cost, 100);
        assert_eq!(sol.flows[0], 1);
        assert_eq!(sol.value, 1);
    }

    #[test]
    fn lower_bound_infeasible_without_connecting_flow() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        // Arc a->b demands a unit but nothing feeds node a.
        net.add_arc_bounded(a, b, 1, 1, 0).unwrap();
        net.add_arc(s, t, 1, 0).unwrap();
        let err = min_cost_flow(&net, s, t, 1).unwrap_err();
        assert!(matches!(err, NetflowError::Infeasible { .. }));
    }

    #[test]
    fn negative_cycle_detected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, b, 1, -5).unwrap();
        net.add_arc(b, a, 1, -5).unwrap();
        net.add_arc(a, t, 1, 0).unwrap();
        let err = min_cost_flow(&net, s, t, 1).unwrap_err();
        assert!(matches!(err, NetflowError::NegativeCycle));
    }

    #[test]
    fn rejects_equal_endpoints() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        assert!(min_cost_flow(&net, s, s, 1).is_err());
    }

    #[test]
    fn bypass_arc_absorbs_excess_flow() {
        // Mirrors the allocator's s->t bypass: target larger than the useful
        // network, excess routed at cost 0.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, t, 1, -4).unwrap();
        net.add_arc(s, t, 10, 0).unwrap();
        let sol = min_cost_flow(&net, s, t, 8).unwrap();
        assert_eq!(sol.cost, -4);
        assert_eq!(sol.flows[2], 7);
    }
}
