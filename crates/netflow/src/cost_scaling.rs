//! Goldberg–Tarjan cost-scaling min-cost flow (push-relabel with ε-scaling).
//!
//! The fifth backend: instead of augmenting along shortest paths, maintain a
//! *feasible flow* whose residual reduced costs are kept ≥ −ε for a shrinking
//! ε. Costs are scaled by `n + 1`, ε starts at the largest scaled cost and is
//! divided by [`ALPHA`] per phase; once ε reaches 1 in the scaled domain
//! (i.e. below `1/n` in the original), ε-optimality implies exact optimality,
//! because any residual cycle's cost is an integer multiple of `n + 1` and
//! strictly greater than `−n · ε > −(n + 1)`.
//!
//! Each `refine` phase saturates every negative-reduced-cost residual arc
//! (turning ε·α-optimality into a pseudo-flow that is trivially ε-optimal)
//! and then discharges active nodes FIFO push-relabel style until flow
//! conservation is restored. Three of the heuristics Király–Kovács
//! ("Efficient implementations of minimum-cost flow algorithms",
//! arXiv 1207.6381) found decisive are implemented:
//!
//! * **push-lookahead** — before pushing into a node with no admissible
//!   out-arc, relabel *it* instead; the price drop usually kills the
//!   admissibility of the arc we were about to push, avoiding a
//!   push/push-back ping-pong;
//! * **price refinement** — at each phase start, try to certify that the
//!   current flow is already ε-optimal by solving shortest paths with
//!   lengths `c_p(e) + ε` (a bounded SPFA); success replaces the whole
//!   phase with a price update;
//! * **set-relabel** — every ~`4n` relabels, a backward 0/1-BFS from the
//!   deficit nodes recomputes how many ε-steps each node is from a deficit
//!   and drops prices in bulk (the cost-scaling analogue of max-flow's
//!   global relabelling), followed by a saturation sweep that restores the
//!   ε-optimality invariant on arcs into nodes the BFS could not reach.
//!
//! Two start-state optimisations sit on top (see `cost_scaling_run`): the
//! feasibility max-flow is rolled back via the residual arena's journal and
//! re-seeded as a source/sink imbalance (*pseudo-flow start*, so phase 1
//! routes the requirement instead of un-routing Dinic's cost-blind paths),
//! and prices are *warm-started* from exact shortest-path potentials, after
//! which later phases usually reduce to price-refine certifications. The ε
//! ladder still descends from `cmax` — collapsing it would void the
//! per-phase relabel bound (see the price-war note in `cost_scaling_run`).
//!
//! The solver never reports [`NetflowError::NegativeCycle`]: like cycle
//! cancelling and the network simplex, it handles negative-cost cycles
//! natively by saturating them (they appear as negative reduced costs at
//! ε₀) and charging their cost to the solution.

use crate::dinic::dinic;
use crate::graph::{FlowNetwork, NodeId};
use crate::residual::Residual;
use crate::ssp::{check_endpoints_with, solution_from_residual, transform_into, valid_potentials};
use crate::workspace::{with_thread_workspace, SolverWorkspace};
use crate::{FlowSolution, NetflowError};
use std::collections::VecDeque;

/// ε divisor per refine phase. Király–Kovács report the sweet spot for
/// FIFO push-relabel implementations between 8 and 24.
const ALPHA: i128 = 16;

/// Solves for a minimum-cost flow of exactly `target` units from `s` to
/// `t` with Goldberg–Tarjan cost scaling, honouring arc lower bounds.
///
/// Unlike the SSP-family solvers, negative-cost cycles are handled natively
/// (their flow is part of the minimum-cost solution), so this backend never
/// returns [`NetflowError::NegativeCycle`] — the same contract as cycle
/// cancelling and the network simplex.
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if no feasible flow of value `target`
///   exists.
/// * [`NetflowError::InvalidArc`] for invalid endpoints or target.
/// * [`NetflowError::BudgetExceeded`] under an exhausted
///   [`SolveBudget`](crate::SolveBudget).
///
/// # Examples
///
/// ```
/// use lemra_netflow::{min_cost_flow_cost_scaling, FlowNetwork};
///
/// # fn main() -> Result<(), lemra_netflow::NetflowError> {
/// let mut net = FlowNetwork::new();
/// let (s, a, b, t) = (net.add_node(), net.add_node(), net.add_node(), net.add_node());
/// net.add_arc(s, a, 2, 1)?;
/// net.add_arc(a, t, 2, 1)?;
/// net.add_arc(s, b, 2, 5)?;
/// net.add_arc(b, t, 2, 5)?;
/// let sol = min_cost_flow_cost_scaling(&net, s, t, 2)?;
/// assert_eq!(sol.cost, 4); // both units take the cheap route
/// # Ok(())
/// # }
/// ```
pub fn min_cost_flow_cost_scaling(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<FlowSolution, NetflowError> {
    with_thread_workspace(|ws| min_cost_flow_cost_scaling_with(net, s, t, target, ws))
}

/// [`min_cost_flow_cost_scaling`] with an explicit [`SolverWorkspace`].
///
/// # Errors
///
/// Same as [`min_cost_flow_cost_scaling`].
pub fn min_cost_flow_cost_scaling_with(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
    ws: &mut SolverWorkspace,
) -> Result<FlowSolution, NetflowError> {
    check_endpoints_with(net, s, t, target, ws)?;

    // Leased via guard so the arena returns to the pool even on panic.
    let mut guard = ws.lease_arena();
    let (res, ws) = guard.parts();
    let (super_s, super_t, required) = transform_into(net, s, t, target, res);

    let pushed = cost_scaling_run(res, super_s, super_t, required, ws)?;
    if pushed < required {
        return Err(NetflowError::Infeasible {
            required,
            achieved: pushed,
        });
    }
    Ok(solution_from_residual(net, res, target))
}

/// Feasibility max-flow, then ε-scaling refine phases down to exactness.
/// Returns the units moved from `s` to `t` (the caller maps a shortfall to
/// [`NetflowError::Infeasible`]).
fn cost_scaling_run(
    res: &mut Residual,
    s: usize,
    t: usize,
    required: i64,
    ws: &mut SolverWorkspace,
) -> Result<i64, NetflowError> {
    let n = res.node_count();
    ws.prepare(n);
    let budget = ws.budget;

    // Phase 0 is the cost-blind feasibility max-flow; it counts against the
    // round budget so a zero-round budget trips before any flow moves.
    budget.check_rounds("cost_scaling", "refine", 0)?;
    let achieved = dinic(res, s, t);
    if achieved < required {
        return Ok(achieved);
    }

    // Scaled-cost domain: multiplying by n + 1 makes "ε < 1 original unit"
    // representable as ε = 1, the loop's exact termination point.
    let scale = n as i128 + 1;
    let cmax = res
        .slots
        .iter()
        .map(|sl| (sl.cost as i128).abs())
        .max()
        .unwrap_or(0)
        * scale;
    if cmax == 0 {
        // All costs zero: any feasible flow is optimal.
        return Ok(achieved);
    }

    ws.price.clear();
    ws.price.resize(n, 0);
    ws.excess.clear();
    ws.excess.resize(n, 0);
    ws.cursor.clear();
    ws.cursor.resize(n, 0);

    // The max-flow above only *certifies* feasibility — as a starting point
    // it is poison: it routes cost-blind, and the first refine phase spends
    // most of its pushes undoing that misrouting through backward arcs.
    // Rewind to the pristine zero flow (the journal makes this O(pushes))
    // and seed the requirement as a node imbalance instead, the classic
    // pseudo-flow start; the first refine then routes the requirement along
    // ε-admissible arcs directly. Zero flow is trivially ε₀-optimal. When
    // the journal is unavailable (foreign build path) the balanced max-flow
    // start below remains correct, merely slower.
    let pseudo = res.rollback();
    if pseudo {
        ws.excess[s] = i128::from(required);
        ws.excess[t] = -i128::from(required);
        // Warm-start prices: with zero flow, exact shortest-path potentials
        // (the SSP machinery; one relaxation pass on the DAGs the allocator
        // produces) scale into prices under which *every* residual arc has
        // c_p ≥ 0. Phase 1's saturation sweep then moves nothing and its
        // pushes follow shortest paths from the start; once the flow is
        // balanced the prices stay near-exact, so later phases mostly
        // collapse into `price_refine` certifications. The ε ladder itself
        // is kept at full height: starting it near 1 looks tempting (the
        // start is already 0-optimal) but breaks the O(n·α) relabel bound —
        // a unit-capacity instance whose second-cheapest s→t path costs g
        // more than the cheapest forces a relabel *price war* that walks
        // the whole gap in ε-sized steps, Θ(g/ε) relabels, unbounded by n.
        // With ε₀ = cmax/α every gap is covered in at most n·α steps.
        // `valid_potentials` seeds every node (virtual zero-cost source to
        // all of them), so validity holds on every arc regardless of
        // reachability from the super-source; it only fails on a negative
        // residual cycle, where zero prices (c_p ≥ −cmax by definition)
        // remain the sound ladder start.
        if valid_potentials(res, ws).is_ok() {
            for v in 0..n {
                ws.price[v] = scale * i128::from(ws.node[v].potential);
            }
        }
    }

    // The starting flow is ε₀-optimal for ε₀ = cmax under zero prices (and
    // 0-optimal under warm-started prices).
    let mut eps = cmax;
    let mut phases = 0u64;
    loop {
        eps = (eps / ALPHA).max(1);
        phases += 1;
        budget.check_rounds("cost_scaling", "refine", phases)?;
        // The first phase must run a full refine while the seeded imbalance
        // is outstanding: price refinement only certifies ε-optimality of a
        // *balanced* flow and would skip the discharge that drains it.
        let balanced = phases > 1 || !pseudo;
        if !(balanced && price_refine(res, ws, scale, eps)) {
            refine(res, ws, scale, eps, budget, phases)?;
        }
        if eps == 1 {
            return Ok(achieved);
        }
    }
}

/// Scaled reduced cost of the residual arc stored in `slot` fields, under
/// the workspace prices.
#[inline]
fn reduced(scale: i128, cost: i64, pu: i128, pv: i128) -> i128 {
    scale * cost as i128 + pu - pv
}

/// Tries to certify that the current flow is already ε-optimal by finding
/// prices with `c_p(e) ≥ −ε` on every residual arc: shortest paths from a
/// virtual source over lengths `c_p(e) + ε` (all-zero initial labels). The
/// SPFA is bounded — certifying must stay much cheaper than the refine it
/// replaces — so a hard cap on queue pops makes failure cheap and
/// deterministic; on success the labels fold into the prices and the whole
/// refine phase is skipped.
fn price_refine(res: &Residual, ws: &mut SolverWorkspace, scale: i128, eps: i128) -> bool {
    let n = res.node_count();
    // `price` doubles as the label array: d[v] starts 0 everywhere (virtual
    // source), so labels are price deltas accumulated in a scratch vec.
    let mut d = std::mem::take(&mut ws.dist_scratch);
    d.clear();
    d.resize(n, 0);
    ws.queue.clear();
    ws.in_queue[..n].fill(true);
    for v in 0..n {
        ws.queue.push_back(v as u32);
    }
    let mut pops = 0usize;
    let cap = 4 * n + 16;
    let mut ok = true;
    while let Some(u) = ws.queue.pop_front() {
        pops += 1;
        if pops > cap {
            ok = false;
            break;
        }
        let u = u as usize;
        ws.in_queue[u] = false;
        let du = d[u];
        for sl in &res.slots[res.active_slots(u)] {
            if sl.cap <= 0 {
                continue;
            }
            let v = sl.to as usize;
            let nd = du + reduced(scale, sl.cost, ws.price[u], ws.price[v]) + eps;
            if nd < d[v] {
                d[v] = nd;
                if !ws.in_queue[v] {
                    ws.in_queue[v] = true;
                    ws.queue.push_back(v as u32);
                }
            }
        }
    }
    if ok {
        for (price, dv) in ws.price[..n].iter_mut().zip(&d[..n]) {
            *price += dv;
        }
    }
    ws.dist_scratch = d;
    ok
}

/// One ε-phase: saturate every negative-reduced-cost arc, then FIFO
/// discharge until no node holds positive excess. Establishes ε-optimality.
fn refine(
    res: &mut Residual,
    ws: &mut SolverWorkspace,
    scale: i128,
    eps: i128,
    budget: crate::budget::SolveBudget,
    phases: u64,
) -> Result<(), NetflowError> {
    let n = res.node_count();

    // Saturation: after this, every residual arc has c_p ≥ 0 and all
    // imbalance sits in `ws.excess`.
    saturate(res, ws, scale, i128::MIN, 0);

    ws.queue.clear();
    for u in 0..n {
        ws.cursor[u] = 0;
        ws.in_queue[u] = ws.excess[u] > 0;
        if ws.excess[u] > 0 {
            ws.queue.push_back(u as u32);
        }
    }

    let mut relabels = 0usize;
    let set_relabel_period = (4 * n).max(16);
    while let Some(u) = ws.queue.pop_front() {
        let u = u as usize;
        ws.in_queue[u] = false;
        // Discharge u: push on admissible arcs from the current-arc cursor,
        // relabelling when the arc list is exhausted, until its excess is
        // gone. The cursor range is re-read every step because pushes can
        // activate dormant reverse arcs (growing the active prefix).
        while ws.excess[u] > 0 {
            let range = res.active_slots(u);
            let idx = range.start + ws.cursor[u] as usize;
            if idx >= range.end {
                relabel(res, ws, scale, eps, u);
                relabels += 1;
                if relabels % set_relabel_period == 0 {
                    // Deadline responsiveness inside long phases; the round
                    // count itself only advances per phase.
                    budget.check_rounds("cost_scaling", "discharge", phases)?;
                    set_relabel(res, ws, scale, eps);
                }
                continue;
            }
            let sl = res.slots[idx];
            if sl.cap > 0 {
                let v = sl.to as usize;
                if reduced(scale, sl.cost, ws.price[u], ws.price[v]) < 0 {
                    // Push-lookahead: a node with no admissible out-arc
                    // would bounce the flow straight back after a relabel;
                    // relabelling it *now* usually raises c_p(u→v) above
                    // zero and we skip the push entirely. Deficit nodes
                    // absorb flow and are exempt.
                    if ws.excess[v] >= 0 && !has_admissible(res, ws, scale, v) {
                        relabel(res, ws, scale, eps, v);
                        relabels += 1;
                        if relabels % set_relabel_period == 0 {
                            budget.check_rounds("cost_scaling", "discharge", phases)?;
                            set_relabel(res, ws, scale, eps);
                        }
                        continue;
                    }
                    let amount = sl.cap.min(ws.excess[u].min(i64::MAX as i128) as i64);
                    res.push(sl.edge, amount);
                    ws.excess[u] -= amount as i128;
                    ws.excess[v] += amount as i128;
                    ws.pushed_units += amount as u64;
                    if ws.excess[v] > 0 && !ws.in_queue[v] {
                        ws.in_queue[v] = true;
                        ws.queue.push_back(v as u32);
                    }
                    continue;
                }
            }
            ws.cursor[u] += 1;
        }
    }
    Ok(())
}

/// Saturates every residual arc with reduced cost in `[floor, below)`,
/// i.e. `floor ≤ c_p < below`, shifting the imbalance onto the endpoints
/// and enqueueing nodes that become active. Used with `(MIN, 0)` at phase
/// start and with `(MIN, −ε + 1)` after a set-relabel repair.
fn saturate(res: &mut Residual, ws: &mut SolverWorkspace, scale: i128, floor: i128, below: i128) {
    let n = res.node_count();
    for u in 0..n {
        for slot in res.active_slots(u) {
            let sl = res.slots[slot];
            if sl.cap <= 0 {
                continue;
            }
            let v = sl.to as usize;
            let cp = reduced(scale, sl.cost, ws.price[u], ws.price[v]);
            if cp < floor || cp >= below {
                continue;
            }
            res.push(sl.edge, sl.cap);
            ws.excess[u] -= sl.cap as i128;
            ws.excess[v] += sl.cap as i128;
            ws.pushed_units += sl.cap as u64;
            if ws.excess[v] > 0 && !ws.in_queue[v] {
                ws.in_queue[v] = true;
                ws.queue.push_back(v as u32);
            }
        }
    }
}

/// Standard relabel: drops `price[u]` to the largest value keeping some
/// residual arc admissible (`best arc's c_p = −ε` exactly); resets the
/// current-arc cursor.
fn relabel(res: &Residual, ws: &mut SolverWorkspace, scale: i128, eps: i128, u: usize) {
    let mut best: Option<i128> = None;
    for sl in &res.slots[res.active_slots(u)] {
        if sl.cap > 0 {
            let cand = ws.price[sl.to as usize] - scale * sl.cost as i128;
            best = Some(best.map_or(cand, |b: i128| b.max(cand)));
        }
    }
    ws.price[u] = match best {
        Some(b) => b - eps,
        // An active node always has an incoming pushed arc and hence a
        // residual out-arc; this branch only guards pathological graphs.
        None => ws.price[u] - eps,
    };
    ws.cursor[u] = 0;
}

/// True if `u` has at least one admissible residual out-arc, scanning from
/// its current-arc cursor (arcs before it are inadmissible by the cursor
/// invariant).
fn has_admissible(res: &Residual, ws: &SolverWorkspace, scale: i128, u: usize) -> bool {
    let range = res.active_slots(u);
    let start = range.start + (ws.cursor[u] as usize).min(range.len());
    for sl in &res.slots[start..range.end] {
        if sl.cap > 0 && reduced(scale, sl.cost, ws.price[u], ws.price[sl.to as usize]) < 0 {
            return true;
        }
    }
    false
}

/// Set-relabel (the cost-scaling analogue of max-flow global relabelling):
/// a backward 0/1-BFS from every deficit node counts the ε-steps separating
/// each node from a deficit — admissible arcs cost 0, others 1 — and prices
/// drop in bulk by that count times ε. Valid because the BFS inequality
/// `d[u] ≤ d[v] + len(u→v)` maps exactly onto the ε-optimality constraint.
/// Nodes the BFS cannot reach keep their price; arcs from re-priced nodes
/// into them can fall below −ε, so a saturation sweep over exactly those
/// arcs restores the invariant (their imbalance re-enters the FIFO queue).
fn set_relabel(res: &mut Residual, ws: &mut SolverWorkspace, scale: i128, eps: i128) {
    let n = res.node_count();
    ws.level.clear();
    ws.level.resize(n, u32::MAX);
    let mut dq: VecDeque<u32> = VecDeque::with_capacity(n);
    for v in 0..n {
        if ws.excess[v] < 0 {
            ws.level[v] = 0;
            dq.push_back(v as u32);
        }
    }
    while let Some(v) = dq.pop_front() {
        let v = v as usize;
        let dv = ws.level[v];
        // Incoming residual arcs (u → v) are the partners of v's slots —
        // the *full* slot range, because a dormant forward slot (cap 0)
        // still has a live partner.
        for sl in &res.slots[res.all_slots(v)] {
            let u = sl.to as usize;
            if res.cap_of(sl.edge ^ 1) <= 0 {
                continue;
            }
            // cost(u→v) = −cost(v→u)
            let cp = -(scale * sl.cost as i128) + ws.price[u] - ws.price[v];
            let nd = dv + u32::from(cp >= 0);
            if nd < ws.level[u] {
                ws.level[u] = nd;
                if cp < 0 {
                    dq.push_front(u as u32);
                } else {
                    dq.push_back(u as u32);
                }
            }
        }
    }
    for u in 0..n {
        let d = ws.level[u];
        if d != u32::MAX && d > 0 {
            ws.price[u] -= i128::from(d) * eps;
        }
        // Bulk price changes invalidate every current-arc cursor.
        ws.cursor[u] = 0;
    }
    // Repair: arcs into unreached nodes may now violate c_p ≥ −ε.
    saturate(res, ws, scale, i128::MIN, -eps);
}
