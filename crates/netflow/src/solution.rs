//! Flow solutions: per-arc flows, validation, and path decomposition.

use crate::graph::{ArcId, FlowNetwork, NodeId};
use crate::NetflowError;

/// The result of a flow computation over a [`FlowNetwork`].
///
/// `flows[i]` is the flow on the arc with [`ArcId::index`] `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSolution {
    /// Flow per arc, indexed by [`ArcId::index`].
    pub flows: Vec<i64>,
    /// Net flow delivered from the source to the sink.
    pub value: i64,
    /// Total cost `Σ cost(a) · flow(a)`.
    pub cost: i64,
}

impl FlowSolution {
    /// Flow carried by `arc`.
    ///
    /// # Panics
    ///
    /// Panics if `arc` does not belong to the solved network.
    pub fn flow(&self, arc: ArcId) -> i64 {
        self.flows[arc.index()]
    }

    /// Recomputes the cost of this solution against `net` (used by tests to
    /// confirm the solver's bookkeeping).
    pub fn recompute_cost(&self, net: &FlowNetwork) -> i64 {
        net.arcs()
            .map(|(id, arc)| arc.cost * self.flows[id.index()])
            .sum()
    }

    /// Decomposes the flow into `s`→`t` paths.
    ///
    /// Returns `(arcs-of-path, units)` pairs whose units sum to
    /// [`FlowSolution::value`]. The decomposition is greedy and assumes the
    /// flow is acyclic (always true for the DAG networks built by
    /// `lemra-core`).
    ///
    /// # Errors
    ///
    /// Returns [`NetflowError::CyclicFlow`] if some flow cannot be routed
    /// from `s` (it circulates on a cycle).
    pub fn decompose_paths(
        &self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
    ) -> Result<Vec<(Vec<ArcId>, i64)>, NetflowError> {
        let mut remaining = self.flows.clone();
        // Outgoing arcs per node, with a cursor so each arc is scanned once.
        let mut out: Vec<Vec<ArcId>> = vec![Vec::new(); net.node_count()];
        for (id, arc) in net.arcs() {
            if remaining[id.index()] > 0 {
                out[arc.from.index()].push(id);
            }
        }
        let mut cursor = vec![0usize; net.node_count()];
        let mut paths = Vec::new();
        let mut delivered = 0i64;
        while delivered < self.value {
            let mut path = Vec::new();
            let mut units = i64::MAX;
            let mut v = s;
            while v != t {
                let vi = v.index();
                // Skip exhausted arcs.
                while cursor[vi] < out[vi].len() && remaining[out[vi][cursor[vi]].index()] == 0 {
                    cursor[vi] += 1;
                }
                let Some(&a) = out[vi].get(cursor[vi]) else {
                    return Err(NetflowError::CyclicFlow { stuck_at: v });
                };
                units = units.min(remaining[a.index()]);
                path.push(a);
                v = net.arc(a).to;
                if path.len() > net.arc_count() {
                    return Err(NetflowError::CyclicFlow { stuck_at: v });
                }
            }
            units = units.min(self.value - delivered);
            for &a in &path {
                remaining[a.index()] -= units;
            }
            delivered += units;
            paths.push((path, units));
        }
        Ok(paths)
    }
}

/// Checks that `sol` is a feasible flow of its claimed value and cost on
/// `net`.
///
/// Verifies, for every arc, `lower_bound <= flow <= capacity`; conservation
/// at every node other than `s` and `t`; that the net out-flow of `s` (and
/// in-flow of `t`) equals `sol.value`; and that `sol.cost` matches the
/// recomputed cost.
///
/// # Errors
///
/// Returns a [`NetflowError::InvalidSolution`] describing the first violated
/// condition.
pub fn validate(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    sol: &FlowSolution,
) -> Result<(), NetflowError> {
    if sol.flows.len() != net.arc_count() {
        return Err(invalid(format!(
            "solution has {} flows for {} arcs",
            sol.flows.len(),
            net.arc_count()
        )));
    }
    let mut balance = vec![0i64; net.node_count()];
    for (id, arc) in net.arcs() {
        let f = sol.flows[id.index()];
        if f < arc.lower_bound || f > arc.capacity {
            return Err(invalid(format!(
                "arc {id} flow {f} outside [{}, {}]",
                arc.lower_bound, arc.capacity
            )));
        }
        balance[arc.from.index()] -= f;
        balance[arc.to.index()] += f;
    }
    for (v, &b) in balance.iter().enumerate() {
        if v == s.index() || v == t.index() {
            continue;
        }
        if b != 0 {
            return Err(invalid(format!("node n{v} violates conservation by {b}")));
        }
    }
    if balance[s.index()] != -sol.value {
        return Err(invalid(format!(
            "source emits {} units, solution claims {}",
            -balance[s.index()],
            sol.value
        )));
    }
    if balance[t.index()] != sol.value {
        return Err(invalid(format!(
            "sink absorbs {} units, solution claims {}",
            balance[t.index()],
            sol.value
        )));
    }
    let cost = sol.recompute_cost(net);
    if cost != sol.cost {
        return Err(invalid(format!(
            "cost mismatch: recomputed {cost}, claimed {}",
            sol.cost
        )));
    }
    Ok(())
}

fn invalid(reason: String) -> NetflowError {
    NetflowError::InvalidSolution { reason }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_cost_flow;

    fn solved_diamond() -> (FlowNetwork, NodeId, NodeId, FlowSolution) {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 1).unwrap();
        net.add_arc(a, t, 1, 1).unwrap();
        net.add_arc(s, b, 1, 3).unwrap();
        net.add_arc(b, t, 1, 3).unwrap();
        let sol = min_cost_flow(&net, s, t, 2).unwrap();
        (net, s, t, sol)
    }

    #[test]
    fn validate_accepts_solver_output() {
        let (net, s, t, sol) = solved_diamond();
        validate(&net, s, t, &sol).unwrap();
    }

    #[test]
    fn validate_rejects_tampering() {
        let (net, s, t, sol) = solved_diamond();
        let mut bad = sol.clone();
        bad.flows[0] += 1;
        assert!(validate(&net, s, t, &bad).is_err());
        let mut bad_cost = sol;
        bad_cost.cost += 1;
        assert!(validate(&net, s, t, &bad_cost).is_err());
    }

    #[test]
    fn decompose_covers_value() {
        let (net, s, t, sol) = solved_diamond();
        let paths = sol.decompose_paths(&net, s, t).unwrap();
        assert_eq!(paths.iter().map(|(_, u)| u).sum::<i64>(), 2);
        for (path, _) in &paths {
            assert_eq!(net.arc(path[0]).from, s);
            assert_eq!(net.arc(*path.last().unwrap()).to, t);
        }
    }

    #[test]
    fn decompose_multi_unit_path() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 5, 0).unwrap();
        let sol = min_cost_flow(&net, s, t, 5).unwrap();
        let paths = sol.decompose_paths(&net, s, t).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].1, 5);
    }
}
