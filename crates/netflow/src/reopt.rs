//! Warm-start reoptimisation across a sweep of related solves.
//!
//! Parameter sweeps (the paper's Table 1 frequency sweep, register-file
//! sizing, activity vs. static objectives) solve sequences of min-cost-flow
//! problems that differ only in a few arc costs, capacities or the flow
//! value `F`. Re-solving each point from scratch discards the two artefacts
//! the previous point worked hardest to produce: the optimal residual graph
//! and the node potentials certifying its optimality. A [`Reoptimizer`]
//! keeps both, diffs each incoming network against a snapshot of the last
//! one solved, and repairs optimality instead of rebuilding it:
//!
//! 1. **Apply deltas in place.** Cost changes rewrite the forward/backward
//!    residual edge pair. Capacity changes adjust residual headroom; if the
//!    new capacity is below the flow the arc currently carries, the surplus
//!    is stripped off the arc, leaving an excess at its tail and a deficit
//!    at its head. A changed flow target `F` becomes an excess at `s` and a
//!    deficit at `t` (or the reverse for a decrease).
//! 2. **Re-certify.** Price refinement first: cost drift that does not move
//!    the optimal flow is absorbed into the potentials alone. If negative
//!    residual cycles survive (the optimum genuinely moved), they are
//!    cancelled in place — flow moves only around the cycles the drift
//!    created — and the prices refined again. Only when that still leaves
//!    frozen nodes is a violated edge pushed to saturation, converting the
//!    local optimality violation into flow imbalance. After this pass
//!    reduced-cost optimality holds everywhere again.
//! 3. **Drain the imbalance.** Multi-source Dijkstra rounds over reduced
//!    costs route each unit of excess to the nearest deficit, updating the
//!    potentials exactly like the cold solver's augmentation rounds. Each
//!    round restores part of flow conservation while preserving optimality,
//!    so when the last deficit clears the residual graph is optimal for the
//!    new parameters.
//!
//! The number of Dijkstra rounds is bounded by the imbalance the deltas
//! created — typically a handful — whereas a cold solve pays one round per
//! unit of `F`. That is the asymmetry Király & Kovács (*Efficient
//! implementations of minimum-cost flow algorithms*) identify as dominating
//! practical MCF workloads.
//!
//! **Cold fallback.** The warm path is an optimisation, never a semantic:
//! [`Reoptimizer::solve`] falls back to an ordinary cold solve (retaining
//! its state for the next point) whenever the topology changed (node/arc
//! counts, endpoints, lower bounds), a delta touches a node the previous
//! solve proved unreachable, the imbalance is so large that draining would
//! cost more than resolving, or the drain cannot clear a deficit (the new
//! point is infeasible — the cold solve then produces the authoritative
//! error).
//!
//! # Examples
//!
//! ```
//! use lemra_netflow::{FlowNetwork, Reoptimizer};
//!
//! # fn main() -> Result<(), lemra_netflow::NetflowError> {
//! let mut net = FlowNetwork::new();
//! let (s, a, t) = (net.add_node(), net.add_node(), net.add_node());
//! net.add_arc(s, a, 2, 1)?;
//! let at = net.add_arc(a, t, 2, 1)?;
//! net.add_arc(s, t, 2, 5)?;
//!
//! let mut reopt = Reoptimizer::new();
//! assert_eq!(reopt.solve(&net, s, t, 2)?.cost, 4); // cold
//! net.set_arc_cost(at, 9);                          // sweep point 2
//! assert_eq!(reopt.solve(&net, s, t, 2)?.cost, 10); // warm: reroutes via bypass
//! assert_eq!(reopt.warm_solves(), 1);
//! # Ok(())
//! # }
//! ```

use crate::budget::SolveBudget;
use crate::graph::{FlowNetwork, NodeId};
use crate::residual::Residual;
use crate::ssp::{
    check_endpoints, solution_from_residual, ssp_run, transform, update_potentials, Transformed,
};
use crate::workspace::{SolverWorkspace, INF};
use crate::{FlowSolution, NetflowError};

/// Warm-start solver for sweeps of related min-cost-flow problems.
///
/// Drop-in replacement for calling [`min_cost_flow`](crate::min_cost_flow)
/// once per sweep point: identical contract per call (exact flow of
/// `target` from `s` to `t`, lower bounds honoured, same error conditions),
/// but consecutive calls whose networks differ only in arc costs,
/// capacities or the target reuse the previous solve's residual state. See
/// the [module documentation](self) for the algorithm and the fallback
/// conditions.
#[derive(Debug, Default)]
pub struct Reoptimizer {
    state: Option<State>,
    warm_solves: u64,
    cold_solves: u64,
    budget: SolveBudget,
}

/// Everything retained from the last successful solve.
#[derive(Debug)]
struct State {
    /// Residual graph of the transformed problem, holding the optimal flow.
    res: Residual,
    /// Workspace whose `potential` certifies `res`'s optimality.
    ws: SolverWorkspace,
    /// The network as last solved; diffed against each incoming network.
    snapshot: FlowNetwork,
    s: usize,
    t: usize,
    target: i64,
    /// Scratch: per-node flow imbalance while repairing (length = residual
    /// node count, zeroed between solves).
    excess: Vec<i64>,
    /// Scratch: indices of arcs with applied deltas this solve.
    touched: Vec<u32>,
    /// Re-prove the reduced-cost certificate on *every* residual edge in
    /// the next warm attempt (set after a potential rescale, whose rounding
    /// may leave stray violations on otherwise untouched edges).
    recheck_all: bool,
}

/// Outcome of a warm attempt: a finished solution, or a request to fall
/// back to the cold path (which rebuilds all state from the new network).
enum Warm {
    Done(FlowSolution),
    Fallback,
}

impl Reoptimizer {
    /// A reoptimizer with no retained state; the first solve is cold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves `net` for exactly `target` units from `s` to `t` — warm if the
    /// network differs from the previous call only by arc cost/capacity
    /// deltas or a target change, cold otherwise.
    ///
    /// # Errors
    ///
    /// Same as [`min_cost_flow`](crate::min_cost_flow); infeasibility and
    /// negative-cycle errors are always diagnosed by a cold solve, so the
    /// error values are identical to the cold path's. After an error the
    /// retained state is dropped and the next call starts cold.
    pub fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
    ) -> Result<FlowSolution, NetflowError> {
        check_endpoints(net, s, t, target)?;
        if let Some(state) = self.state.as_mut() {
            state.ws.budget = self.budget;
            match state.try_warm(net, s, t, target) {
                Ok(Warm::Done(sol)) => {
                    self.warm_solves += 1;
                    return Ok(sol);
                }
                // The warm attempt may have already mutated the residual
                // graph; the cold path below rebuilds every piece of state
                // from `net`, so a fallback is always safe.
                Ok(Warm::Fallback) => {}
                Err(e) => {
                    self.state = None;
                    return Err(e);
                }
            }
        }
        self.cold(net, s, t, target)
    }

    /// Number of calls answered from retained state.
    pub fn warm_solves(&self) -> u64 {
        self.warm_solves
    }

    /// Whether solver state is currently retained, i.e. the next compatible
    /// solve repairs instead of rebuilding. The cross-request cache consults
    /// this before adopting donated state: a reoptimizer that is already
    /// warm keeps its own state (intra-context reuse beats adoption).
    pub fn is_warm(&self) -> bool {
        self.state.is_some()
    }

    /// Installs a [`SolveBudget`] governing every subsequent solve (warm
    /// repairs and cold rebuilds alike), returning the previous budget.
    pub fn set_budget(&mut self, budget: SolveBudget) -> SolveBudget {
        std::mem::replace(&mut self.budget, budget)
    }

    /// Drops all retained solver state so the next call starts cold, keeping
    /// the warm/cold counters. Call this after a contained backend panic or
    /// an aborted solve: the retained residual may be mid-mutation, and a
    /// fresh cold solve is the only state guaranteed consistent.
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Number of calls that (re)built state from scratch.
    pub fn cold_solves(&self) -> u64 {
        self.cold_solves
    }

    /// Cumulative shortest-path effort of the retained workspace (zero while
    /// no state is retained; counters survive warm/cold transitions because
    /// the workspace's buffers are reused across them).
    pub fn stats(&self) -> crate::SolverStats {
        self.state
            .as_ref()
            .map(|s| s.ws.stats())
            .unwrap_or_default()
    }

    fn cold(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
    ) -> Result<FlowSolution, NetflowError> {
        self.cold_solves += 1;
        // Reuse the previous workspace's buffers; drop the rest of the state
        // so an error below cannot leave a stale snapshot behind.
        let mut ws = match self.state.take() {
            Some(state) => state.ws,
            None => SolverWorkspace::new(),
        };
        ws.budget = self.budget;
        let Transformed {
            mut res,
            super_s,
            super_t,
            required,
        } = transform(net, s, t, target);
        let pushed = ssp_run(&mut res, super_s, super_t, required, &mut ws)?;
        if pushed < required {
            return Err(NetflowError::Infeasible {
                required,
                achieved: pushed,
            });
        }
        let sol = solution_from_residual(net, &res, target);
        self.state = Some(State {
            res,
            ws,
            snapshot: net.clone(),
            s: s.index(),
            t: t.index(),
            target,
            excess: Vec::new(),
            touched: Vec::new(),
            recheck_all: false,
        });
        Ok(sol)
    }

    /// Hints that the next network's costs are approximately the previous
    /// ones times `ratio` — e.g. a caller re-quantised its cost encoding
    /// between sweep points. Retained potentials are scaled to match, so
    /// reduced costs keep their old magnitudes and the next warm repair
    /// stays a repair instead of degenerating into a near-full re-solve.
    /// The next warm attempt re-proves the optimality certificate on every
    /// residual edge, so an imprecise ratio costs time, never correctness.
    /// No-op without retained state or when `ratio` is 1 or unusable.
    pub fn costs_rescaled(&mut self, ratio: f64) {
        if !ratio.is_finite() || ratio <= 0.0 || ratio == 1.0 {
            return;
        }
        if let Some(state) = self.state.as_mut() {
            for st in state.ws.node.iter_mut() {
                if st.potential < INF {
                    st.potential = (st.potential as f64 * ratio).round() as i64;
                }
            }
            state.recheck_all = true;
        }
    }

    /// Per-arc variant of [`Self::costs_rescaled`] for sweeps whose arc
    /// costs do not all move by one factor — e.g. an operating-point change
    /// that derates memory-access terms but leaves register terms alone.
    /// `ratio_of(i)` is the expected cost ratio of arc `i` (indices of the
    /// snapshot network, i.e. the network last solved). A potential tracks
    /// the magnitude of the costs around its node, so each node is scaled
    /// by the |cost|-weighted blend of its incident arcs' ratios; nodes
    /// with no weighted incident arc — and the flow transform's super
    /// nodes — use the global blend. Non-finite, non-positive or zero-cost
    /// entries contribute nothing. Like the uniform variant, an imprecise
    /// hint costs repair time, never correctness: the next warm attempt
    /// re-proves the certificate on every residual edge.
    pub fn costs_rescaled_per_arc(&mut self, ratio_of: impl Fn(usize) -> f64) {
        let Some(state) = self.state.as_mut() else {
            return;
        };
        let n = state.snapshot.node_count();
        let mut weight = vec![0.0f64; n];
        let mut scaled = vec![0.0f64; n];
        let (mut total_w, mut total_s) = (0.0f64, 0.0f64);
        for (id, arc) in state.snapshot.arcs() {
            let r = ratio_of(id.index());
            if !r.is_finite() || r <= 0.0 {
                continue;
            }
            let w = arc.cost.unsigned_abs() as f64;
            if w == 0.0 {
                continue;
            }
            for v in [arc.from.index(), arc.to.index()] {
                weight[v] += w;
                scaled[v] += w * r;
            }
            total_w += w;
            total_s += w * r;
        }
        if total_w == 0.0 {
            return;
        }
        let global = total_s / total_w;
        for (v, st) in state.ws.node.iter_mut().enumerate() {
            if st.potential >= INF {
                continue;
            }
            let r = if v < n && weight[v] > 0.0 {
                scaled[v] / weight[v]
            } else {
                global
            };
            st.potential = (st.potential as f64 * r).round() as i64;
        }
        state.recheck_all = true;
    }
}

impl State {
    /// Attempts to repair the retained optimum for `net`. `Ok(Fallback)`
    /// requests a cold solve; `Err` is only produced by the `validate`
    /// feature's invariant checks.
    fn try_warm(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
    ) -> Result<Warm, NetflowError> {
        if net.node_count() != self.snapshot.node_count()
            || net.arc_count() != self.snapshot.arc_count()
            || s.index() != self.s
            || t.index() != self.t
        {
            return Ok(Warm::Fallback);
        }
        self.touched.clear();
        for ((_, old), (id, new)) in self.snapshot.arcs().zip(net.arcs()) {
            if old.from != new.from || old.to != new.to || old.lower_bound != new.lower_bound {
                return Ok(Warm::Fallback);
            }
            if old.cost != new.cost || old.capacity != new.capacity {
                // A delta incident to a node the initial-potential pass
                // proved unreachable has no trustworthy reduced cost.
                if self.ws.node[new.from.index()].potential >= INF
                    || self.ws.node[new.to.index()].potential >= INF
                {
                    return Ok(Warm::Fallback);
                }
                self.touched.push(id.index() as u32);
            }
        }
        let df = target - self.target;
        if df != 0
            && (self.ws.node[self.s].potential >= INF || self.ws.node[self.t].potential >= INF)
        {
            return Ok(Warm::Fallback);
        }
        if self.touched.is_empty() && df == 0 && !self.recheck_all {
            // Identical problem: the retained residual already holds its
            // optimal flow.
            return Ok(Warm::Done(solution_from_residual(net, &self.res, target)));
        }

        // Step 1: apply the deltas in place, recording any imbalance.
        self.excess.clear();
        self.excess.resize(self.res.node_count(), 0);
        for &i in &self.touched {
            let old = self.snapshot.arc(crate::ArcId(i));
            let new = net.arc(crate::ArcId(i));
            let e = self.res.edge_of_arc[i as usize];
            if old.cost != new.cost {
                self.res.set_cost_of(e, new.cost);
                self.res.set_cost_of(e ^ 1, -new.cost);
            }
            if old.capacity != new.capacity {
                // Residual capacities are in the lower-bound-reduced space.
                let headroom = new.capacity - new.lower_bound;
                let flow = self.res.flow_on(e);
                if headroom >= flow {
                    self.res.set_cap_of(e, headroom - flow);
                } else {
                    // The arc now carries more than it may: strip the
                    // surplus, leaving an excess at the tail to re-route.
                    self.res.set_cap_of(e, 0);
                    self.res.set_cap_of(e ^ 1, headroom);
                    let stripped = flow - headroom;
                    self.excess[self.res.tail(e)] += stripped;
                    self.excess[self.res.head(e)] -= stripped;
                }
            }
        }
        if df != 0 {
            // "Exactly target units from s to t" is a virtual t -> s arc of
            // that value; changing it imbalances s and t directly. A
            // decrease (df < 0) symmetrically asks the drain to return flow
            // from t to s through backward residual edges.
            self.excess[self.s] += df;
            self.excess[self.t] -= df;
        }

        // Step 2: re-certify. Price refinement first — cost drift that does
        // not change the optimal flow (the common case on a parameter
        // sweep) is absorbed into the potentials without disturbing the
        // flow at all. If violations survive the sweeps (a negative
        // residual cycle: the optimum genuinely moved), cancel the cycles
        // in place — flow moves only where the optimum did — and refine
        // again; only when even that leaves frozen nodes (relaxation
        // chains deeper than the refinement budget, or a region the
        // potentials never covered) fall back to saturating the negative
        // edges so the drain can re-route them. After either pass all
        // positive-capacity residual edges between reachable nodes have
        // non-negative reduced cost again.
        self.recheck_all = false;
        if !self.refine_prices() && !self.cancel_retained_cycles()? {
            for e in 0..self.res.slots.len() as u32 {
                self.saturate_if_negative(e);
            }
        }

        // A delta batch that unbalances a large fraction of the network
        // would spend more Dijkstra rounds draining than a cold solve
        // spends augmenting; hand those to the cold path.
        let surplus: i64 = self.excess.iter().filter(|&&x| x > 0).sum();
        let budget = (net.arc_count() as i64 / 4).max(16) + target.max(0);
        if surplus > budget {
            return Ok(Warm::Fallback);
        }

        // Step 3: drain the imbalance along shortest reduced-cost paths.
        if !self.drain()? {
            // Some deficit is unreachable: the new point is infeasible.
            // Fall back so the cold solve produces the authoritative
            // required/achieved figures.
            return Ok(Warm::Fallback);
        }

        self.target = target;
        self.snapshot.clone_from(net);
        let sol = solution_from_residual(net, &self.res, target);
        #[cfg(feature = "validate")]
        self.audit()?;
        Ok(Warm::Done(sol))
    }

    /// Queue-driven Bellman–Ford relaxation restoring the reduced-cost
    /// certificate by *lowering potentials*: a violated edge `u → v` gets
    /// `π_v = π_u + c(e)`, the largest value satisfying it. Violations with
    /// no negative residual cycle through them converge this way — the
    /// retained flow stays optimal and no excess is created. A node on (or
    /// fed by) a negative residual cycle would be lowered forever; after
    /// [`Self::MAX_RELAX`] lowerings a node is frozen instead, bounding how
    /// far cycle-driven lowering can deflate the prices (unbounded lowering
    /// makes *more* edges look negative at saturation time, inflating the
    /// drain far beyond the genuine flow change). Returns `true` when the
    /// queue drains with no node frozen — the certificate holds and no flow
    /// has to move; `false` otherwise, and the caller saturates whatever is
    /// still negative so the drain can re-route it.
    fn refine_prices(&mut self) -> bool {
        // The shared refinement works on a plain potential slice (the
        // parallel join pass has no `NodeState` array); copy out and back.
        let n = self.res.node_count();
        let mut pot: Vec<i64> = self.ws.node[..n].iter().map(|st| st.potential).collect();
        let ok = refine_prices_raw(&self.res, &mut pot);
        for (st, &p) in self.ws.node[..n].iter_mut().zip(&pot) {
            st.potential = p;
        }
        ok
    }

    /// Fallback for a failed price refinement: cancels every negative
    /// residual cycle directly on the retained residual, then refines
    /// again. A cycle push moves flow only around cycles the cost drift
    /// actually created — unlike saturating each violated edge, which
    /// converts whole swaths of the graph into excess for the drain to
    /// re-route (the over-routing a sweep's drained-unit counters used to
    /// show). Cancellation is free to route through *any* node, so it is
    /// only sound when the potentials cover all of them — an uncovered
    /// node would dodge the re-refined certificate; returns `false` (the
    /// caller saturates instead) in that case or when the re-refinement
    /// still freezes.
    ///
    /// # Errors
    ///
    /// [`NetflowError::BudgetExceeded`] from the cancellation pass when the
    /// workspace carries a budget; the parked potentials are restored before
    /// the error propagates, so the state stays internally consistent.
    fn cancel_retained_cycles(&mut self) -> Result<bool, NetflowError> {
        if self.ws.node.iter().any(|st| st.potential >= INF) {
            return Ok(false);
        }
        // The cancellation machinery re-prepares the workspace, which
        // resets potentials; park them across the call. This is a rare
        // fallback path, so the copy out and back is fine.
        let saved: Vec<i64> = self.ws.node.iter().map(|st| st.potential).collect();
        let outcome = crate::cycle_cancel::cancel_all_negative_cycles(&mut self.res, &mut self.ws);
        for (st, &p) in self.ws.node.iter_mut().zip(&saved) {
            st.potential = p;
        }
        outcome?;
        Ok(self.refine_prices())
    }

    /// Saturates residual edge `e` if its reduced cost is negative,
    /// recording the imbalance, exactly like the cold solver's
    /// initialisation treats negative arcs. Edges incident to nodes the
    /// potentials never covered are out of bounds, as everywhere else.
    fn saturate_if_negative(&mut self, e: u32) {
        let cap = self.res.cap_of(e);
        if cap <= 0 {
            return;
        }
        let u = self.res.tail(e);
        let v = self.res.head(e);
        let (pu, pv) = (self.ws.node[u].potential, self.ws.node[v].potential);
        if pu >= INF || pv >= INF {
            return;
        }
        if self.res.cost_of(e) + pu - pv < 0 {
            self.res.push(e, cap);
            self.excess[u] -= cap;
            self.excess[v] += cap;
        }
    }

    /// Routes every positive excess to a deficit along shortest
    /// reduced-cost paths (multi-source Dijkstra per round, potentials
    /// updated like the cold solver's rounds). Returns `false` if a deficit
    /// cannot be reached — the repaired problem is infeasible.
    fn drain(&mut self) -> Result<bool, NetflowError> {
        let budget = self.ws.budget;
        let mut rounds = 0u64;
        loop {
            budget.check_rounds("reopt", "drain", rounds)?;
            rounds += 1;
            self.ws.begin_round();
            let mut balanced = true;
            for v in 0..self.excess.len() {
                if self.excess[v] > 0 {
                    if self.ws.node[v].potential >= INF {
                        // Imbalance in a region the potentials never
                        // covered; only synthetic states could produce
                        // this — refuse rather than guess.
                        return Ok(false);
                    }
                    self.ws.set_dist(v, 0);
                    self.ws.parent_edge[v] = u32::MAX;
                    self.ws.bottleneck_to[v] = self.excess[v];
                    self.ws.heap.push(0, v as u32);
                    balanced = false;
                }
            }
            if balanced {
                return Ok(true);
            }
            let Some((sink, dist)) = self.drain_round()? else {
                return Ok(false);
            };
            update_potentials(&mut self.ws, dist);
            let amount = self.ws.bottleneck_to[sink].min(-self.excess[sink]);
            debug_assert!(amount > 0);
            let mut v = sink;
            while self.ws.parent_edge[v] != u32::MAX {
                let e = self.ws.parent_edge[v];
                self.res.push(e, amount);
                v = self.res.tail(e);
            }
            self.ws.pushed_units += amount as u64;
            self.excess[v] -= amount;
            self.excess[sink] += amount;
        }
    }

    /// One Dijkstra round from the pre-seeded excess frontier, stopping at
    /// the first settled deficit node. Returns `(node, distance)`, or `None`
    /// if no deficit is reachable.
    fn drain_round(&mut self) -> Result<Option<(usize, i64)>, NetflowError> {
        while let Some((d, u)) = self.ws.heap.pop() {
            let u = u as usize;
            if d > self.ws.dist_of(u) {
                continue;
            }
            if self.excess[u] < 0 {
                return Ok(Some((u, d)));
            }
            let pu = self.ws.node[u].potential;
            if pu >= INF {
                continue;
            }
            let bu = self.ws.bottleneck_to[u];
            for slot in self.res.active_slots(u) {
                let cap = self.res.slots[slot].cap;
                if cap <= 0 {
                    continue;
                }
                let v = self.res.slots[slot].to as usize;
                if self.ws.node[v].potential >= INF {
                    // Same reasoning as the cold solver's rounds: nodes the
                    // initialisation proved unreachable stay out of bounds.
                    continue;
                }
                let reduced = self.res.slots[slot].cost + pu - self.ws.node[v].potential;
                #[cfg(feature = "validate")]
                if reduced < 0 {
                    return Err(NetflowError::InvalidSolution {
                        reason: format!(
                            "negative reduced cost {reduced} on residual edge {} \
                             ({u} -> {v}) after delta application",
                            self.res.slots[slot].edge
                        ),
                    });
                }
                debug_assert!(reduced >= 0, "negative reduced cost in drain");
                let nd = d + reduced;
                if nd < self.ws.dist_of(v) {
                    self.ws.set_dist(v, nd);
                    self.ws.parent_edge[v] = self.res.slots[slot].edge;
                    self.ws.bottleneck_to[v] = bu.min(cap);
                    self.ws.heap.push(nd, v as u32);
                }
            }
        }
        Ok(None)
    }

    /// Full reduced-cost optimality audit of the retained residual graph —
    /// the invariant every warm solve must re-establish.
    #[cfg(feature = "validate")]
    fn audit(&self) -> Result<(), NetflowError> {
        for u in 0..self.res.node_count() {
            let pu = self.ws.node[u].potential;
            if pu >= INF {
                continue;
            }
            for slot in self.res.active_slots(u) {
                if self.res.slots[slot].cap <= 0 {
                    continue;
                }
                let v = self.res.slots[slot].to as usize;
                if self.ws.node[v].potential >= INF {
                    continue;
                }
                let reduced = self.res.slots[slot].cost + pu - self.ws.node[v].potential;
                if reduced < 0 {
                    return Err(NetflowError::InvalidSolution {
                        reason: format!(
                            "warm solve left negative reduced cost {reduced} on edge {u} -> {v}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Queue-driven Bellman–Ford relaxation restoring the reduced-cost
/// certificate by *lowering potentials*: a violated edge `u → v` gets
/// `π_v = π_u + c(e)`, the largest value satisfying it. Violations with
/// no negative residual cycle through them converge this way — the
/// retained flow stays optimal and no excess is created. A node on (or
/// fed by) a negative residual cycle would be lowered forever; after
/// `MAX_RELAX` lowerings a node is frozen instead, bounding how far
/// cycle-driven lowering can deflate the prices (unbounded lowering makes
/// *more* edges look negative at saturation time, inflating the repair far
/// beyond the genuine flow change). Returns `true` when the queue drains
/// with no node frozen — `pot` is then a valid potential and the current
/// flow is optimal at its value; `false` otherwise.
///
/// Shared between [`Reoptimizer`]'s warm-start repair and the decomposed
/// parallel path's join pass, which is why it takes a plain slice rather
/// than the workspace `NodeState` array.
pub(crate) fn refine_prices_raw(res: &Residual, pot: &mut [i64]) -> bool {
    // A node lowered this many times sits on or behind a negative
    // cycle; genuine propagation chains re-lower a node only when
    // distinct violation fronts meet, which a small constant covers.
    const MAX_RELAX: u8 = 8;
    let n = res.node_count();
    let mut lowered = vec![0u8; n];
    let mut in_queue = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut frozen = false;
    // One full sweep seeds the queue with every violated edge's head;
    // after that, work is proportional to the affected region.
    let relax = |u: usize,
                 pot: &mut [i64],
                 queue: &mut std::collections::VecDeque<u32>,
                 lowered: &mut [u8],
                 in_queue: &mut [bool],
                 frozen: &mut bool| {
        let pu = pot[u];
        if pu >= INF {
            return;
        }
        for slot in res.active_slots(u) {
            if res.slots[slot].cap <= 0 {
                continue;
            }
            let v = res.slots[slot].to as usize;
            if pot[v] >= INF {
                continue;
            }
            let bound = pu + res.slots[slot].cost;
            if bound < pot[v] {
                if lowered[v] >= MAX_RELAX {
                    *frozen = true;
                    continue;
                }
                lowered[v] += 1;
                pot[v] = bound;
                if !in_queue[v] {
                    in_queue[v] = true;
                    queue.push_back(v as u32);
                }
            }
        }
    };
    for u in 0..n {
        relax(u, pot, &mut queue, &mut lowered, &mut in_queue, &mut frozen);
    }
    // Each pop scans one node's slots; the cap over all pops is
    // MAX_RELAX enqueues per node, so the total work is bounded by
    // MAX_RELAX full sweeps even in the worst case.
    while let Some(u) = queue.pop_front() {
        let u = u as usize;
        in_queue[u] = false;
        relax(u, pot, &mut queue, &mut lowered, &mut in_queue, &mut frozen);
    }
    !frozen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{min_cost_flow, validate, ArcId};

    /// s -> a -> t and a bypass s -> t, everything capacity 2.
    fn sweep_net() -> (FlowNetwork, NodeId, NodeId, ArcId, ArcId, ArcId) {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        let sa = net.add_arc(s, a, 2, 1).unwrap();
        let at = net.add_arc(a, t, 2, 1).unwrap();
        let st = net.add_arc(s, t, 2, 5).unwrap();
        (net, s, t, sa, at, st)
    }

    fn assert_matches_cold(
        reopt: &mut Reoptimizer,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        f: i64,
    ) {
        let warm = reopt.solve(net, s, t, f);
        let cold = min_cost_flow(net, s, t, f);
        match (warm, cold) {
            (Ok(w), Ok(c)) => {
                assert_eq!(w.cost, c.cost, "objective diverged");
                assert_eq!(w.value, c.value);
                validate(net, s, t, &w).unwrap();
            }
            (Err(w), Err(c)) => assert_eq!(w, c, "errors diverged"),
            (w, c) => panic!("feasibility diverged: warm {w:?} vs cold {c:?}"),
        }
    }

    #[test]
    fn cost_increase_reroutes_warm() {
        let (mut net, s, t, _, at, _) = sweep_net();
        let mut reopt = Reoptimizer::new();
        assert_eq!(reopt.solve(&net, s, t, 2).unwrap().cost, 4);
        net.set_arc_cost(at, 9);
        let sol = reopt.solve(&net, s, t, 2).unwrap();
        assert_eq!(sol.cost, 10); // both units via the bypass now
        validate(&net, s, t, &sol).unwrap();
        assert_eq!(reopt.warm_solves(), 1);
        assert_eq!(reopt.cold_solves(), 1);
    }

    #[test]
    fn cost_decrease_attracts_flow_warm() {
        let (mut net, s, t, _, _, st) = sweep_net();
        let mut reopt = Reoptimizer::new();
        assert_eq!(reopt.solve(&net, s, t, 2).unwrap().cost, 4);
        net.set_arc_cost(st, 0);
        let sol = reopt.solve(&net, s, t, 2).unwrap();
        assert_eq!(sol.cost, 0);
        validate(&net, s, t, &sol).unwrap();
        assert_eq!(reopt.warm_solves(), 1);
    }

    #[test]
    fn capacity_cut_below_current_flow_strips_and_reroutes() {
        let (mut net, s, t, sa, _, _) = sweep_net();
        let mut reopt = Reoptimizer::new();
        assert_eq!(reopt.solve(&net, s, t, 2).unwrap().cost, 4);
        net.set_arc_capacity(sa, 1).unwrap();
        let sol = reopt.solve(&net, s, t, 2).unwrap();
        assert_eq!(sol.cost, 2 + 5); // one unit stays on a, one rerouted
        validate(&net, s, t, &sol).unwrap();
        assert_eq!(reopt.warm_solves(), 1);
    }

    #[test]
    fn target_changes_route_through_existing_state() {
        let (net, s, t, ..) = sweep_net();
        let mut reopt = Reoptimizer::new();
        for f in [1, 3, 2, 4, 0, 2] {
            assert_matches_cold(&mut reopt, &net, s, t, f);
        }
        assert!(reopt.warm_solves() >= 4);
    }

    #[test]
    fn identical_problem_resolves_without_work() {
        let (net, s, t, ..) = sweep_net();
        let mut reopt = Reoptimizer::new();
        let first = reopt.solve(&net, s, t, 2).unwrap();
        let second = reopt.solve(&net, s, t, 2).unwrap();
        assert_eq!(first.flows, second.flows);
        assert_eq!(reopt.warm_solves(), 1);
    }

    #[test]
    fn per_arc_rescale_keeps_sweep_warm_and_exact() {
        let (mut net, s, t, sa, at, st) = sweep_net();
        let mut reopt = Reoptimizer::new();
        assert_eq!(reopt.solve(&net, s, t, 2).unwrap().cost, 4);
        // Double the chain-path costs, leave the bypass alone — the shape a
        // per-class hint describes exactly.
        net.set_arc_cost(sa, 2);
        net.set_arc_cost(at, 2);
        let bypass = st.index();
        reopt.costs_rescaled_per_arc(|i| if i == bypass { 1.0 } else { 2.0 });
        assert_matches_cold(&mut reopt, &net, s, t, 2);
        assert_eq!(reopt.warm_solves(), 1);
    }

    #[test]
    fn unusable_per_arc_hints_are_harmless() {
        let (mut net, s, t, _, at, _) = sweep_net();
        let mut reopt = Reoptimizer::new();
        reopt.solve(&net, s, t, 2).unwrap();
        net.set_arc_cost(at, 9);
        // A nonsense hint may cost repair time, never correctness.
        reopt.costs_rescaled_per_arc(|i| if i % 2 == 0 { f64::NAN } else { -3.0 });
        assert_matches_cold(&mut reopt, &net, s, t, 2);
    }

    #[test]
    fn topology_change_falls_back_cold() {
        let (net, s, t, ..) = sweep_net();
        let mut reopt = Reoptimizer::new();
        reopt.solve(&net, s, t, 2).unwrap();
        let mut bigger = net.clone();
        let b = bigger.add_node();
        bigger.add_arc(s, b, 1, 0).unwrap();
        bigger.add_arc(b, t, 1, 0).unwrap();
        let sol = reopt.solve(&bigger, s, t, 2).unwrap();
        assert_eq!(sol.cost, 2); // s->b->t (0) + s->a->t (2)... cheapest two units
        assert_eq!(reopt.warm_solves(), 0);
        assert_eq!(reopt.cold_solves(), 2);
    }

    #[test]
    fn infeasible_point_mid_sweep_then_recovery() {
        let (mut net, s, t, sa, at, st) = sweep_net();
        let mut reopt = Reoptimizer::new();
        assert_matches_cold(&mut reopt, &net, s, t, 2);
        // Choke every path below the target.
        net.set_arc_capacity(sa, 0).unwrap();
        net.set_arc_capacity(st, 1).unwrap();
        assert_matches_cold(&mut reopt, &net, s, t, 2); // both infeasible
        net.set_arc_capacity(sa, 2).unwrap();
        net.set_arc_capacity(st, 2).unwrap();
        let _ = at;
        assert_matches_cold(&mut reopt, &net, s, t, 2); // recovers
    }

    #[test]
    fn lower_bound_change_falls_back_cold() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 0, 2, 7).unwrap();
        net.add_arc(a, t, 2, 0).unwrap();
        net.add_arc(s, t, 2, 1).unwrap();
        let mut reopt = Reoptimizer::new();
        assert_matches_cold(&mut reopt, &net, s, t, 2);
        let mut forced = FlowNetwork::new();
        let s2 = forced.add_node();
        let a2 = forced.add_node();
        let t2 = forced.add_node();
        forced.add_arc_bounded(s2, a2, 1, 2, 7).unwrap();
        forced.add_arc(a2, t2, 2, 0).unwrap();
        forced.add_arc(s2, t2, 2, 1).unwrap();
        assert_matches_cold(&mut reopt, &forced, s2, t2, 2);
        assert_eq!(reopt.warm_solves(), 0);
    }

    #[test]
    fn long_mixed_delta_sweep_matches_cold() {
        // A denser network and a scripted sweep mixing all delta kinds.
        let mut net = FlowNetwork::new();
        let n: Vec<_> = (0..6).map(|_| net.add_node()).collect();
        let (s, t) = (n[0], n[5]);
        let mut arcs = Vec::new();
        for (u, v, cap, cost) in [
            (0, 1, 3, 2),
            (0, 2, 2, 4),
            (1, 3, 2, 1),
            (2, 3, 3, 1),
            (1, 4, 2, 6),
            (3, 4, 3, 0),
            (3, 5, 2, 3),
            (4, 5, 4, 1),
            (0, 5, 2, 9),
        ] {
            arcs.push(net.add_arc(n[u], n[v], cap, cost).unwrap());
        }
        let mut reopt = Reoptimizer::new();
        assert_matches_cold(&mut reopt, &net, s, t, 4);
        let script: [(usize, Option<i64>, Option<i64>, i64); 6] = [
            (2, Some(8), None, 4),     // cost bump on a used arc
            (7, None, Some(1), 4),     // capacity cut below flow
            (8, Some(1), None, 5),     // cheap bypass + larger target
            (3, Some(-2), Some(5), 3), // negative cost + capacity + smaller F
            (0, None, Some(1), 3),     // squeeze the main source arc
            (0, None, Some(3), 5),     // and relax it again
        ];
        for (arc, cost, cap, f) in script {
            if let Some(c) = cost {
                net.set_arc_cost(arcs[arc], c);
            }
            if let Some(c) = cap {
                net.set_arc_capacity(arcs[arc], c).unwrap();
            }
            assert_matches_cold(&mut reopt, &net, s, t, f);
        }
        assert!(reopt.warm_solves() >= 5, "sweep should stay warm");
    }
}
