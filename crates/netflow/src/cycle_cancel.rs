//! Minimum-mean cycle-cancelling min-cost flow.
//!
//! Establish any feasible flow of the requested value with [Dinic's
//! algorithm], then repeatedly cancel the residual cycle of **minimum mean
//! cost** until no negative cycle remains. Optimality follows from the
//! classical negative-cycle optimality condition; picking the minimum-mean
//! cycle (rather than an arbitrary one) is what makes the cancellation
//! count polynomial (Goldberg & Tarjan).
//!
//! The minimum-mean cycle is found by **Howard's policy iteration** run per
//! strongly connected component of the positive-capacity residual graph:
//! every node holds one chosen out-edge (the *policy*), each round extracts
//! the best cycle of the policy's functional graph, re-derives node values
//! against that cycle's mean, and improves the policy along any edge that
//! beats the current value. Rounds cost O(V + E) and converge in a handful
//! of iterations in practice; a round budget guards the theoretical worst
//! case, falling back to **Karp's recurrence** (exact, O(V·E)) for the
//! offending component. Between cancellations the policy is *repaired*, not
//! rebuilt: only nodes whose chosen edge was saturated by the push pick a
//! new edge, so successive searches start from an almost-converged policy.
//! Compare the previous implementation, which ran a full O(V·E)
//! Bellman–Ford pass from scratch for every single cycle.
//!
//! Scratch state lives in the caller's [`SolverWorkspace`] where the types
//! line up (`parent_edge` holds the policy, `indegree` the SCC ids,
//! `order`/`queue` the traversal frontiers) plus a small local buffer for
//! the 128-bit scaled node values.
//!
//! The primary solver is [`min_cost_flow`](crate::min_cost_flow); this one
//! exists (a) to cross-check it in tests and (b) to handle networks that
//! contain negative-cost *cycles*, which successive shortest paths cannot.
//!
//! [Dinic's algorithm]: crate::max_flow

use crate::dinic::dinic;
use crate::graph::{FlowNetwork, NodeId};
use crate::residual::{idx, Residual};
use crate::ssp::{check_endpoints_with, solution_from_residual};
use crate::workspace::{with_thread_workspace, SolverWorkspace};
use crate::{FlowSolution, NetflowError};

const NONE: u32 = u32::MAX;

const INF128: i128 = i128::MAX / 4;

/// Solves for a minimum-cost flow of exactly `target` units from `s` to `t`,
/// honouring arc lower bounds, by minimum-mean cycle cancelling.
///
/// Unlike [`min_cost_flow`](crate::min_cost_flow) this solver accepts
/// networks with negative-cost cycles, which makes it the backend of choice
/// for dense negative-cost cyclic networks (see [`Backend::select`]).
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if no feasible flow of value `target`
///   exists.
/// * [`NetflowError::InvalidArc`] / [`NetflowError::Overflow`] if
///   [`FlowNetwork::validate_input`] rejects the instance.
/// * [`NetflowError::BudgetExceeded`] if a workspace-carried
///   [`SolveBudget`](crate::SolveBudget) runs out between cancellation
///   rounds.
///
/// [`Backend::select`]: crate::Backend::select
pub fn min_cost_flow_cycle_canceling(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<FlowSolution, NetflowError> {
    with_thread_workspace(|ws| min_cost_flow_cycle_canceling_with(net, s, t, target, ws))
}

/// [`min_cost_flow_cycle_canceling`] with an explicit workspace, for sweeps
/// that want to amortise the scratch buffers across solves.
///
/// # Errors
///
/// Same as [`min_cost_flow_cycle_canceling`].
pub fn min_cost_flow_cycle_canceling_with(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
    ws: &mut SolverWorkspace,
) -> Result<FlowSolution, NetflowError> {
    check_endpoints_with(net, s, t, target, ws)?;
    let n = net.node_count();

    // Feasibility: same excess/deficit reduction as the SSP solver, but we
    // only need *a* feasible flow, so Dinic suffices.
    let mut res = Residual::from_network(net, 2);
    let super_s = n;
    let super_t = n + 1;
    let mut excess = vec![0i64; n];
    for (_, arc) in net.arcs() {
        excess[idx(arc.to)] += arc.lower_bound;
        excess[idx(arc.from)] -= arc.lower_bound;
    }
    excess[idx(s)] += target;
    excess[idx(t)] -= target;
    let mut required = 0i64;
    for (v, &e) in excess.iter().enumerate() {
        if e > 0 {
            res.add_edge(super_s, v, e, 0);
            required += e;
        } else if e < 0 {
            res.add_edge(v, super_t, -e, 0);
        }
    }
    res.finalize();
    let achieved = dinic(&mut res, super_s, super_t);
    if achieved < required {
        return Err(NetflowError::Infeasible { required, achieved });
    }

    cancel_all_negative_cycles(&mut res, ws)?;
    Ok(solution_from_residual(net, &res, target))
}

/// Out-of-line budget check for the cancellation loop — see the call site
/// for why this must not inline.
#[cold]
#[inline(never)]
fn check_cancel_budget(ws: &SolverWorkspace, rounds: u64) -> Result<(), NetflowError> {
    ws.budget.check_rounds("cycle", "cancel", rounds)
}

/// Repeatedly cancels negative residual cycles until none exists.
///
/// Selection is amortised: a greedy bulk phase soaks up most cancellations
/// at O(V) per sweep, then Howard's policy iteration runs per SCC with
/// *eager* cancellation and incremental policy repair ([`howard_cancel`]).
/// Certification is a single whole-graph Bellman-Ford pass
/// ([`spfa_negative_cycle`]): clean convergence yields feasible node
/// potentials, an exact witness that no negative cycle remains — without
/// re-running the SCC + Howard machinery just to prove emptiness. The rare
/// cycle that in-place cancellations hid from the stale partition surfaces
/// there, is cancelled, and selection runs again on a fresh partition; the
/// strictly decreasing integral flow cost bounds the loop.
///
/// # Errors
///
/// [`NetflowError::BudgetExceeded`] if the workspace carries a
/// [`SolveBudget`](crate::SolveBudget) and its round limit or deadline runs
/// out between cancellation rounds.
pub(crate) fn cancel_all_negative_cycles(
    res: &mut Residual,
    ws: &mut SolverWorkspace,
) -> Result<(), NetflowError> {
    let n = res.node_count();
    ws.prepare(n);
    let mut scratch = MeanScratch::new(n);
    // A negative cycle needs a negative edge; the common "nothing to do"
    // exit (DAG inputs after feasibility routing) costs one linear scan.
    if !has_active_negative_edge(res) {
        return Ok(());
    }
    // Howard's scaled values are bounded by 4*C*n^2 for the largest
    // absolute arc cost C: run the narrow (i64) instantiation when that
    // provably fits, the wide (i128) one otherwise.
    let max_abs_cost = (0..n)
        .flat_map(|u| res.active_slots(u))
        .map(|slot| res.slots[slot].cost.unsigned_abs())
        .max()
        .unwrap_or(0);
    let narrow = (max_abs_cost as u128)
        .saturating_mul(n as u128)
        .saturating_mul(n as u128)
        < i64::MAX as u128 / 4;
    // Bulk phase: the greedy policy's cycles soak up most cancellations at
    // O(V) per sweep before any exact machinery runs.
    greedy_cancel(res, ws, &mut scratch);
    // Hoist the "is any limit set" decision out of the loop and keep the
    // check itself out of line: inlining the budget machinery (notably the
    // deadline's clock read) into the cancellation loop measurably perturbs
    // its codegen, a bool test against a cold call does not.
    let limited = !ws.budget.is_unlimited();
    let mut rounds = 0u64;
    loop {
        if limited {
            check_cancel_budget(ws, rounds)?;
            rounds += 1;
        }
        let comps = strongly_connected_components(res, ws, &mut scratch);
        group_components(res, ws, &mut scratch, comps);
        for c in 0..comps {
            if !scratch.comp_neg[c] {
                continue;
            }
            let range = scratch.comp_start[c] as usize..scratch.comp_start[c + 1] as usize;
            if narrow {
                howard_cancel_narrow(res, ws, &mut scratch, c as u32, range);
            } else {
                howard_cancel_wide(res, ws, &mut scratch, c as u32, range);
            }
        }
        let found = spfa_negative_cycles(res, ws, &mut scratch);
        match found {
            None => return Ok(()),
            Some(cycles) => {
                for cycle in &cycles {
                    ws.pushed_units += cancel_cycle(res, cycle) as u64;
                }
                // The cycles came out of regions Howard left behind (a
                // stale partition, or its early bail); drain the cheap
                // follow-ups before repartitioning.
                greedy_cancel(res, ws, &mut scratch);
            }
        }
    }
}

/// Bulk cancellation against the *greedy* policy (each node's cheapest
/// positive-capacity out-edge): sweep the policy's functional graph, cancel
/// every cycle of negative total cost, re-pick only the policies the push
/// saturated (all on the cycle itself), and repeat until a sweep cancels
/// nothing.
///
/// This needs no SCC decomposition and no node values — any closed
/// positive-capacity walk of negative total cost is a valid cancellation
/// target — so each sweep costs O(V) plus the repairs. It cannot *certify*
/// optimality (a negative cycle may avoid greedy edges); the caller follows
/// with the exact Howard/Karp pass, which also inherits the greedy policy
/// as its warm start.
fn greedy_cancel(res: &mut Residual, ws: &mut SolverWorkspace, scratch: &mut MeanScratch) {
    let n = res.node_count();
    let repick = |res: &Residual, u: usize| -> u32 {
        let mut pick = NONE;
        let mut pick_cost = i64::MAX;
        for slot in res.active_slots(u) {
            if res.slots[slot].cap > 0 && res.slots[slot].cost < pick_cost {
                pick_cost = res.slots[slot].cost;
                pick = res.slots[slot].edge;
            }
        }
        pick
    };
    for u in 0..n {
        ws.parent_edge[u] = repick(res, u);
    }
    let mut cycle = Vec::new();
    loop {
        let mut cancelled = false;
        let sweep_base = scratch.walk;
        for start in 0..n {
            if scratch.mark[start] > sweep_base || ws.parent_edge[start] == NONE {
                continue;
            }
            scratch.walk += 1;
            let id = scratch.walk;
            let mut v = start;
            while scratch.mark[v] <= sweep_base && ws.parent_edge[v] != NONE {
                scratch.mark[v] = id;
                v = res.head(ws.parent_edge[v]);
            }
            if scratch.mark[v] != id {
                continue; // dead-ended or merged into an earlier chain
            }
            cycle.clear();
            let mut total = 0i64;
            let mut u = v;
            loop {
                let e = ws.parent_edge[u];
                cycle.push(e);
                total += res.cost_of(e);
                u = res.head(e);
                if u == v {
                    break;
                }
            }
            if total < 0 {
                ws.pushed_units += cancel_cycle(res, &cycle) as u64;
                cancelled = true;
                // The push touched only cycle edges and their partners,
                // whose tails are all on the cycle: repairs stay local.
                for &e in &cycle {
                    let tail = res.tail(e);
                    if res.cap_of(ws.parent_edge[tail]) == 0 {
                        ws.parent_edge[tail] = repick(res, tail);
                    }
                }
            }
        }
        if !cancelled {
            return;
        }
    }
}

/// True if any positive-capacity residual edge has negative cost.
fn has_active_negative_edge(res: &Residual) -> bool {
    (0..res.node_count()).any(|u| {
        res.active_slots(u)
            .any(|slot| res.slots[slot].cap > 0 && res.slots[slot].cost < 0)
    })
}

/// Howard's policy iteration on one SCC with *eager* cancellation.
///
/// Each round sweeps the policy's functional graph once; every fresh
/// negative cycle is cancelled on sight (the cycles of one functional
/// graph are node-disjoint, hence edge-disjoint, so each remains a valid
/// negative residual cycle as the earlier ones are pushed) and only the
/// nodes whose chosen edge saturated re-pick. A round without a
/// cancellation runs the usual evaluate/improve step toward the component
/// minimum mean; convergence with a non-negative best cycle certifies the
/// component clean under the current (possibly stale) partition — the
/// caller's SPFA pass re-checks globally. Karp's recurrence takes over
/// when too many quiet rounds pass without convergence.
///
/// The macro instantiates the round arithmetic twice: scaled edge weights
/// are `cost(e)*len - cycle_cost`, and node values sum up to `n` of them,
/// so everything fits an `i64` whenever `4*C*n^2 < i64::MAX` for the
/// largest absolute cost `C` — the caller dispatches on that guard and
/// falls back to the always-exact `i128` instantiation otherwise.
macro_rules! howard_cancel_impl {
    ($name:ident, $ty:ty, $dist:ident) => {
        fn $name(
            res: &mut Residual,
            ws: &mut SolverWorkspace,
            scratch: &mut MeanScratch,
            c: u32,
            range: std::ops::Range<usize>,
        ) {
            let comp_len = range.len();
            let nodes_start = range.start;
            let repick = |res: &Residual, ws: &SolverWorkspace, u: usize| -> u32 {
                let mut pick = NONE;
                let mut pick_cost = i64::MAX;
                for slot in res.active_slots(u) {
                    if res.slots[slot].cap > 0
                        && ws.indegree[res.slots[slot].to as usize] == c
                        && res.slots[slot].cost < pick_cost
                    {
                        pick_cost = res.slots[slot].cost;
                        pick = res.slots[slot].edge;
                    }
                }
                pick
            };

            // Policy init / repair: keep the retained edge when it still
            // has capacity and stays inside the component, else re-pick the
            // cheapest qualifying out-edge. Strong connectivity guarantees
            // one exists for components of size >= 2; a singleton qualifies
            // only via a self-loop.
            for i in 0..comp_len {
                let u = scratch.comp_nodes[nodes_start + i] as usize;
                let e = ws.parent_edge[u];
                let valid = e != NONE
                    && res.cap_of(e) > 0
                    && ws.indegree[res.head(e)] == c
                    && res.tail(e) == u;
                if valid {
                    continue;
                }
                let pick = repick(res, ws, u);
                if pick == NONE {
                    // Singleton without a self-loop: no cycle through here.
                    return;
                }
                ws.parent_edge[u] = pick;
            }

            let quiet_budget = 2 * comp_len + 32;
            let mut quiet = 0usize;
            let mut cycle: Vec<u32> = Vec::new();
            loop {
                // (a) Sweep the policy's functional graph: cancel every
                // fresh negative cycle immediately, track the best mean of
                // the rest.
                let mut best: Option<BestCycle<$ty>> = None;
                let mut cancelled = false;
                let eval_base = scratch.walk;
                for i in 0..comp_len {
                    let start = scratch.comp_nodes[nodes_start + i] as usize;
                    if scratch.mark[start] > eval_base {
                        continue;
                    }
                    scratch.walk += 1;
                    let id = scratch.walk;
                    let mut v = start;
                    while scratch.mark[v] <= eval_base {
                        scratch.mark[v] = id;
                        v = res.head(ws.parent_edge[v]);
                    }
                    if scratch.mark[v] != id {
                        continue; // merged into an already-swept chain
                    }
                    cycle.clear();
                    let mut cost: $ty = 0;
                    let mut u = v;
                    loop {
                        let e = ws.parent_edge[u];
                        cycle.push(e);
                        cost += res.cost_of(e) as $ty;
                        u = res.head(e);
                        if u == v {
                            break;
                        }
                    }
                    if cost < 0 {
                        ws.pushed_units += cancel_cycle(res, &cycle) as u64;
                        cancelled = true;
                        // The push touched only cycle edges and their
                        // partners, whose tails are all on the (now marked)
                        // cycle: repairs stay local and later walks stop
                        // before reaching them.
                        for &e in &cycle {
                            let tail = res.tail(e);
                            if res.cap_of(ws.parent_edge[tail]) == 0 {
                                let pick = repick(res, ws, tail);
                                if pick == NONE {
                                    // The cancellation disconnected the
                                    // component; the caller's SPFA pass
                                    // owns whatever is left.
                                    return;
                                }
                                ws.parent_edge[tail] = pick;
                            }
                        }
                    } else {
                        let found = BestCycle {
                            cost,
                            len: cycle.len() as i64,
                            node: v as u32,
                        };
                        if best.as_ref().is_none_or(|b| b.beats(&found)) {
                            best = Some(found);
                        }
                    }
                }
                if cancelled {
                    quiet = 0;
                    continue; // policies changed: re-sweep before valuing
                }
                let best = best.expect("functional graph over a finite set has a cycle");

                // (b) Node values against the best cycle's mean, scaled by
                // its length so everything stays integral:
                // w(e) = cost(e)*len - cost. Phase one follows policy
                // in-edges backwards from the cycle (BFS order makes each
                // value final when assigned); phase two attaches any node
                // the policy graph routed elsewhere through an arbitrary
                // in-edge, re-pointing its policy at the cycle's component.
                scratch.gen += 1;
                let gen = scratch.gen;
                scratch.bfs.clear();
                let cyc = best.node as usize;
                scratch.$dist[cyc] = 0;
                scratch.reached[cyc] = gen;
                scratch.bfs.push(best.node);
                let mut front = 0usize;
                while front < scratch.bfs.len() {
                    let v = scratch.bfs[front] as usize;
                    front += 1;
                    let dv = scratch.$dist[v];
                    for slot in res.first_out[v] as usize..res.first_out[v + 1] as usize {
                        let u = res.slots[slot].to as usize;
                        let back = res.slots[slot].edge ^ 1;
                        if ws.indegree[u] == c
                            && scratch.reached[u] != gen
                            && ws.parent_edge[u] == back
                        {
                            // cost(e ^ 1) == -cost(e), and the forward cost
                            // rides in this slot: no slot_of indirection.
                            debug_assert_eq!(res.cost_of(back), -res.slots[slot].cost);
                            scratch.$dist[u] =
                                dv + (-res.slots[slot].cost) as $ty * best.len as $ty - best.cost;
                            scratch.reached[u] = gen;
                            scratch.bfs.push(u as u32);
                        }
                    }
                }
                // Phase two only has work when the policy graph routed
                // some node away from the best cycle; a near-converged
                // policy reaches everyone in phase one, skipping the
                // second full-adjacency sweep.
                if scratch.bfs.len() < comp_len {
                    front = 0;
                    while front < scratch.bfs.len() {
                        let v = scratch.bfs[front] as usize;
                        front += 1;
                        let dv = scratch.$dist[v];
                        for slot in res.first_out[v] as usize..res.first_out[v + 1] as usize {
                            let u = res.slots[slot].to as usize;
                            let back = res.slots[slot].edge ^ 1;
                            if ws.indegree[u] == c
                                && scratch.reached[u] != gen
                                && res.cap_of(back) > 0
                            {
                                ws.parent_edge[u] = back;
                                scratch.$dist[u] = dv
                                    + (-res.slots[slot].cost) as $ty * best.len as $ty
                                    - best.cost;
                                scratch.reached[u] = gen;
                                scratch.bfs.push(u as u32);
                            }
                        }
                    }
                }
                if scratch.bfs.len() < comp_len {
                    // Earlier in-place cancellations broke the component's
                    // strong connectivity: part of it can no longer reach
                    // the best cycle, so the values cannot be completed.
                    // Leave the remainder to the certification pass.
                    return;
                }

                // (c) Policy improvement along every in-component edge.
                let mut improved = false;
                for i in 0..comp_len {
                    let u = scratch.comp_nodes[nodes_start + i] as usize;
                    let mut du = scratch.$dist[u];
                    for slot in res.active_slots(u) {
                        if res.slots[slot].cap <= 0 {
                            continue;
                        }
                        let v = res.slots[slot].to as usize;
                        if ws.indegree[v] != c {
                            continue;
                        }
                        let d = scratch.$dist[v] + res.slots[slot].cost as $ty * best.len as $ty
                            - best.cost;
                        if d < du {
                            du = d;
                            ws.parent_edge[u] = res.slots[slot].edge;
                            improved = true;
                        }
                    }
                    scratch.$dist[u] = du;
                }
                if !improved {
                    // Converged: `best` is the component's exact minimum
                    // mean, and every negative policy cycle was already
                    // cancelled in (a).
                    debug_assert!(best.cost >= 0);
                    return;
                }
                quiet += 1;
                if quiet >= quiet_budget {
                    match karp_negative_cycle(res, ws, scratch, c, range.clone()) {
                        Some(kcycle) => {
                            ws.pushed_units += cancel_cycle(res, &kcycle) as u64;
                            for &e in &kcycle {
                                let tail = res.tail(e);
                                let pe = ws.parent_edge[tail];
                                if pe == NONE || res.cap_of(pe) == 0 {
                                    let pick = repick(res, ws, tail);
                                    if pick == NONE {
                                        return;
                                    }
                                    ws.parent_edge[tail] = pick;
                                }
                            }
                            quiet = 0;
                        }
                        // Exact: the component's minimum mean is
                        // non-negative.
                        None => return,
                    }
                }
            }
        }
    };
}

howard_cancel_impl!(howard_cancel_narrow, i64, dist64);
howard_cancel_impl!(howard_cancel_wide, i128, dist);

/// One Bellman-Ford pass (SPFA queue variant) over every active residual
/// edge, all nodes seeded at distance zero.
///
/// `None` means convergence: the distances are feasible potentials (every
/// active edge has non-negative reduced cost), an exact certificate that
/// no negative-cost cycle remains anywhere in the residual graph. On a
/// graph that still holds a negative cycle the queue never drains, so
/// every couple of `n` dequeues the predecessor graph is scanned for
/// cycles — any cycle there witnesses a negative one — and all of its
/// (node-disjoint) cycles are returned. A clean run drains the queue in
/// a handful of sweeps and pays for at most a few scans.
fn spfa_negative_cycles(
    res: &Residual,
    ws: &mut SolverWorkspace,
    scratch: &mut MeanScratch,
) -> Option<Vec<Vec<u32>>> {
    let n = res.node_count();
    ws.queue.clear();
    for v in 0..n {
        ws.node[v].dist = 0;
        ws.parent_edge[v] = NONE;
        ws.in_queue[v] = true;
        ws.queue.push_back(v as u32);
    }
    let mut dequeues = 0usize;
    let mut next_scan = 2 * n;
    while let Some(u) = ws.queue.pop_front() {
        let u = u as usize;
        ws.in_queue[u] = false;
        dequeues += 1;
        if dequeues >= next_scan {
            let cycles = predecessor_cycles(res, ws, scratch);
            if !cycles.is_empty() {
                return Some(cycles);
            }
            // The scan can race the relaxations (a cycle exists in the
            // graph before the predecessor graph closes over it); scan
            // again a little later — with a negative cycle present the
            // queue cannot drain, so one scan must eventually catch it.
            next_scan += n.max(32);
        }
        let du = ws.node[u].dist;
        for slot in res.active_slots(u) {
            if res.slots[slot].cap <= 0 {
                continue;
            }
            let v = res.slots[slot].to as usize;
            let nd = du + res.slots[slot].cost;
            if nd < ws.node[v].dist {
                ws.node[v].dist = nd;
                ws.parent_edge[v] = res.slots[slot].edge;
                if !ws.in_queue[v] {
                    ws.in_queue[v] = true;
                    ws.queue.push_back(v as u32);
                }
            }
        }
    }
    None
}

/// Collects every cycle of the SPFA predecessor graph. The predecessors
/// form a functional graph (one parent per node), so its cycles are
/// node-disjoint — hence edge-disjoint, and all of them can be cancelled
/// off one detection. Any cycle formed by Bellman-Ford relaxations has
/// negative total cost (each parent edge was tight when set and can only
/// have gained slack since), and its edges all carried positive residual
/// capacity when chosen — capacities are frozen during the pass, so each
/// is a valid cancellation witness.
fn predecessor_cycles(
    res: &Residual,
    ws: &SolverWorkspace,
    scratch: &mut MeanScratch,
) -> Vec<Vec<u32>> {
    let n = res.node_count();
    let mut cycles = Vec::new();
    let sweep_base = scratch.walk;
    for start in 0..n {
        if scratch.mark[start] > sweep_base || ws.parent_edge[start] == NONE {
            continue;
        }
        scratch.walk += 1;
        let id = scratch.walk;
        let mut v = start;
        while scratch.mark[v] <= sweep_base && ws.parent_edge[v] != NONE {
            scratch.mark[v] = id;
            v = res.tail(ws.parent_edge[v]);
        }
        if scratch.mark[v] != id {
            continue; // dead-ended or merged into an earlier chain
        }
        let mut cycle = Vec::new();
        let mut total = 0i128;
        let mut u = v;
        loop {
            let e = ws.parent_edge[u];
            cycle.push(e);
            total += res.cost_of(e) as i128;
            u = res.tail(e);
            if u == v {
                break;
            }
        }
        debug_assert!(total < 0, "Bellman-Ford predecessor cycles are negative");
        if total < 0 {
            cycles.push(cycle);
        }
    }
    cycles
}

/// Pushes the bottleneck capacity around one residual cycle and returns
/// the amount pushed, so callers can fold it into the workspace's
/// effort counters.
fn cancel_cycle(res: &mut Residual, cycle: &[u32]) -> i64 {
    let bottleneck = cycle
        .iter()
        .map(|&e| res.cap_of(e))
        .min()
        .expect("cycle is non-empty");
    debug_assert!(bottleneck > 0);
    for &e in cycle {
        res.push(e, bottleneck);
    }
    // Incremental policy repair happens lazily: nodes whose chosen edge
    // this push saturated re-pick at the next convergence's policy-init
    // pass (the edge fails its capacity check there); every other node
    // keeps its near-converged policy.
    bottleneck
}

/// Scratch buffers for the minimum-mean cycle search that do not fit the
/// [`SolverWorkspace`] types: the 128-bit scaled node values and the stamp
/// arrays of the walk/evaluation generations.
struct MeanScratch {
    /// Scaled node value of Howard's evaluation step (valid while
    /// `reached[v] == gen`); the wide (`i128`) instantiation.
    dist: Vec<i128>,
    /// Same, for the narrow (`i64`) instantiation.
    dist64: Vec<i64>,
    /// Evaluation stamp per node.
    reached: Vec<u32>,
    /// Current evaluation generation.
    gen: u32,
    /// Walk stamp per node for policy-cycle extraction.
    mark: Vec<u32>,
    /// Monotone walk counter backing `mark`.
    walk: u32,
    /// DFS stack of Kosaraju's passes: `(node, next slot cursor)`.
    stack: Vec<(u32, u32)>,
    /// BFS queue of the evaluation step, with a manual read cursor so the
    /// attach phase can re-scan it from the start.
    bfs: Vec<u32>,
    /// Nodes grouped by SCC id (counting sort over `ws.indegree`).
    comp_nodes: Vec<u32>,
    /// Start offset per SCC id into `comp_nodes` (one past the end in the
    /// final slot).
    comp_start: Vec<u32>,
    /// Whether the SCC contains an internal negative-cost active edge (the
    /// only components that can hold a negative cycle).
    comp_neg: Vec<bool>,
}

impl MeanScratch {
    fn new(n: usize) -> Self {
        Self {
            dist: vec![0; n],
            dist64: vec![0; n],
            reached: vec![0; n],
            gen: 0,
            mark: vec![0; n],
            walk: 0,
            stack: Vec::new(),
            bfs: Vec::new(),
            comp_nodes: Vec::new(),
            comp_start: Vec::new(),
            comp_neg: Vec::new(),
        }
    }
}

/// The best (minimum-mean) cycle seen so far: scaled cost, length and a
/// node on it. `T` is the scaled-cost representation — `i64` when the
/// caller's magnitude guard holds, `i128` otherwise.
#[derive(Clone, Copy)]
struct BestCycle<T> {
    cost: T,
    len: i64,
    node: u32,
}

impl<T: Copy + Ord + std::ops::Mul<Output = T> + From<i64>> BestCycle<T> {
    /// True if `cost/len` improves on `other`'s mean (cross-multiplied, so
    /// exact over the integers).
    fn beats(&self, other: &Self) -> bool {
        self.cost * T::from(other.len) > other.cost * T::from(self.len)
    }
}

/// Finds the global minimum-mean residual cycle; if its mean is negative,
/// writes its edges (in flow order) into `cycle` and returns `true`.
///
/// `ws.parent_edge` carries the policy across calls (incremental repair);
/// `ws.indegree` holds the SCC ids, `ws.order` Kosaraju's finish order.
/// The production cancellation loop batches per converged policy instead
/// of re-deriving the single global winner; this entry point exists for
/// the brute-force cross-check tests, which pin down exactly the
/// minimum-mean extraction.
#[cfg(test)]
fn find_min_mean_negative_cycle(
    res: &Residual,
    ws: &mut SolverWorkspace,
    scratch: &mut MeanScratch,
    cycle: &mut Vec<u32>,
) -> bool {
    cycle.clear();
    let comps = strongly_connected_components(res, ws, scratch);
    group_components(res, ws, scratch, comps);

    // Best candidate so far; Karp-produced witnesses carry their edge list
    // (there is no converged policy to re-walk in that case).
    let mut best: Option<(BestCycle<i128>, Option<Vec<u32>>)> = None;
    let consider = |found: BestCycle<i128>,
                    edges: Option<Vec<u32>>,
                    best: &mut Option<(BestCycle<i128>, Option<Vec<u32>>)>| {
        if found.cost < 0 && best.as_ref().is_none_or(|(b, _)| b.beats(&found)) {
            *best = Some((found, edges));
        }
    };
    for c in 0..comps {
        if !scratch.comp_neg[c] {
            continue;
        }
        let range = scratch.comp_start[c] as usize..scratch.comp_start[c + 1] as usize;
        match howard_converge(res, ws, scratch, c as u32, range.clone()) {
            HowardOutcome::Converged(found) => consider(found, None, &mut best),
            HowardOutcome::Budget => {
                if let Some(edges) = karp_negative_cycle(res, ws, scratch, c as u32, range) {
                    let cost: i128 = edges.iter().map(|&e| res.cost_of(e) as i128).sum();
                    let found = BestCycle {
                        cost,
                        len: edges.len() as i64,
                        node: res.tail(edges[0]) as u32,
                    };
                    consider(found, Some(edges), &mut best);
                }
            }
            HowardOutcome::NoCycle => {}
        }
    }
    let Some((found, edges)) = best else {
        return false;
    };
    if let Some(edges) = edges {
        cycle.extend_from_slice(&edges);
        return true;
    }
    // Walk the converged policy around the winning cycle (components are
    // node-disjoint, so later components left this policy intact).
    let policy = &ws.parent_edge;
    let mut v = found.node as usize;
    loop {
        let e = policy[v];
        cycle.push(e);
        v = res.head(e);
        if v == found.node as usize {
            break;
        }
    }
    debug_assert_eq!(cycle.len() as i64, found.len);
    true
}

/// Kosaraju's two-pass SCC over the positive-capacity residual edges.
/// Fills `ws.indegree` with component ids and returns the component count.
fn strongly_connected_components(
    res: &Residual,
    ws: &mut SolverWorkspace,
    scratch: &mut MeanScratch,
) -> usize {
    let n = res.node_count();
    // Pass 1: DFS on forward active edges, recording finish order.
    scratch.walk += 1;
    let seen = scratch.walk;
    ws.order.clear();
    for root in 0..n as u32 {
        if scratch.mark[root as usize] == seen {
            continue;
        }
        scratch.mark[root as usize] = seen;
        scratch.stack.clear();
        scratch.stack.push((root, res.first_out[root as usize]));
        while let Some(&mut (u, ref mut cursor)) = scratch.stack.last_mut() {
            let u = u as usize;
            if (*cursor as usize) < res.active_end[u] as usize {
                let slot = *cursor as usize;
                *cursor += 1;
                if res.slots[slot].cap > 0 {
                    let v = res.slots[slot].to;
                    if scratch.mark[v as usize] != seen {
                        scratch.mark[v as usize] = seen;
                        scratch.stack.push((v, res.first_out[v as usize]));
                    }
                }
            } else {
                ws.order.push(u as u32);
                scratch.stack.pop();
            }
        }
    }
    // Pass 2: DFS on reversed active edges in reverse finish order. The
    // in-edges of `v` are the partners of v's out-edges (`e ^ 1` pairing),
    // so the reverse graph needs no adjacency of its own.
    scratch.walk += 1;
    let seen = scratch.walk;
    let mut comps = 0usize;
    for i in (0..n).rev() {
        let root = ws.order[i];
        if scratch.mark[root as usize] == seen {
            continue;
        }
        let c = comps as u32;
        comps += 1;
        scratch.mark[root as usize] = seen;
        ws.indegree[root as usize] = c;
        scratch.stack.clear();
        scratch.stack.push((root, res.first_out[root as usize]));
        while let Some(&mut (u, ref mut cursor)) = scratch.stack.last_mut() {
            let u = u as usize;
            if (*cursor as usize) < res.first_out[u + 1] as usize {
                let slot = *cursor as usize;
                *cursor += 1;
                let back = res.slots[slot].edge ^ 1;
                if res.cap_of(back) > 0 {
                    let v = res.slots[slot].to;
                    if scratch.mark[v as usize] != seen {
                        scratch.mark[v as usize] = seen;
                        ws.indegree[v as usize] = c;
                        scratch.stack.push((v, res.first_out[v as usize]));
                    }
                }
            } else {
                scratch.stack.pop();
            }
        }
    }
    comps
}

/// Counting-sorts nodes by component id and flags components holding an
/// internal negative-cost active edge.
fn group_components(res: &Residual, ws: &SolverWorkspace, scratch: &mut MeanScratch, comps: usize) {
    let n = res.node_count();
    let comp = &ws.indegree;
    scratch.comp_start.clear();
    scratch.comp_start.resize(comps + 1, 0);
    for &c in comp.iter().take(n) {
        scratch.comp_start[c as usize + 1] += 1;
    }
    for c in 0..comps {
        scratch.comp_start[c + 1] += scratch.comp_start[c];
    }
    scratch.comp_nodes.clear();
    scratch.comp_nodes.resize(n, 0);
    let mut cursor = scratch.comp_start.clone();
    for v in 0..n as u32 {
        let c = comp[v as usize] as usize;
        scratch.comp_nodes[cursor[c] as usize] = v;
        cursor[c] += 1;
    }
    scratch.comp_neg.clear();
    scratch.comp_neg.resize(comps, false);
    for u in 0..n {
        let cu = comp[u];
        for slot in res.active_slots(u) {
            if res.slots[slot].cap > 0
                && res.slots[slot].cost < 0
                && comp[res.slots[slot].to as usize] == cu
            {
                scratch.comp_neg[cu as usize] = true;
                break;
            }
        }
    }
}

#[cfg(test)]
/// Outcome of one component's Howard convergence.
enum HowardOutcome {
    /// Converged; the component's exact minimum cycle mean is `cost/len`
    /// (may be non-negative), and `ws.parent_edge` holds the witnessing
    /// policy.
    Converged(BestCycle<i128>),
    /// The round budget ran out before convergence (adversarial instance);
    /// the caller falls back to Karp's recurrence.
    Budget,
    /// The component provably holds no cycle (a singleton without a
    /// self-loop).
    NoCycle,
}

/// Howard's policy iteration on one strongly connected component, without
/// cancellation: the pure convergence used by the min-mean extraction
/// entry point that the brute-force tests pin down.
#[cfg(test)]
/// Howard's policy iteration on one strongly connected component.
fn howard_converge(
    res: &Residual,
    ws: &mut SolverWorkspace,
    scratch: &mut MeanScratch,
    c: u32,
    range: std::ops::Range<usize>,
) -> HowardOutcome {
    let comp_len = range.len();
    let nodes_start = range.start;
    let comp = |scratch: &MeanScratch, i: usize| scratch.comp_nodes[nodes_start + i] as usize;

    // Policy init / repair: keep the retained edge when it still has
    // capacity and stays inside the component, else re-pick the cheapest
    // qualifying out-edge. Strong connectivity guarantees one exists for
    // components of size >= 2; a singleton qualifies only via a self-loop.
    for i in 0..comp_len {
        let u = comp(scratch, i);
        let e = ws.parent_edge[u];
        let valid =
            e != NONE && res.cap_of(e) > 0 && ws.indegree[res.head(e)] == c && res.tail(e) == u;
        if valid {
            continue;
        }
        let mut pick = NONE;
        let mut pick_cost = i64::MAX;
        for slot in res.active_slots(u) {
            if res.slots[slot].cap > 0
                && ws.indegree[res.slots[slot].to as usize] == c
                && res.slots[slot].cost < pick_cost
            {
                pick_cost = res.slots[slot].cost;
                pick = res.slots[slot].edge;
            }
        }
        if pick == NONE {
            // Singleton without a self-loop: no cycle through here.
            return HowardOutcome::NoCycle;
        }
        ws.parent_edge[u] = pick;
    }

    let round_budget = 2 * comp_len + 32;
    for _ in 0..round_budget {
        // (a) Best cycle of the policy's functional graph.
        let mut best: Option<BestCycle<i128>> = None;
        let eval_base = scratch.walk;
        for i in 0..comp_len {
            let start = comp(scratch, i);
            if scratch.mark[start] > eval_base {
                continue;
            }
            scratch.walk += 1;
            let id = scratch.walk;
            let mut v = start;
            while scratch.mark[v] <= eval_base {
                scratch.mark[v] = id;
                v = res.head(ws.parent_edge[v]);
            }
            if scratch.mark[v] == id {
                // Closed a fresh cycle through v: measure it.
                let mut cost = 0i128;
                let mut len = 0i64;
                let mut u = v;
                loop {
                    let e = ws.parent_edge[u];
                    cost += res.cost_of(e) as i128;
                    len += 1;
                    u = res.head(e);
                    if u == v {
                        break;
                    }
                }
                let found = BestCycle {
                    cost,
                    len,
                    node: v as u32,
                };
                if best.as_ref().is_none_or(|b| b.beats(&found)) {
                    best = Some(found);
                }
            }
        }
        let best = best.expect("functional graph over a finite set has a cycle");

        // (b) Node values against the best cycle's mean, scaled by its
        // length so everything stays integral: w(e) = cost(e)*len - cost.
        // Phase one follows policy in-edges backwards from the cycle (BFS
        // order makes each value final when assigned); phase two attaches
        // any node the policy graph routed elsewhere through an arbitrary
        // in-edge, re-pointing its policy at the cycle's component.
        scratch.gen += 1;
        let gen = scratch.gen;
        scratch.bfs.clear();
        let cyc = best.node as usize;
        scratch.dist[cyc] = 0;
        scratch.reached[cyc] = gen;
        scratch.bfs.push(best.node);
        let mut front = 0usize;
        while front < scratch.bfs.len() {
            let v = scratch.bfs[front] as usize;
            front += 1;
            let dv = scratch.dist[v];
            for slot in res.first_out[v] as usize..res.first_out[v + 1] as usize {
                let u = res.slots[slot].to as usize;
                let back = res.slots[slot].edge ^ 1;
                if ws.indegree[u] == c && scratch.reached[u] != gen && ws.parent_edge[u] == back {
                    scratch.dist[u] = dv + res.cost_of(back) as i128 * best.len as i128 - best.cost;
                    scratch.reached[u] = gen;
                    scratch.bfs.push(u as u32);
                }
            }
        }
        front = 0;
        while front < scratch.bfs.len() {
            let v = scratch.bfs[front] as usize;
            front += 1;
            let dv = scratch.dist[v];
            for slot in res.first_out[v] as usize..res.first_out[v + 1] as usize {
                let u = res.slots[slot].to as usize;
                let back = res.slots[slot].edge ^ 1;
                if ws.indegree[u] == c && scratch.reached[u] != gen && res.cap_of(back) > 0 {
                    ws.parent_edge[u] = back;
                    scratch.dist[u] = dv + res.cost_of(back) as i128 * best.len as i128 - best.cost;
                    scratch.reached[u] = gen;
                    scratch.bfs.push(u as u32);
                }
            }
        }
        debug_assert_eq!(scratch.bfs.len(), comp_len, "SCC must reach its cycle");

        // (c) Policy improvement along every in-component edge.
        let mut improved = false;
        for i in 0..comp_len {
            let u = comp(scratch, i);
            let mut du = scratch.dist[u];
            for slot in res.active_slots(u) {
                if res.slots[slot].cap <= 0 {
                    continue;
                }
                let v = res.slots[slot].to as usize;
                if ws.indegree[v] != c {
                    continue;
                }
                let d =
                    scratch.dist[v] + res.slots[slot].cost as i128 * best.len as i128 - best.cost;
                if d < du {
                    du = d;
                    ws.parent_edge[u] = res.slots[slot].edge;
                    improved = true;
                }
            }
            scratch.dist[u] = du;
        }
        if !improved {
            return HowardOutcome::Converged(best);
        }
    }
    HowardOutcome::Budget
}

/// Karp's recurrence on one SCC: exact minimum cycle mean, returning a
/// witness cycle when that mean is negative. O(k·m) time and O(k²) memory
/// for a k-node component — only ever run as the fallback when Howard's
/// round budget trips.
fn karp_negative_cycle(
    res: &Residual,
    ws: &SolverWorkspace,
    scratch: &MeanScratch,
    c: u32,
    range: std::ops::Range<usize>,
) -> Option<Vec<u32>> {
    let nodes = &scratch.comp_nodes[range];
    let k = nodes.len();
    let n = res.node_count();
    // Local dense renumbering of the component.
    let mut local = vec![NONE; n];
    for (i, &v) in nodes.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    // d[lvl][v] = min cost of an lvl-edge walk source -> v; p the last edge.
    let mut d = vec![INF128; (k + 1) * k];
    let mut p = vec![NONE; (k + 1) * k];
    d[0] = 0; // source = nodes[0]; any fixed source works in an SCC
    for lvl in 1..=k {
        let (prev, cur) = d.split_at_mut(lvl * k);
        let prev = &prev[(lvl - 1) * k..];
        let cur = &mut cur[..k];
        let cur_p = &mut p[lvl * k..(lvl + 1) * k];
        for (lu, &u) in nodes.iter().enumerate() {
            if prev[lu] >= INF128 {
                continue;
            }
            for slot in res.active_slots(u as usize) {
                if res.slots[slot].cap <= 0 {
                    continue;
                }
                let v = res.slots[slot].to as usize;
                if ws.indegree[v] != c {
                    continue;
                }
                let lv = local[v] as usize;
                let cand = prev[lu] + res.slots[slot].cost as i128;
                if cand < cur[lv] {
                    cur[lv] = cand;
                    cur_p[lv] = res.slots[slot].edge;
                }
            }
        }
    }
    // λ* = min_v max_j (d_k(v) - d_j(v)) / (k - j); negative mean iff the
    // minimising v has d_k(v) - d_j(v) < 0 scaled by the best (k - j).
    let mut best_v = None;
    let mut best_num = 0i128;
    let mut best_den = 1i128;
    for lv in 0..k {
        let dk = d[k * k + lv];
        if dk >= INF128 {
            continue;
        }
        let mut num = i128::MIN;
        let mut den = 1i128;
        for j in 0..k {
            let dj = d[j * k + lv];
            if dj >= INF128 {
                continue;
            }
            let (cn, cd) = (dk - dj, (k - j) as i128);
            if num == i128::MIN || cn * den > num * cd {
                num = cn;
                den = cd;
            }
        }
        if num == i128::MIN {
            continue;
        }
        if best_v.is_none() || num * best_den < best_num * den {
            best_num = num;
            best_den = den;
            best_v = Some(lv);
        }
    }
    let lv = best_v?;
    if best_num >= 0 {
        return None; // minimum mean is non-negative: no negative cycle
    }
    // The k-edge walk to the minimising node contains a minimum-mean cycle:
    // walk the parent chain and peel the first closed loop.
    let mut at = vec![NONE; k];
    let mut edges_back = Vec::with_capacity(k);
    let mut lvl = k;
    let mut cur = lv;
    loop {
        if at[cur] != NONE {
            // Node seen at a later level: the edges between close a cycle.
            let cycle_end = at[cur] as usize;
            let mut cycle: Vec<u32> = edges_back[cycle_end..].to_vec();
            cycle.reverse();
            let total: i128 = cycle.iter().map(|&e| res.cost_of(e) as i128).sum();
            debug_assert!(total < 0, "Karp walk cycle must be negative");
            if total >= 0 {
                return None;
            }
            return Some(cycle);
        }
        at[cur] = edges_back.len() as u32;
        if lvl == 0 {
            debug_assert!(false, "k-edge walk must repeat a node");
            return None;
        }
        let e = p[lvl * k + cur];
        debug_assert_ne!(e, NONE);
        edges_back.push(e);
        cur = local[res.tail(e)] as usize;
        lvl -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_cost_flow;
    use proptest::prelude::*;

    #[test]
    fn matches_ssp_on_dag() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 2, 1).unwrap();
        net.add_arc(s, b, 2, 4).unwrap();
        net.add_arc(a, b, 1, -2).unwrap();
        net.add_arc(a, t, 1, 6).unwrap();
        net.add_arc(b, t, 3, 1).unwrap();
        for f in 0..=3 {
            let ssp = min_cost_flow(&net, s, t, f).unwrap();
            let cc = min_cost_flow_cycle_canceling(&net, s, t, f).unwrap();
            assert_eq!(ssp.cost, cc.cost, "flow value {f}");
        }
    }

    #[test]
    fn handles_negative_cycle() {
        // Cycle a -> b -> a with total cost -2: the optimum saturates it even
        // though it carries no s-t flow.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, b, 2, -3).unwrap();
        net.add_arc(b, a, 2, 1).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        let sol = min_cost_flow_cycle_canceling(&net, s, t, 1).unwrap();
        // One unit s->a->b->t (-3) plus one residual cycle a->b->a (-2).
        assert_eq!(sol.cost, -5);
    }

    #[test]
    fn exhausted_round_budget_is_a_typed_error() {
        // Same negative-cycle instance as `handles_negative_cycle`: the
        // cancellation loop must run, so a zero-round budget trips before
        // the first round, out-of-line check and `limited` guard included.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, b, 2, -3).unwrap();
        net.add_arc(b, a, 2, 1).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        let err = crate::Backend::CycleCancel
            .solve_with_budget(
                &net,
                s,
                t,
                1,
                crate::SolveBudget::default().with_max_rounds(0),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            NetflowError::BudgetExceeded {
                backend: "cycle",
                phase: "cancel",
                progress: 0,
            }
        ));
        // An adequate budget leaves the optimum untouched.
        let sol = crate::Backend::CycleCancel
            .solve_with_budget(
                &net,
                s,
                t,
                1,
                crate::SolveBudget::default().with_max_rounds(64),
            )
            .unwrap();
        assert_eq!(sol.cost, -5);
    }

    #[test]
    fn lower_bounds_respected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 1, 1, 100).unwrap();
        net.add_arc(a, t, 1, 0).unwrap();
        net.add_arc(s, b, 1, 0).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        let sol = min_cost_flow_cycle_canceling(&net, s, t, 1).unwrap();
        assert_eq!(sol.cost, 100);
        assert_eq!(sol.flows[0], 1);
    }

    #[test]
    fn infeasible_target() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 1, 0).unwrap();
        assert!(matches!(
            min_cost_flow_cycle_canceling(&net, s, t, 2),
            Err(NetflowError::Infeasible { .. })
        ));
    }

    /// Minimum-mean cycle of `net`'s fresh residual graph, via the
    /// production search path.
    fn min_mean_of(net: &FlowNetwork) -> Option<(i128, i64)> {
        let mut res = Residual::from_network(net, 0);
        res.finalize();
        let mut ws = SolverWorkspace::new();
        ws.prepare(res.node_count());
        let mut scratch = MeanScratch::new(res.node_count());
        let mut cycle = Vec::new();
        if !find_min_mean_negative_cycle(&res, &mut ws, &mut scratch, &mut cycle) {
            return None;
        }
        let cost: i128 = cycle.iter().map(|&e| res.cost_of(e) as i128).sum();
        // The returned edges must form a closed positive-capacity walk.
        for &e in &cycle {
            assert!(res.cap_of(e) > 0);
        }
        for w in cycle.windows(2) {
            assert_eq!(res.head(w[0]), res.tail(w[1]));
        }
        assert_eq!(
            res.head(*cycle.last().unwrap()),
            res.tail(cycle[0]),
            "cycle must close"
        );
        Some((cost, cycle.len() as i64))
    }

    /// Brute-force minimum mean over every simple cycle (DFS enumeration;
    /// only viable on tiny graphs).
    fn brute_force_min_mean(net: &FlowNetwork) -> Option<(i128, i64)> {
        let n = net.node_count();
        let mut adj: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n];
        for (_, arc) in net.arcs() {
            if arc.capacity > 0 {
                adj[arc.from.index()].push((arc.to.index(), arc.cost));
            }
        }
        let mut best: Option<(i128, i64)> = None;
        fn dfs(
            adj: &[Vec<(usize, i64)>],
            start: usize,
            u: usize,
            cost: i128,
            len: i64,
            on_path: &mut [bool],
            best: &mut Option<(i128, i64)>,
        ) {
            for &(v, c) in &adj[u] {
                if v == start && len > 0 {
                    let cand = (cost + c as i128, len + 1);
                    let better = best
                        .map(|(bc, bl)| cand.0 * (bl as i128) < bc * cand.1 as i128)
                        .unwrap_or(true);
                    if better {
                        *best = Some(cand);
                    }
                } else if v > start && !on_path[v] {
                    on_path[v] = true;
                    dfs(adj, start, v, cost + c as i128, len + 1, on_path, best);
                    on_path[v] = false;
                }
            }
        }
        let mut on_path = vec![false; n];
        for start in 0..n {
            dfs(&adj, start, start, 0, 0, &mut on_path, &mut best);
        }
        best
    }

    proptest! {
        /// Satellite: the minimum-mean extraction must return a cycle whose
        /// mean matches an exhaustive enumeration on tiny graphs (when that
        /// minimum is negative; a non-negative minimum must yield "none").
        #[test]
        fn min_mean_cycle_matches_brute_force(
            arcs in proptest::collection::vec(
                (0usize..8, 0usize..8, 1i64..4, -20i64..20),
                1..24,
            )
        ) {
            let mut net = FlowNetwork::new();
            let nodes: Vec<_> = (0..8).map(|_| net.add_node()).collect();
            for (u, v, cap, cost) in arcs {
                if u != v {
                    net.add_arc(nodes[u], nodes[v], cap, cost).unwrap();
                }
            }
            let brute = brute_force_min_mean(&net);
            let brute_negative = brute.filter(|&(c, _)| c < 0);
            let found = min_mean_of(&net);
            match (brute_negative, found) {
                (None, None) => {}
                (Some((bc, bl)), Some((fc, fl))) => {
                    prop_assert_eq!(
                        bc * fl as i128, fc * bl as i128,
                        "means diverge: brute {}/{} vs found {}/{}", bc, bl, fc, fl
                    );
                }
                (b, f) => prop_assert!(false, "negative-cycle presence diverged: brute {b:?} vs found {f:?}"),
            }
        }

        /// Cancelling on random cyclic nets always matches the simplex's
        /// objective is covered by the integration proptests; here: the
        /// solver must never report a *worse* objective than plain SSP on
        /// DAGs (they must be equal).
        #[test]
        fn agrees_with_ssp_on_random_dags(
            arcs in proptest::collection::vec(
                (0usize..6, 1usize..7, 1i64..5, -10i64..10),
                1..16,
            ),
            target in 0i64..4,
        ) {
            let mut net = FlowNetwork::new();
            let nodes: Vec<_> = (0..8).map(|_| net.add_node()).collect();
            for (u, d, cap, cost) in arcs {
                let v = (u + d).min(7);
                if v > u {
                    net.add_arc(nodes[u], nodes[v], cap, cost).unwrap();
                }
            }
            net.add_arc(nodes[0], nodes[7], 8, 50).unwrap(); // keep feasible
            let ssp = min_cost_flow(&net, nodes[0], nodes[7], target).unwrap();
            let cc = min_cost_flow_cycle_canceling(&net, nodes[0], nodes[7], target).unwrap();
            prop_assert_eq!(ssp.cost, cc.cost);
        }
    }
}
