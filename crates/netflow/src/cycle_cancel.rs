//! Negative-cycle-cancelling min-cost flow.
//!
//! A deliberately simple, independent reference implementation: establish any
//! feasible flow of the requested value with [Dinic's algorithm], then cancel
//! negative-cost residual cycles found by Bellman–Ford until none remain.
//! Optimality follows from the classical negative-cycle optimality condition.
//!
//! The primary solver is [`min_cost_flow`](crate::min_cost_flow); this one
//! exists (a) to cross-check it in tests and (b) to handle networks that
//! contain negative-cost *cycles*, which successive shortest paths cannot.
//!
//! [Dinic's algorithm]: crate::max_flow

use crate::dinic::dinic;
use crate::graph::{FlowNetwork, NodeId};
use crate::residual::{idx, Residual};
use crate::ssp::{check_endpoints, solution_from_residual};
use crate::{FlowSolution, NetflowError};

/// Solves for a minimum-cost flow of exactly `target` units from `s` to `t`,
/// honouring arc lower bounds, by cycle cancelling.
///
/// Unlike [`min_cost_flow`](crate::min_cost_flow) this solver accepts
/// networks with negative-cost cycles. It is asymptotically slower and meant
/// for validation and small problems.
///
/// # Errors
///
/// * [`NetflowError::Infeasible`] if no feasible flow of value `target`
///   exists.
/// * [`NetflowError::InvalidArc`] if `s` or `t` are out of range or equal.
pub fn min_cost_flow_cycle_canceling(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<FlowSolution, NetflowError> {
    check_endpoints(net, s, t, target)?;
    let n = net.node_count();

    // Feasibility: same excess/deficit reduction as the SSP solver, but we
    // only need *a* feasible flow, so Dinic suffices.
    let mut res = Residual::from_network(net, 2);
    let super_s = n;
    let super_t = n + 1;
    let mut excess = vec![0i64; n];
    for (_, arc) in net.arcs() {
        excess[idx(arc.to)] += arc.lower_bound;
        excess[idx(arc.from)] -= arc.lower_bound;
    }
    excess[idx(s)] += target;
    excess[idx(t)] -= target;
    let mut required = 0i64;
    for (v, &e) in excess.iter().enumerate() {
        if e > 0 {
            res.add_edge(super_s, v, e, 0);
            required += e;
        } else if e < 0 {
            res.add_edge(v, super_t, -e, 0);
        }
    }
    res.finalize();
    let achieved = dinic(&mut res, super_s, super_t);
    if achieved < required {
        return Err(NetflowError::Infeasible { required, achieved });
    }

    cancel_all_negative_cycles(&mut res);
    Ok(solution_from_residual(net, &res, target))
}

/// Repeatedly finds and saturates negative residual cycles until none exist.
fn cancel_all_negative_cycles(res: &mut Residual) {
    while let Some(cycle) = find_negative_cycle(res) {
        let bottleneck = cycle
            .iter()
            .map(|&e| res.cap_of(e))
            .min()
            .expect("cycle is non-empty");
        debug_assert!(bottleneck > 0);
        for &e in &cycle {
            res.push(e, bottleneck);
        }
    }
}

/// Bellman–Ford over the whole residual graph (virtual root reaching every
/// node at distance 0); returns the edges of one negative cycle if any.
fn find_negative_cycle(res: &Residual) -> Option<Vec<u32>> {
    let n = res.node_count();
    let mut dist = vec![0i64; n];
    let mut parent_edge = vec![u32::MAX; n];
    let mut cycle_node = None;
    for round in 0..n {
        let mut changed = false;
        for u in 0..n {
            for slot in res.active_slots(u) {
                if res.cap[slot] <= 0 {
                    continue;
                }
                let v = res.to[slot] as usize;
                if dist[u] + res.cost[slot] < dist[v] {
                    dist[v] = dist[u] + res.cost[slot];
                    parent_edge[v] = res.adj[slot];
                    changed = true;
                    if round == n - 1 {
                        cycle_node = Some(v);
                    }
                }
            }
        }
        if !changed {
            return None;
        }
    }
    let mut v = cycle_node?;
    // Walk n parent steps to guarantee we are on the cycle, then peel it off.
    for _ in 0..n {
        let e = parent_edge[v];
        v = other_end(res, e);
    }
    let start = v;
    let mut cycle = Vec::new();
    loop {
        let e = parent_edge[v];
        cycle.push(e);
        v = other_end(res, e);
        if v == start {
            break;
        }
    }
    cycle.reverse();
    Some(cycle)
}

fn other_end(res: &Residual, e: u32) -> usize {
    res.edges[(e ^ 1) as usize].to as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_cost_flow;

    #[test]
    fn matches_ssp_on_dag() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 2, 1).unwrap();
        net.add_arc(s, b, 2, 4).unwrap();
        net.add_arc(a, b, 1, -2).unwrap();
        net.add_arc(a, t, 1, 6).unwrap();
        net.add_arc(b, t, 3, 1).unwrap();
        for f in 0..=3 {
            let ssp = min_cost_flow(&net, s, t, f).unwrap();
            let cc = min_cost_flow_cycle_canceling(&net, s, t, f).unwrap();
            assert_eq!(ssp.cost, cc.cost, "flow value {f}");
        }
    }

    #[test]
    fn handles_negative_cycle() {
        // Cycle a -> b -> a with total cost -2: the optimum saturates it even
        // though it carries no s-t flow.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 0).unwrap();
        net.add_arc(a, b, 2, -3).unwrap();
        net.add_arc(b, a, 2, 1).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        let sol = min_cost_flow_cycle_canceling(&net, s, t, 1).unwrap();
        // One unit s->a->b->t (-3) plus one residual cycle a->b->a (-2).
        assert_eq!(sol.cost, -5);
    }

    #[test]
    fn lower_bounds_respected() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc_bounded(s, a, 1, 1, 100).unwrap();
        net.add_arc(a, t, 1, 0).unwrap();
        net.add_arc(s, b, 1, 0).unwrap();
        net.add_arc(b, t, 1, 0).unwrap();
        let sol = min_cost_flow_cycle_canceling(&net, s, t, 1).unwrap();
        assert_eq!(sol.cost, 100);
        assert_eq!(sol.flows[0], 1);
    }

    #[test]
    fn infeasible_target() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_arc(s, t, 1, 0).unwrap();
        assert!(matches!(
            min_cost_flow_cycle_canceling(&net, s, t, 2),
            Err(NetflowError::Infeasible { .. })
        ));
    }
}
