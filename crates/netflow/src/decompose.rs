//! Decomposed parallel min-cost-flow: region-partitioned settling over a
//! reduced-cost working set, joined by a price-repair pass.
//!
//! The serial SSP solver ([`ssp_phases`]) spends almost all of its time in
//! [`dijkstra_settle`] scanning the full residual adjacency once per phase.
//! This module replaces that settle with a divide-and-conquer variant:
//!
//! 1. **Working set** ([`build_working_set`]): after the initial exact
//!    potentials, each node keeps only its `KEEP_RANK` cheapest outgoing and
//!    incoming residual edges by reduced cost (supers keep everything, and
//!    an edge's partner rides along so pushes stay visible). On the paper's
//!    allocation networks this retains ~40% of the arcs while the optimum
//!    barely moves — measured cost gap below one tie-break quantum at
//!    `KEEP_RANK = 48` on the 512-variable instance.
//! 2. **Region partition** ([`partition`]): contiguous node ranges over the
//!    flat CSR, cut near build-stage hints
//!    ([`SolverWorkspace::set_region_hints`], variable boundaries in the
//!    allocation network) so few kept arcs cross regions. Each region owns a
//!    split-borrowable [`RegionArena`](crate::workspace::RegionArena) — its
//!    private frontier heap and seed buffer — while distances live in a
//!    shared CAS-min [`AtomicI64`] array.
//! 3. **Parallel settle** ([`par_settle`]): scoped worker threads run
//!    label-correcting Dijkstra waves over their region's kept adjacency;
//!    a relaxation that improves a foreign node posts it to that region's
//!    inbox, and the main thread launches waves until every inbox drains.
//!    The fixpoint is the exact kept-subgraph distance labels for every
//!    node within the sink's distance — independent of scheduling, which is
//!    what makes the path deterministic across `LEMRA_THREADS` settings.
//! 4. **Sink-side blocking flow** ([`blocking_flow_kept`]): augmenting paths
//!    are found by a backward DFS from the sink over admissible kept arcs.
//!    Per round the source's admissible cone covers most of the settled
//!    subgraph while the sink's tight in-cone is tiny, so searching from the
//!    sink visits orders of magnitude fewer arcs for the same paths; arc
//!    cursors persist across augments within a round.
//! 5. **Join/repair** ([`repair_certificate`]): the kept subgraph may have
//!    let a few pushes run along paths that are not shortest in the full
//!    residual, so after the flow target is met the potentials are lowered
//!    to a valid certificate by unfrozen label correcting over the *full*
//!    residual; any negative residual cycle the pruning let through is
//!    detected from the label-correcting parent graph and cancelled in
//!    place (preserving the flow value — the measured cost gap at
//!    `KEEP_RANK = 48` is below one tie-break quantum, so these cycles are
//!    few and tiny). When the repair budget trips instead, the solver falls
//!    back to a from-scratch serial solve. A valid certificate proves the
//!    flow is minimum-cost at its value, so the final answer is exact — on
//!    tie-broken networks (unique optimum) it is byte-identical to serial.
//!
//! Worker panics (including injected `region<k>` faults) are caught inside
//! the wave, transported to the main thread and re-thrown there, so a
//! [`ResilientSolver`](crate::ResilientSolver) chain sees an ordinary
//! `SolverPanicked` incident and retries on the serial anchor.

use crate::budget::SolveBudget;
use crate::config::LemraConfig;
use crate::graph::{FlowNetwork, NodeId};
use crate::radix::RadixHeap;
use crate::residual::Residual;
use crate::ssp::{
    check_endpoints_with, dijkstra_settle, initial_potentials, solution_from_residual, ssp_phases,
    transform_into, update_potentials,
};
use crate::workspace::{with_thread_workspace, NodeState, SolverWorkspace, INF};
use crate::{FlowSolution, NetflowError};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard};

/// Per-node working-set width: each node keeps this many cheapest outgoing
/// and incoming residual edges by initial reduced cost. 48 keeps ~40% of the
/// arcs on the allocation networks with a sub-quantum cost gap (the repair
/// pass absorbs the rest) and is the measured sweet spot on the 512-variable
/// instance: narrower widths push real shortest paths out of the working set
/// and the repair pass pays for them several times over.
pub(crate) const KEEP_RANK: usize = 48;

/// Below this transformed node count an unspecified worker request runs the
/// single-region path: thread spin-up costs more than the whole solve.
pub(crate) const PAR_MIN_NODES: usize = 512;

/// High bit of a compact `kept_to` entry, set while the arc has residual
/// capacity: the settle and blocking-flow scans reject a dead arc on the
/// 4-byte head load alone instead of also streaming its 8-byte capacity.
const KEPT_LIVE: u32 = 1 << 31;

/// Decomposed parallel [`min_cost_flow`](crate::min_cost_flow) using the
/// calling thread's shared workspace. Worker count comes from
/// [`LemraConfig`] (`LEMRA_THREADS`, default available parallelism).
///
/// # Errors
///
/// Same contract as [`min_cost_flow`](crate::min_cost_flow): the same
/// validation, feasibility and budget errors, with budget incidents
/// reporting backend `"par_ssp"`.
pub fn min_cost_flow_par(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Result<FlowSolution, NetflowError> {
    with_thread_workspace(|ws| min_cost_flow_par_with(net, s, t, target, ws, None))
}

/// [`min_cost_flow_par`] with an explicit workspace and worker count.
///
/// `workers: None` sizes the pool from [`LemraConfig`] (and drops to one
/// region below [`PAR_MIN_NODES`] nodes); `Some(w)` forces exactly `w`
/// regions, however degenerate — `Some(1)` is the single-region path and
/// `Some(usize::MAX)` partitions every node into its own region, both of
/// which must (and do) produce the same answer.
///
/// # Errors
///
/// Same as [`min_cost_flow_par`].
pub fn min_cost_flow_par_with(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
    ws: &mut SolverWorkspace,
    workers: Option<usize>,
) -> Result<FlowSolution, NetflowError> {
    check_endpoints_with(net, s, t, target, ws)?;
    let workers = effective_workers(net.node_count() + 2, workers);

    let mut guard = ws.lease_arena();
    let (res, ws) = guard.parts();
    let (super_s, super_t, required) = transform_into(net, s, t, target, res);

    let outcome = par_run(res, super_s, super_t, required, ws, workers);
    // `par_run` stops the push log on its success paths; make sure an
    // early error (budget, fault) cannot leave it recording.
    res.stop_push_log();
    outcome.and_then(|par| {
        let flow = match par {
            Par::Flow(flow) => flow,
            Par::Fallback => {
                // The join could not restore the certificate; restart the
                // solve serially from the pristine transformed state.
                if !res.rollback() {
                    transform_into(net, s, t, target, res);
                }
                ssp_phases(res, super_s, super_t, required, ws, "par_ssp")?
            }
        };
        if flow < required {
            Err(NetflowError::Infeasible {
                required,
                achieved: flow,
            })
        } else {
            Ok(solution_from_residual(net, res, target))
        }
    })
}

/// Outcome of the decomposed phase loop.
enum Par {
    /// Units moved, with a repaired (valid) reduced-cost certificate.
    Flow(i64),
    /// The certificate could not be repaired; re-solve serially.
    Fallback,
}

/// Resolves the region/worker count for a transformed instance of `nodes`
/// nodes: an explicit request wins verbatim (clamped to ≥ 1), otherwise
/// [`LemraConfig`] decides, with tiny instances forced single-region and
/// the result capped at the machine's parallelism — a region only earns
/// its cross-boundary re-settling when a core of its own runs it, so
/// `LEMRA_THREADS` above the core count clamps down rather than
/// partitioning further (which is also why thread counts beyond the
/// hardware cannot perturb the result).
fn effective_workers(nodes: usize, requested: Option<usize>) -> usize {
    match requested {
        Some(w) => w.max(1),
        None if nodes < PAR_MIN_NODES => 1,
        None => {
            let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
            LemraConfig::get().worker_count(usize::MAX).min(hw)
        }
    }
}

/// Locks a cross-region inbox, shrugging off poisoning: inbox contents are
/// re-cleared by [`partition`] at the start of every solve, so data left by
/// a panicked worker is never observed.
fn lock_inbox(m: &Mutex<Vec<u32>>) -> MutexGuard<'_, Vec<u32>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The decomposed phase loop: exactly the [`ssp_phases`] structure with the
/// settling Dijkstra swapped for [`par_settle`] over the kept subgraph,
/// followed by the join repair and a serial continuation that finishes the
/// last units (and delivers the authoritative feasibility verdict) on the
/// full residual.
fn par_run(
    res: &mut Residual,
    s: usize,
    t: usize,
    target: i64,
    ws: &mut SolverWorkspace,
    workers: usize,
) -> Result<Par, NetflowError> {
    let n = res.node_count();
    ws.prepare(n);
    initial_potentials(res, s, ws)?;
    build_working_set(res, ws);
    partition(ws, n, workers);
    // Flat potential mirror for the kept scans — dense 8-byte loads where
    // `NodeState` would stride 24; `fold_potentials` keeps it current.
    ws.par.potential.clear();
    let pots = ws.node[..n].iter().map(|st| st.potential);
    ws.par.potential.extend(pots);
    res.start_push_log();

    let budget = ws.budget;
    let mut rounds = 0u64;
    let mut flow = 0i64;
    // Phase 0 is identical to the serial path: the initial potentials are
    // exact full-graph distances, so the admissible subgraph is the true
    // shortest-path DAG and no settle is needed.
    if flow < target && ws.node[t].potential < INF {
        budget.check_rounds("par_ssp", "augment", rounds)?;
        rounds += 1;
        flow += crate::dinic::blocking_flow_admissible(res, s, t, ws, target - flow);
    }
    while flow < target {
        budget.check_rounds("par_ssp", "augment", rounds)?;
        rounds += 1;
        patch_kept_caps(res, ws);
        let dist_t = par_settle(res, s, t, ws)?;
        if dist_t >= INF {
            break;
        }
        fold_potentials(ws, dist_t);
        let pushed = blocking_flow_kept(res, s, t, ws, target - flow);
        if pushed == 0 {
            // The kept-subgraph distances promised an admissible path the
            // kept residual no longer offers; the repair below sorts the
            // potentials out and the serial continuation finishes.
            break;
        }
        flow += pushed;
    }
    res.stop_push_log();

    // Join: restore a valid reduced-cost certificate on the full residual.
    // Everything pushed so far keeps its value; the certificate proves it
    // is minimum-cost at that value.
    if !repair_certificate(res, ws) {
        return Ok(Par::Fallback);
    }

    // Serial continuation on the full residual: routes whatever flow the
    // pruned working set could not see and produces the exact achieved
    // value when the instance is infeasible.
    while flow < target {
        budget.check_rounds("par_ssp", "augment", rounds)?;
        rounds += 1;
        let dist_t = dijkstra_settle(res, s, t, ws)?;
        if dist_t >= INF {
            break;
        }
        update_potentials(ws, dist_t);
        let pushed = crate::dinic::blocking_flow_admissible(res, s, t, ws, target - flow);
        if pushed == 0 {
            break;
        }
        flow += pushed;
    }
    Ok(Par::Flow(flow))
}

/// Marks each kept slice's top-`k` entries (by `(reduced cost, edge id)`,
/// deterministic because edge ids are unique) in the working-set bitmap.
fn mark_top_k(rank: &mut Vec<(i64, u32)>, k: usize, keep: &mut [bool]) {
    if k < rank.len() {
        rank.select_nth_unstable(k - 1);
        rank.truncate(k);
    }
    for &(_, e) in rank.iter() {
        keep[e as usize] = true;
    }
}

/// Builds the reduced-cost working set over the freshly transformed
/// residual: per node, the [`KEEP_RANK`] cheapest outgoing *and* incoming
/// positive-capacity edges by initial reduced cost (the super source/sink
/// keep everything — their incident arcs carry all supply), closed under
/// partnering so a push on a kept edge activates a kept backward edge, then
/// laid out as a CSR of stable edge ids (slot positions move under pushes;
/// edge ids do not).
fn build_working_set(res: &Residual, ws: &mut SolverWorkspace) {
    let n = res.node_count();
    let m = res.first_out[n] as usize;
    let super_s = n - 2;
    let super_t = n - 1;
    let SolverWorkspace { node, par, .. } = ws;
    let node: &[NodeState] = &node[..n];

    par.keep.clear();
    par.keep.resize(m, false);

    // Out-arc ranking: per tail, keep the K cheapest by reduced cost.
    for u in 0..n {
        let pu = node[u].potential;
        if pu >= INF {
            continue;
        }
        par.rank.clear();
        for sl in &res.slots[res.active_slots(u)] {
            if sl.cap <= 0 {
                continue;
            }
            let pv = node[sl.to as usize].potential;
            if pv >= INF {
                continue;
            }
            par.rank.push((sl.cost + pu - pv, sl.edge));
        }
        let k = if u == super_s || u == super_t {
            usize::MAX
        } else {
            KEEP_RANK
        };
        mark_top_k(&mut par.rank, k, &mut par.keep);
    }

    // In-arc ranking via counting sort by head: this is the pass that keeps
    // every node *suppliable* — a node whose cheap in-arcs all start at
    // high-degree tails would lose them to the out-arc cap alone.
    par.in_start.clear();
    par.in_start.resize(n + 1, 0);
    for u in 0..n {
        if node[u].potential >= INF {
            continue;
        }
        for sl in &res.slots[res.active_slots(u)] {
            if sl.cap <= 0 || node[sl.to as usize].potential >= INF {
                continue;
            }
            par.in_start[sl.to as usize + 1] += 1;
        }
    }
    for v in 0..n {
        par.in_start[v + 1] += par.in_start[v];
    }
    par.in_cursor.clear();
    par.in_cursor.extend_from_slice(&par.in_start[..n]);
    par.in_items.clear();
    par.in_items.resize(par.in_start[n] as usize, (0, 0));
    for u in 0..n {
        let pu = node[u].potential;
        if pu >= INF {
            continue;
        }
        for sl in &res.slots[res.active_slots(u)] {
            if sl.cap <= 0 {
                continue;
            }
            let v = sl.to as usize;
            let pv = node[v].potential;
            if pv >= INF {
                continue;
            }
            par.in_items[par.in_cursor[v] as usize] = (sl.cost + pu - pv, sl.edge);
            par.in_cursor[v] += 1;
        }
    }
    for v in 0..n {
        let slice = &mut par.in_items[par.in_start[v] as usize..par.in_start[v + 1] as usize];
        let k = if v == super_s || v == super_t {
            usize::MAX
        } else {
            KEEP_RANK
        };
        par.rank.clear();
        par.rank.extend_from_slice(slice);
        mark_top_k(&mut par.rank, k, &mut par.keep);
    }

    // Close under partnering, then lay the kept edges out as a CSR by tail.
    for e in 0..m {
        if par.keep[e] {
            par.keep[e ^ 1] = true;
        }
    }
    par.kept_start.clear();
    par.kept_start.resize(n + 1, 0);
    for u in 0..n {
        let mut kept = 0u32;
        for sl in &res.slots[res.all_slots(u)] {
            kept += par.keep[sl.edge as usize] as u32;
        }
        par.kept_start[u + 1] = kept;
    }
    for u in 0..n {
        par.kept_start[u + 1] += par.kept_start[u];
    }
    // Lay the kept edges out as a CSR and materialise the hot-loop payload
    // (head + live bit, cost, capacity) in the same sweep — the slots are
    // already in hand here, and going back through `slot_of` per kept edge
    // would cost two dependent random loads each. Capacities are a
    // snapshot; the push log keeps them current between rounds.
    let kn = par.kept_start[n] as usize;
    par.kept_edges.clear();
    par.kept_edges.reserve(kn);
    par.kept_pos.clear();
    par.kept_pos.resize(m, u32::MAX);
    par.kept_to.clear();
    par.kept_to.reserve(kn);
    par.kept_cost.clear();
    par.kept_cost.reserve(kn);
    par.kept_cap.clear();
    par.kept_cap.reserve(kn);
    for u in 0..n {
        for sl in &res.slots[res.all_slots(u)] {
            if par.keep[sl.edge as usize] {
                par.kept_pos[sl.edge as usize] = par.kept_edges.len() as u32;
                par.kept_edges.push(sl.edge);
                par.kept_to
                    .push(sl.to | if sl.cap > 0 { KEPT_LIVE } else { 0 });
                par.kept_cost.push(sl.cost);
                par.kept_cap.push(sl.cap);
            }
        }
    }
    debug_assert_eq!(par.kept_edges.len(), kn);
}

/// Patches the compact kept capacities from the residual's push log. Every
/// push moved capacity between an edge and its partner; the working set is
/// closed under partnering, so either both sit in the kept CSR or neither
/// does.
fn patch_kept_caps(res: &mut Residual, ws: &mut SolverWorkspace) {
    let par = &mut ws.par;
    for &e in &res.edge_log {
        for id in [e, e ^ 1] {
            let p = par.kept_pos[id as usize];
            if p != u32::MAX {
                let cap = res.cap_of(id);
                par.kept_cap[p as usize] = cap;
                if cap > 0 {
                    par.kept_to[p as usize] |= KEPT_LIVE;
                } else {
                    par.kept_to[p as usize] &= !KEPT_LIVE;
                }
            }
        }
    }
    res.edge_log.clear();
}

/// Partitions `0..n` into `workers.clamp(1, n)` contiguous regions with
/// roughly equal kept-degree weight, snapping each cut to the nearest
/// build-stage region hint (when the workspace carries any) so the cuts
/// land on structural boundaries with few crossing arcs. Also (re)sizes the
/// per-region arenas, inboxes and the shared atomic distance array.
fn partition(ws: &mut SolverWorkspace, n: usize, workers: usize) {
    let SolverWorkspace {
        par, region_hints, ..
    } = ws;
    let regions = workers.clamp(1, n.max(1));
    par.bounds.clear();
    par.region_of.clear();
    par.region_of.resize(n, 0);

    if regions >= n {
        // All-singleton degenerate partition: node v is region v.
        for v in 0..n {
            par.bounds.push(v as u32 + 1);
            par.region_of[v] = v as u32;
        }
    } else {
        let weight = |u: usize| -> u64 { 1 + (par.kept_start[u + 1] - par.kept_start[u]) as u64 };
        let total: u64 = (0..n).map(weight).sum();
        let hints: &[u32] = region_hints.as_deref().unwrap_or(&[]);
        let window = (n / (4 * regions)).max(1) as u32;
        let mut acc = 0u64;
        let mut next_cut = 1u64; // cut index k makes bound k of `regions`
        let mut last_bound = 0u32;
        for u in 0..n {
            acc += weight(u);
            if next_cut < regions as u64 && acc * regions as u64 >= total * next_cut {
                let mut cut = u as u32 + 1;
                // Snap to the nearest hint inside the window, if one exists
                // strictly between the previous bound and the end.
                let lo = cut.saturating_sub(window);
                let hi = cut + window;
                if let Some(&h) = hints
                    .iter()
                    .filter(|&&h| h > last_bound && (h as usize) < n && h >= lo && h <= hi)
                    .min_by_key(|&&h| h.abs_diff(cut))
                {
                    cut = h;
                }
                if cut > last_bound && (cut as usize) < n {
                    par.bounds.push(cut);
                    last_bound = cut;
                    next_cut += 1;
                }
            }
        }
        par.bounds.push(n as u32);
        let mut r = 0u32;
        for v in 0..n {
            while v as u32 >= par.bounds[r as usize] {
                r += 1;
            }
            par.region_of[v] = r;
        }
    }

    let regions = par.bounds.len();
    if par.arenas.len() < regions {
        par.arenas.resize_with(regions, Default::default);
    }
    if par.inboxes.len() < regions {
        par.inboxes.resize_with(regions, Default::default);
    }
    for inbox in &mut par.inboxes[..regions] {
        inbox
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
    if par.dist.len() < n {
        par.dist.resize_with(n, || AtomicI64::new(INF));
    }
}

/// One settling round over the kept subgraph, region-parallel.
///
/// Distances live in a shared CAS-min array; each region runs
/// label-correcting Dijkstra waves over its own frontier heap, posting
/// improvements of foreign nodes to that region's inbox. The main thread
/// coordinates waves over command/done channels: a wave launches every
/// region with a non-empty inbox and waits for all of them, so inbox
/// scans never race a running worker. The fixpoint (all inboxes empty)
/// carries exact kept-subgraph distances for every node within the sink's
/// distance — the same guarantee [`dijkstra_settle`] gives on the full
/// graph, by the same monotone-pruning argument, which is what makes the
/// result independent of worker count and scheduling.
///
/// With a single region the wave loop runs inline on the calling thread —
/// no scope, no channels — which is also the honest serial baseline the
/// bench suite compares against.
///
/// # Errors
///
/// [`NetflowError::BudgetExceeded`] when the workspace deadline expires
/// between waves (workers are quiescent at every check).
fn par_settle(
    res: &Residual,
    s: usize,
    t: usize,
    ws: &mut SolverWorkspace,
) -> Result<i64, NetflowError> {
    let budget: SolveBudget = ws.budget;
    ws.dijkstra_rounds += 1;
    let n = res.node_count();
    let SolverWorkspace { par, .. } = ws;
    let pot: &[i64] = &par.potential[..n];
    let regions = par.bounds.len();
    let dist: &[AtomicI64] = &par.dist[..n];
    let region_of: &[u32] = &par.region_of[..n];
    let kept = KeptCsr {
        start: &par.kept_start,
        to: &par.kept_to,
        cost: &par.kept_cost,
    };
    let inboxes: &[Mutex<Vec<u32>>] = &par.inboxes[..regions];

    for d in dist {
        d.store(INF, Ordering::Relaxed);
    }
    dist[s].store(0, Ordering::Relaxed);
    lock_inbox(&inboxes[region_of[s] as usize]).push(s as u32);

    if regions == 1 {
        let arena = &mut par.arenas[0];
        let mut wave = 0u64;
        loop {
            budget.check_deadline("par_ssp", "settle", wave)?;
            wave += 1;
            arena.seeds.clear();
            arena.seeds.append(&mut lock_inbox(&inboxes[0]));
            if arena.seeds.is_empty() {
                break;
            }
            settle_wave(
                0,
                t,
                kept,
                pot,
                region_of,
                dist,
                inboxes,
                &mut arena.heap,
                &arena.seeds,
                true,
            );
        }
        return Ok(dist[t].load(Ordering::Relaxed));
    }

    // More regions than the machine has cores: scoped threads would fight
    // for the same CPUs, and the per-wave channel round-trips dwarf the
    // waves themselves. Run each region's waves inline instead — the
    // settle is a CAS-min fixpoint, so executing the same region structure
    // on fewer OS threads changes nothing about the result, only the
    // schedule. (This is also what keeps `LEMRA_THREADS=8` honest on a
    // single-core container.)
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    if hw < 2 {
        let mut wave = 0u64;
        loop {
            budget.check_deadline("par_ssp", "settle", wave)?;
            wave += 1;
            let mut launched = 0usize;
            for (r, arena) in par.arenas[..regions].iter_mut().enumerate() {
                arena.seeds.clear();
                arena.seeds.append(&mut lock_inbox(&inboxes[r]));
                if arena.seeds.is_empty() {
                    continue;
                }
                launched += 1;
                settle_wave(
                    r,
                    t,
                    kept,
                    pot,
                    region_of,
                    dist,
                    inboxes,
                    &mut arena.heap,
                    &arena.seeds,
                    false,
                );
            }
            if launched == 0 {
                break;
            }
        }
        return Ok(dist[t].load(Ordering::Relaxed));
    }

    std::thread::scope(|scope| -> Result<(), NetflowError> {
        let (done_tx, done_rx) = mpsc::channel::<Result<(), Box<dyn std::any::Any + Send>>>();
        let mut cmd_txs = Vec::with_capacity(regions);
        for (r, arena) in par.arenas[..regions].iter_mut().enumerate() {
            let (cmd_tx, cmd_rx) = mpsc::channel::<bool>();
            cmd_txs.push(cmd_tx);
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                // The whole wave — inbox drain included — runs inside
                // catch_unwind so a panicking region (genuine or injected)
                // reports through the done channel instead of deadlocking
                // or poisoning state the main thread relies on.
                while let Ok(true) = cmd_rx.recv() {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        arena.seeds.clear();
                        arena.seeds.append(&mut lock_inbox(&inboxes[r]));
                        settle_wave(
                            r,
                            t,
                            kept,
                            pot,
                            region_of,
                            dist,
                            inboxes,
                            &mut arena.heap,
                            &arena.seeds,
                            false,
                        );
                    }));
                    let failed = outcome.is_err();
                    let _ = done_tx.send(outcome);
                    if failed {
                        break;
                    }
                }
            });
        }
        drop(done_tx);

        let mut wave = 0u64;
        let mut verdict = Ok(());
        loop {
            if let Err(e) = budget.check_deadline("par_ssp", "settle", wave) {
                verdict = Err(e);
                break;
            }
            wave += 1;
            let mut launched = 0usize;
            for (r, inbox) in inboxes.iter().enumerate() {
                if !lock_inbox(inbox).is_empty() {
                    cmd_txs[r]
                        .send(true)
                        .expect("par_ssp settle worker exited prematurely");
                    launched += 1;
                }
            }
            if launched == 0 {
                break;
            }
            for _ in 0..launched {
                match done_rx.recv() {
                    Ok(Ok(())) => {}
                    Ok(Err(payload)) => {
                        for tx in &cmd_txs {
                            let _ = tx.send(false);
                        }
                        resume_unwind(payload);
                    }
                    Err(_) => {
                        for tx in &cmd_txs {
                            let _ = tx.send(false);
                        }
                        panic!("par_ssp settle worker terminated unexpectedly");
                    }
                }
            }
        }
        for tx in &cmd_txs {
            let _ = tx.send(false);
        }
        verdict
    })?;
    Ok(dist[t].load(Ordering::Relaxed))
}

/// Shared read-only view of the compact kept adjacency: CSR row starts
/// plus the sequential-scan payload (head + live bit, cost) the settle
/// iterates instead of chasing `slot_of` indirections.
#[derive(Clone, Copy)]
struct KeptCsr<'a> {
    start: &'a [u32],
    to: &'a [u32],
    cost: &'a [i64],
}

/// One region's Dijkstra wave over the kept adjacency.
///
/// Seeds are the drained inbox; the heap is reset per wave (seed keys may
/// regress below the previous wave's floor, relaxations never do). Popping
/// stops once a key exceeds the sink's current distance — sound because
/// radix pops are monotone and `dist[t]` only decreases, so every entry at
/// or below the final sink distance pops before the cut. `serial` skips the
/// CAS for the single-region path where plain loads and stores suffice.
#[allow(clippy::too_many_arguments)]
fn settle_wave(
    region: usize,
    t: usize,
    kept: KeptCsr<'_>,
    pot: &[i64],
    region_of: &[u32],
    dist: &[AtomicI64],
    inboxes: &[Mutex<Vec<u32>>],
    heap: &mut RadixHeap,
    seeds: &[u32],
    serial: bool,
) {
    #[cfg(feature = "fault-inject")]
    if crate::fault::maybe_inject_region(region) {
        panic!("injected fault: panic in par_ssp settle worker for region {region}");
    }
    heap.reset();
    for &u in seeds {
        let d = dist[u as usize].load(Ordering::Relaxed);
        if d < INF {
            heap.push(d, u);
        }
    }
    while let Some((d, u)) = heap.pop() {
        if d > dist[t].load(Ordering::Relaxed) {
            break;
        }
        let u = u as usize;
        if d > dist[u].load(Ordering::Relaxed) {
            continue;
        }
        if u == t {
            continue;
        }
        let pu = pot[u];
        if pu >= INF {
            continue;
        }
        for i in kept.start[u] as usize..kept.start[u + 1] as usize {
            let tv = kept.to[i];
            if tv & KEPT_LIVE == 0 {
                continue;
            }
            let v = (tv & !KEPT_LIVE) as usize;
            let pv = pot[v];
            if pv >= INF {
                continue;
            }
            let rc = kept.cost[i] + pu - pv;
            debug_assert!(rc >= 0, "negative reduced cost on kept entry {i}");
            let nd = d + rc;
            if serial {
                if nd < dist[v].load(Ordering::Relaxed) {
                    dist[v].store(nd, Ordering::Relaxed);
                    heap.push(nd, v as u32);
                }
            } else {
                let mut cur = dist[v].load(Ordering::Relaxed);
                let mut won = false;
                while nd < cur {
                    match dist[v].compare_exchange_weak(
                        cur,
                        nd,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            won = true;
                            break;
                        }
                        Err(seen) => cur = seen,
                    }
                }
                if won {
                    let owner = region_of[v] as usize;
                    if owner == region {
                        heap.push(nd, v as u32);
                    } else {
                        lock_inbox(&inboxes[owner]).push(v as u32);
                    }
                }
            }
        }
    }
}

/// Folds a settling round's kept-subgraph distances into the potentials —
/// [`update_potentials`] against the atomic distance array: settled nodes
/// add their exact distance, everything else (including unreached, at
/// `INF`) clamps to `dist_t`, which keeps every *kept* reduced cost
/// non-negative by the standard argument restricted to the kept subgraph.
fn fold_potentials(ws: &mut SolverWorkspace, dist_t: i64) {
    let SolverWorkspace { node, par, .. } = ws;
    for ((st, d), p) in node.iter_mut().zip(&par.dist).zip(&mut par.potential) {
        if st.potential < INF {
            st.potential += d.load(Ordering::Relaxed).min(dist_t);
        }
        *p = st.potential;
    }
}

/// Node state of the kept blocking-flow DFS.
const BF_FRESH: i32 = 0;
/// On the current DFS path (cycle guard — admissible zero-cost cycles
/// exist in tie-broken networks' residuals).
const BF_ON_PATH: i32 = 1;
/// Retired this round: every admissible out-arc dead-ended.
const BF_RETIRED: i32 = 2;

/// Blocking flow restricted to the kept admissible subgraph: positive
/// compact capacity and zero reduced cost under the just-folded potentials
/// (the settle only explored kept arcs, so its distances only certify kept
/// paths). The search runs *backward from the sink*: per round the
/// admissible cone out of the source covers most of the settled subgraph,
/// while the tight in-cone of the sink holds little beyond the augmenting
/// paths themselves, so a cursor DFS from `t` touches a small fraction of
/// the arcs a forward walk would. The working set is closed under
/// partnering, so a node's admissible in-arcs are exactly the live
/// partners of its own CSR row. Pushes go through [`Residual::push`] so
/// the residual stays authoritative — journal, partner activation, push
/// log — with the compact capacities updated in place for the DFS's own
/// benefit. Scans follow the kept-CSR order, which is fixed before
/// partitioning, so routing is identical at every worker count.
fn blocking_flow_kept(
    res: &mut Residual,
    s: usize,
    t: usize,
    ws: &mut SolverWorkspace,
    limit: i64,
) -> i64 {
    let n = res.node_count();
    let par = &mut ws.par;

    par.level.clear();
    par.level.resize(n, BF_FRESH);
    par.iter.clear();
    par.iter.extend_from_slice(&par.kept_start[..n]);
    // `path[k]` is the compact index of the in-arc into `chain[k]`;
    // `chain` is the node trail `t, …` the backward walk stands on.
    par.path.clear();
    par.chain.clear();
    par.level[t] = BF_ON_PATH;
    par.chain.push(t as u32);
    let mut pushed = 0i64;
    while pushed < limit {
        let v = *par.chain.last().expect("chain keeps its sink anchor") as usize;
        if v == s {
            let mut amount = limit - pushed;
            for &g in &par.path {
                amount = amount.min(par.kept_cap[g as usize]);
            }
            for &g in &par.path {
                let g = g as usize;
                let e = par.kept_edges[g];
                res.push(e, amount);
                par.kept_cap[g] -= amount;
                if par.kept_cap[g] == 0 {
                    par.kept_to[g] &= !KEPT_LIVE;
                }
                let p = par.kept_pos[(e ^ 1) as usize] as usize;
                par.kept_cap[p] += amount;
                par.kept_to[p] |= KEPT_LIVE;
            }
            pushed += amount;
            // Restart from the sink with cursors kept: unsaturated path
            // arcs sit right under their tails' cursors and are retried
            // first, saturated ones are rejected and stepped past.
            for &x in &par.chain {
                par.level[x as usize] = BF_FRESH;
            }
            par.path.clear();
            par.chain.clear();
            par.level[t] = BF_ON_PATH;
            par.chain.push(t as u32);
            continue;
        }
        let pv = par.potential[v];
        let mut advanced = false;
        while par.iter[v] < par.kept_start[v + 1] {
            let i = par.iter[v] as usize;
            let w = (par.kept_to[i] & !KEPT_LIVE) as usize;
            if par.level[w] == BF_FRESH {
                // The in-arc `g = (w, v)` is this row entry's partner.
                let g = par.kept_pos[(par.kept_edges[i] ^ 1) as usize] as usize;
                let pw = par.potential[w];
                if par.kept_to[g] & KEPT_LIVE != 0 && pw < INF && par.kept_cost[g] + pw - pv == 0 {
                    par.level[w] = BF_ON_PATH;
                    par.chain.push(w as u32);
                    par.path.push(g as u32);
                    advanced = true;
                    break;
                }
            }
            par.iter[v] += 1;
        }
        if !advanced {
            // Dead end: no admissible in-arc reaches `v` any more this
            // round. Retiring the sink itself exhausts the round.
            par.level[v] = BF_RETIRED;
            par.chain.pop();
            par.path.pop();
            match par.chain.last() {
                Some(&x) => par.iter[x as usize] += 1,
                None => break,
            }
        }
    }
    pushed
}

/// Per-node lowering count between parent-graph cycle probes: cheap enough
/// that a genuine cycle is caught within a couple of laps, rare enough that
/// legitimate long correction chains pay almost nothing.
const WALK_PERIOD: u32 = 16;

/// Negative-cycle cancellations the join pass will perform before giving
/// up. Pruning at [`KEEP_RANK`] leaves at most a handful of tie-break-sized
/// cycles, so hitting this bound means the working set was badly wrong and
/// a from-scratch serial solve is cheaper than continuing.
const MAX_CANCELS: u32 = 256;

/// Join pass: restores a valid reduced-cost certificate on the *full*
/// residual, proving the flow routed through the kept subgraph is
/// minimum-cost at its value. Label correcting lowers the potentials the
/// common few arcs they are off by; any negative residual cycle the
/// pruning committed (flow a cheaper unseen detour undercuts) shows up as
/// a cycle in the label-correcting parent graph and is cancelled in place,
/// preserving the flow value. Returns `false` when the repair budget trips
/// instead; the caller then re-solves serially from scratch.
fn repair_certificate(res: &mut Residual, ws: &mut SolverWorkspace) -> bool {
    let n = res.node_count();
    let mut pot = std::mem::take(&mut ws.par.potential);
    pot.clear();
    pot.extend(ws.node[..n].iter().map(|st| st.potential));
    let ok = converge_prices(res, &mut pot);
    if ok {
        for (st, &p) in ws.node[..n].iter_mut().zip(&pot) {
            st.potential = p;
        }
    }
    ws.par.potential = pot;
    ok
}

/// Label-correcting state of [`converge_prices`], split out so node
/// relaxation can live in a free function (the borrow on `res` must end
/// before a cancellation mutates it).
struct Spfa {
    /// Times each node's potential has been lowered since the last reset.
    lowered: Vec<u32>,
    /// Queue membership bitmap.
    in_queue: Vec<bool>,
    /// Edge id that last lowered each node (`u32::MAX`: none). Any cycle in
    /// this parent graph is a negative-cost residual cycle (the classic
    /// Bellman–Ford predecessor-subgraph lemma).
    parent: Vec<u32>,
    /// Visit stamps for parent-chain walks; `stamp_id` names the current
    /// walk so the array never needs clearing.
    stamp: Vec<u32>,
    stamp_id: u32,
    /// FIFO frontier with the SLF (smaller-label-first) twist: a node
    /// cheaper than the head jumps the queue, approximating priority order
    /// without heap churn.
    queue: std::collections::VecDeque<u32>,
}

impl Spfa {
    fn new(n: usize) -> Self {
        Spfa {
            lowered: vec![0; n],
            in_queue: vec![false; n],
            parent: vec![u32::MAX; n],
            stamp: vec![0; n],
            stamp_id: 0,
            queue: std::collections::VecDeque::new(),
        }
    }

    /// (Re-)enqueues a node for relaxation, smaller-label-first: a node
    /// cheaper than the queue head goes to the front (the classic SLF
    /// heuristic), which approximates priority order and cuts re-lowering
    /// churn on the long correction chains the join repairs.
    fn enqueue(&mut self, v: usize, pot: &[i64]) {
        if !self.in_queue[v] {
            self.in_queue[v] = true;
            match self.queue.front() {
                Some(&f) if pot[v] < pot[f as usize] => self.queue.push_front(v as u32),
                _ => self.queue.push_back(v as u32),
            }
        }
    }
}

/// One node relaxation's verdict.
enum Relax {
    /// All out-edges relaxed without incident.
    Done,
    /// A parent-graph cycle surfaced: these edge ids form a negative-cost
    /// residual cycle, in reverse traversal order (irrelevant for
    /// cancellation).
    Cycle(Vec<u32>),
    /// A node was lowered more than `n + 1` times with no cycle in sight —
    /// a should-not-happen divergence guard.
    Diverged,
}

/// Relaxes every residual out-edge of `u` once, recording parent pointers
/// and probing the parent graph for a cycle every [`WALK_PERIOD`]th
/// lowering of a node.
fn relax_node(res: &Residual, u: usize, pot: &mut [i64], st: &mut Spfa, cap: u32) -> Relax {
    let pu = pot[u];
    if pu >= INF {
        return Relax::Done;
    }
    for slot in res.active_slots(u) {
        let sl = res.slots[slot];
        if sl.cap <= 0 {
            continue;
        }
        let v = sl.to as usize;
        if pot[v] >= INF {
            continue;
        }
        let bound = pu + sl.cost;
        if bound < pot[v] {
            pot[v] = bound;
            st.parent[v] = sl.edge;
            st.lowered[v] += 1;
            if st.lowered[v] > cap {
                return Relax::Diverged;
            }
            if st.lowered[v] % WALK_PERIOD == 0 {
                st.stamp_id += 1;
                let Spfa { parent, stamp, .. } = st;
                if let Some(cycle) = extract_cycle(res, parent, v, stamp, st.stamp_id) {
                    return Relax::Cycle(cycle);
                }
            }
            st.enqueue(v, pot);
        }
    }
    Relax::Done
}

/// Walks parent pointers back from `start`, stamping visits; re-entering a
/// node stamped by *this* walk means the chain ran into a parent-graph
/// cycle, whose edges are collected and returned. A chain that ends at a
/// parentless node returns `None` (a legitimately long correction chain).
/// Earlier cancellations can leave a saturated edge in the parent graph;
/// collection re-checks liveness and, on a stale edge, severs it from the
/// parent graph and returns `None` instead of a bogus cycle.
fn extract_cycle(
    res: &Residual,
    parent: &mut [u32],
    start: usize,
    stamp: &mut [u32],
    stamp_id: u32,
) -> Option<Vec<u32>> {
    let mut y = start;
    loop {
        if stamp[y] == stamp_id {
            // `y` is on the cycle; every node around it has a parent.
            let first = y;
            let mut edges = Vec::new();
            loop {
                let e = parent[y];
                if res.cap_of(e) <= 0 {
                    parent[y] = u32::MAX;
                    return None;
                }
                edges.push(e);
                y = res.tail(e);
                if y == first {
                    return Some(edges);
                }
            }
        }
        stamp[y] = stamp_id;
        let e = parent[y];
        if e == u32::MAX {
            return None;
        }
        y = res.tail(e);
    }
}

/// Lowers `pot` to a valid potential by queue-driven label correcting
/// (SPFA) over the residual, with **no** freeze heuristic: unlike the
/// reoptimizer's price refinement, which caps per-node relaxations at a
/// small constant tuned for local perturbations, the join pass arrives
/// with potentials that are wrong along whole fold chains and legitimately
/// need many corrections. When the parent graph closes a cycle — a genuine
/// negative-cost residual cycle, i.e. flow the pruned phases committed
/// that a cheaper unseen detour undercuts — the cycle is cancelled
/// directly on the residual (saturating its bottleneck edge, preserving
/// the flow value, strictly lowering cost) and correction continues in
/// place: the cancellation only creates new residual edges out of the
/// cycle's own nodes, so re-enqueueing those nodes restores the "every
/// violated tail is queued" invariant without a restart. Returns `true`
/// once the queue drains, at which point `pot` is a valid reduced-cost
/// certificate; `false` when [`MAX_CANCELS`] cancellations did not
/// suffice.
fn converge_prices(res: &mut Residual, pot: &mut [i64]) -> bool {
    let n = res.node_count();
    let cap = n as u32 + 1;
    let mut st = Spfa::new(n);
    let mut cancels = 0u32;
    // One pass over every node seeds the queue with all violated tails;
    // relaxation keeps the invariant from there.
    for u in 0..n {
        match relax_node(res, u, pot, &mut st, cap) {
            Relax::Done => {}
            Relax::Diverged => return false,
            Relax::Cycle(cycle) => {
                if !cancel_cycle(res, &cycle, pot, &mut st, &mut cancels) {
                    return false;
                }
                // `u`'s remaining out-edges are revisited from the queue.
                st.enqueue(u, pot);
            }
        }
    }
    while let Some(u) = st.queue.pop_front() {
        let u = u as usize;
        st.in_queue[u] = false;
        match relax_node(res, u, pot, &mut st, cap) {
            Relax::Done => {}
            Relax::Diverged => return false,
            Relax::Cycle(cycle) => {
                if !cancel_cycle(res, &cycle, pot, &mut st, &mut cancels) {
                    return false;
                }
                st.enqueue(u, pot);
            }
        }
    }
    true
}

/// Saturates a negative-cost residual cycle: pushes the bottleneck
/// capacity around every edge, which keeps all flow-conservation values
/// intact and strictly lowers total cost. The cycle's nodes are severed
/// from the parent graph (their inbound parent edges may now be saturated)
/// and re-enqueued, which also covers the reverse edges the pushes just
/// opened — each has its tail on the cycle. Returns `false` once
/// [`MAX_CANCELS`] cancellations have been spent.
fn cancel_cycle(
    res: &mut Residual,
    cycle: &[u32],
    pot: &[i64],
    st: &mut Spfa,
    cancels: &mut u32,
) -> bool {
    *cancels += 1;
    if *cancels > MAX_CANCELS {
        return false;
    }
    debug_assert!(cycle.iter().map(|&e| res.cost_of(e)).sum::<i64>() < 0);
    let amount = cycle
        .iter()
        .map(|&e| res.cap_of(e))
        .min()
        .expect("cycles are non-empty");
    debug_assert!(amount > 0, "extraction verified liveness");
    for &e in cycle {
        res.push(e, amount);
        let h = res.head(e);
        st.parent[h] = u32::MAX;
        st.enqueue(h, pot);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_cost_flow;

    fn diamond() -> (FlowNetwork, NodeId, NodeId) {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_arc(s, a, 1, 1).unwrap();
        net.add_arc(a, t, 1, 1).unwrap();
        net.add_arc(s, b, 1, 3).unwrap();
        net.add_arc(b, t, 1, 3).unwrap();
        (net, s, t)
    }

    /// A wide layered network large enough that the working-set pruning
    /// actually drops arcs (tails with > KEEP_RANK out-arcs).
    fn wide(layer: usize) -> (FlowNetwork, NodeId, NodeId) {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let mids: Vec<_> = (0..layer).map(|_| net.add_node()).collect();
        let outs: Vec<_> = (0..layer).map(|_| net.add_node()).collect();
        let t = net.add_node();
        for (i, &m) in mids.iter().enumerate() {
            net.add_arc(s, m, 2, i as i64 % 7).unwrap();
            for (j, &o) in outs.iter().enumerate() {
                net.add_arc(m, o, 1, ((i * 31 + j * 17) % 23) as i64)
                    .unwrap();
            }
        }
        for (j, &o) in outs.iter().enumerate() {
            net.add_arc(o, t, 3, (j % 5) as i64).unwrap();
        }
        (net, s, t)
    }

    #[test]
    fn par_matches_serial_on_the_diamond() {
        let (net, s, t) = diamond();
        let serial = min_cost_flow(&net, s, t, 2).unwrap();
        for workers in [None, Some(1), Some(2), Some(usize::MAX)] {
            let mut ws = SolverWorkspace::new();
            let par = min_cost_flow_par_with(&net, s, t, 2, &mut ws, workers).unwrap();
            assert_eq!(par.cost, serial.cost, "workers {workers:?}");
            assert_eq!(par.flows, serial.flows, "workers {workers:?}");
        }
    }

    #[test]
    fn par_matches_serial_on_a_wide_net_with_pruning() {
        let (net, s, t) = wide(48);
        let target = 40;
        let serial = min_cost_flow(&net, s, t, target).unwrap();
        for workers in [Some(1), Some(3), Some(usize::MAX)] {
            let mut ws = SolverWorkspace::new();
            let par = min_cost_flow_par_with(&net, s, t, target, &mut ws, workers).unwrap();
            assert_eq!(par.cost, serial.cost, "workers {workers:?}");
        }
    }

    #[test]
    fn par_reports_exact_infeasibility() {
        let (net, s, t) = diamond();
        let serial = min_cost_flow(&net, s, t, 3).unwrap_err();
        let mut ws = SolverWorkspace::new();
        let par = min_cost_flow_par_with(&net, s, t, 3, &mut ws, Some(2)).unwrap_err();
        match (serial, par) {
            (
                NetflowError::Infeasible {
                    required: r1,
                    achieved: a1,
                },
                NetflowError::Infeasible {
                    required: r2,
                    achieved: a2,
                },
            ) => {
                assert_eq!(r1, r2);
                assert_eq!(a1, a2);
            }
            other => panic!("expected matching infeasibility, got {other:?}"),
        }
    }

    #[test]
    fn workspace_reuse_across_par_solves() {
        let (net, s, t) = wide(40);
        let mut ws = SolverWorkspace::new();
        let first = min_cost_flow_par_with(&net, s, t, 30, &mut ws, Some(2)).unwrap();
        let second = min_cost_flow_par_with(&net, s, t, 30, &mut ws, Some(2)).unwrap();
        assert_eq!(first.cost, second.cost);
        assert_eq!(first.flows, second.flows);
    }

    /// An injected region panic inside the parallel settle must travel to
    /// the resilience boundary and degrade into a clean serial re-solve.
    /// `Backend::ParSsp` defaults to the automatic worker count, which on a
    /// single-core runner is one region, so the fault targets `region0`.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_region_panic_is_contained_by_the_resilient_chain() {
        use crate::{Backend, FaultPlan, ResilientSolver};
        let (net, s, t) = wide(48);
        let serial = min_cost_flow(&net, s, t, 40).unwrap();
        "panic@0:region0".parse::<FaultPlan>().unwrap().install();
        let mut solver = ResilientSolver::new(Backend::ParSsp);
        let sol = solver.solve(&net, s, t, 40).unwrap();
        FaultPlan::clear();
        assert_eq!(sol.cost, serial.cost);
        assert_eq!(solver.incidents().len(), 1);
        assert_eq!(solver.incidents()[0].backend, "par_ssp");
    }

    /// A panic in one of several region workers unwinds out of
    /// [`min_cost_flow_par_with`] (resumed on the coordinating thread) and
    /// the leased arena still returns to the workspace pool, so the next
    /// solve on the same workspace runs clean.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn region_panic_unwinds_and_releases_the_arena() {
        use crate::FaultPlan;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let (net, s, t) = wide(48);
        let serial = min_cost_flow(&net, s, t, 40).unwrap();
        "panic@0:region1".parse::<FaultPlan>().unwrap().install();
        let mut ws = SolverWorkspace::default();
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            min_cost_flow_par_with(&net, s, t, 40, &mut ws, Some(3))
        }));
        FaultPlan::clear();
        assert!(
            panicked.is_err(),
            "region fault should propagate as a panic"
        );
        let sol = min_cost_flow_par_with(&net, s, t, 40, &mut ws, Some(3)).unwrap();
        assert_eq!(sol.cost, serial.cost);
    }
}
