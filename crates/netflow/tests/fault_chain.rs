//! Fault-injection regression tests for the cost-scaling backend's place
//! in a resilient fallback chain (`fault-inject` feature): a fault planted
//! in the `cost_scaling` attempt must be absorbed by the chain without
//! changing a byte of the solution, recording exactly one incident — and
//! `cost_scaling` must itself serve as the recovery link when an earlier
//! backend is the one faulted.
//!
//! The fault plan is process-global; this file is its own test binary (so
//! its own process), and all scenarios run inside one `#[test]` to keep
//! them serialized.
#![cfg(feature = "fault-inject")]

use lemra_netflow::{
    Backend, FaultKind, FaultPlan, FlowNetwork, McfSolver, NodeId, ResilientSolver, SolverWorkspace,
};

/// A diamond with power-of-two cost offsets, so the optimum is *unique*
/// and the fallback's solution must match the primary's arc-by-arc.
fn tie_broken_diamond() -> (FlowNetwork, NodeId, NodeId) {
    let mut net = FlowNetwork::new();
    let s = net.add_node();
    let a = net.add_node();
    let b = net.add_node();
    let t = net.add_node();
    net.add_arc(s, a, 1, (1 << 25) + 1).unwrap();
    net.add_arc(a, t, 1, (1 << 25) + 2).unwrap();
    net.add_arc(s, b, 1, (3 << 25) + 4).unwrap();
    net.add_arc(b, t, 1, (3 << 25) + 8).unwrap();
    (net, s, t)
}

#[test]
fn cost_scaling_chain_absorbs_and_recovers_injected_faults() {
    let (net, s, t) = tie_broken_diamond();
    let reference = Backend::CostScaling.solve(&net, s, t, 1).unwrap();

    // Every fault kind planted in the cost_scaling attempt: the SSP anchor
    // absorbs it and reproduces the identical (unique-optimum) flow.
    for kind in [FaultKind::Panic, FaultKind::Budget, FaultKind::Overflow] {
        FaultPlan::new()
            .fail_backend_at(kind, 0, "cost_scaling")
            .install();
        let mut solver = ResilientSolver::new(Backend::CostScaling);
        let sol = solver
            .solve(&net, s, t, 1)
            .expect("anchor must absorb the injected fault");
        FaultPlan::clear();
        assert_eq!(sol.cost, reference.cost, "{kind:?}: objective drifted");
        assert_eq!(
            sol.flows, reference.flows,
            "{kind:?}: placements drifted under fallback"
        );
        assert_eq!(solver.incident_count(), 1, "{kind:?}");
        let incident = &solver.incidents()[0];
        assert_eq!(incident.backend, "cost_scaling", "{kind:?}");
        assert_eq!(incident.recovered_with.as_deref(), Some("ssp"), "{kind:?}");
    }

    // The qualified fault fires once: a second solve on the same chain
    // runs clean and records nothing new.
    FaultPlan::new()
        .fail_backend_at(FaultKind::Panic, 0, "cost_scaling")
        .install();
    let mut solver = ResilientSolver::new(Backend::CostScaling);
    solver.solve(&net, s, t, 1).expect("first solve recovers");
    let second = solver.solve(&net, s, t, 1).expect("second solve is clean");
    FaultPlan::clear();
    assert_eq!(second.flows, reference.flows);
    assert_eq!(solver.incident_count(), 1);

    // cost_scaling as the recovery link: panic the cycle-cancelling
    // primary on a negative-cycle network (where the SSP anchor refuses)
    // and let cost scaling complete the solve.
    let mut cyclic = FlowNetwork::new();
    let cs = cyclic.add_node();
    let ca = cyclic.add_node();
    let cb = cyclic.add_node();
    let ct = cyclic.add_node();
    cyclic.add_arc(cs, ca, 1, 0).unwrap();
    cyclic.add_arc(ca, cb, 1, -5).unwrap();
    cyclic.add_arc(cb, ca, 1, -5).unwrap();
    cyclic.add_arc(ca, ct, 1, 0).unwrap();
    let clean = Backend::CycleCancel.solve(&cyclic, cs, ct, 1).unwrap();
    FaultPlan::new()
        .fail_backend_at(FaultKind::Panic, 0, "cycle")
        .install();
    let mut solver = ResilientSolver::with_chain(vec![Backend::CycleCancel, Backend::CostScaling]);
    let sol = solver
        .solve(&cyclic, cs, ct, 1)
        .expect("cost_scaling must complete the negative-cycle solve");
    FaultPlan::clear();
    assert_eq!(sol.cost, clean.cost);
    assert_eq!(sol.value, 1);
    assert_eq!(solver.incident_count(), 1);
    let incident = &solver.incidents()[0];
    assert_eq!(incident.backend, "cycle");
    assert_eq!(incident.recovered_with.as_deref(), Some("cost_scaling"));
    assert!(incident.error.contains("panicked") || incident.error.contains("injected"));

    // LEMRA_FAULT-style spec parsing covers the new backend name.
    let plan: FaultPlan = "budget@3:cost_scaling".parse().expect("valid spec");
    plan.install();
    let mut solver = ResilientSolver::new(Backend::CostScaling);
    let mut ws = SolverWorkspace::new();
    for i in 0..5 {
        let sol = solver
            .solve(&net, s, t, 1)
            .expect("every solve must complete");
        assert_eq!(sol.flows, reference.flows, "solve #{i}");
    }
    // Exercise the McfSolver trait path too, post-plan (already fired).
    let sol = McfSolver::solve(&mut solver, &net, s, t, 1, &mut ws).unwrap();
    assert_eq!(sol.flows, reference.flows);
    FaultPlan::clear();
    assert_eq!(solver.incident_count(), 1);
    assert_eq!(solver.incidents()[0].solve_index, 3);
    assert_eq!(solver.incidents()[0].backend, "cost_scaling");
}
