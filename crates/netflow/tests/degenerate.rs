//! Degenerate-input corpus: every backend must return `Ok` or a *typed*
//! error — never panic, never wrap (the test profile compiles with
//! `overflow-checks = true`, so a silent wrap would abort the test) — on
//! the pathological shapes allocation front-ends can produce: zero-capacity
//! arcs, zero flow targets, single-node and arc-less networks, all-equal
//! costs and near-`i64::MAX` cost/capacity combinations.

use lemra_netflow::{Backend, FlowNetwork, NetflowError, NodeId, ResilientSolver};
use proptest::prelude::*;

/// Every entry point under test: the five concrete backends, the `Auto`
/// policy and the resilient fallback chain.
fn solve_everywhere(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: i64,
) -> Vec<(
    &'static str,
    Result<lemra_netflow::FlowSolution, NetflowError>,
)> {
    let mut results: Vec<(&'static str, _)> = Backend::ALL
        .iter()
        .chain([Backend::Auto].iter())
        .map(|b| (b.name(), b.solve(net, s, t, target)))
        .collect();
    let mut resilient = ResilientSolver::new(Backend::Auto);
    results.push(("resilient", resilient.solve(net, s, t, target)));
    results
}

/// An error a degenerate input may legitimately produce. `InvalidSolution`
/// is deliberately absent: it signals a solver bug, not a bad input.
fn is_typed_input_error(e: &NetflowError) -> bool {
    matches!(
        e,
        NetflowError::Infeasible { .. }
            | NetflowError::InvalidArc { .. }
            | NetflowError::NegativeCycle
            | NetflowError::Overflow { .. }
    )
}

/// A random DAG (`from < to`, so cycle-free) with the given cost and
/// capacity ranges.
fn dag(
    caps: std::ops::Range<i64>,
    costs: std::ops::Range<i64>,
) -> impl Strategy<Value = (usize, Vec<(usize, usize, i64, i64)>)> {
    (2usize..8).prop_flat_map(move |nodes| {
        let caps = caps.clone();
        let costs = costs.clone();
        let arc = (0..nodes - 1)
            .prop_flat_map(move |from| (Just(from), from + 1..nodes, caps.clone(), costs.clone()));
        (Just(nodes), proptest::collection::vec(arc, 0..16))
    })
}

fn build(nodes: usize, arcs: &[(usize, usize, i64, i64)]) -> (FlowNetwork, NodeId, NodeId) {
    let mut net = FlowNetwork::new();
    let ids = net.add_nodes(nodes);
    for &(f, t, cap, cost) in arcs {
        net.add_arc(ids[f], ids[t], cap, cost).expect("valid arc");
    }
    (net, ids[0], ids[nodes - 1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All-zero capacities: a zero target is trivially satisfied at cost 0,
    /// any positive target is a typed `Infeasible`.
    #[test]
    fn zero_capacity_arcs(spec in dag(0i64..1, -9i64..9), target in 0i64..4) {
        let (net, s, t) = build(spec.0, &spec.1);
        for (name, result) in solve_everywhere(&net, s, t, target) {
            match result {
                Ok(sol) => {
                    prop_assert_eq!(target, 0, "{} routed flow over zero caps", name);
                    prop_assert_eq!(sol.cost, 0, "{} nonzero cost at zero flow", name);
                }
                Err(NetflowError::Infeasible { .. }) => prop_assert!(target > 0),
                Err(e) => prop_assert!(false, "{name}: unexpected error {e:?}"),
            }
        }
    }

    /// A zero flow target succeeds on every DAG at cost 0 (no negative
    /// cycles exist to saturate), whatever the arc costs.
    #[test]
    fn zero_target_costs_nothing(spec in dag(0i64..5, -12i64..12)) {
        let (net, s, t) = build(spec.0, &spec.1);
        for (name, result) in solve_everywhere(&net, s, t, 0) {
            let sol = result.unwrap_or_else(|e| panic!("{name} failed zero target: {e}"));
            prop_assert_eq!(sol.value, 0);
            prop_assert_eq!(sol.cost, 0, "{} found cost at zero flow on a DAG", name);
        }
    }

    /// All-equal costs leave the objective a pure multiple of the common
    /// cost; every backend agrees on it.
    #[test]
    fn all_equal_costs_agree(
        spec in dag(0i64..4, 0i64..1),
        cost in -7i64..8,
        target in 0i64..5,
    ) {
        let mut net = FlowNetwork::new();
        let ids = net.add_nodes(spec.0);
        for &(f, t, cap, _) in &spec.1 {
            net.add_arc(ids[f], ids[t], cap, cost).expect("valid arc");
        }
        let (s, t) = (ids[0], ids[spec.0 - 1]);
        let results = solve_everywhere(&net, s, t, target);
        let (base_name, base) = &results[0];
        for (name, result) in &results[1..] {
            match (base, result) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    a.cost, b.cost, "{} vs {} objective", base_name, name
                ),
                (Err(NetflowError::Infeasible { .. }), Err(NetflowError::Infeasible { .. })) => {}
                (a, b) => prop_assert!(false, "{base_name} vs {name}: {a:?} vs {b:?}"),
            }
        }
    }

    /// Near-`i64::MAX` costs and capacities: the overflow pre-check either
    /// admits the instance (and all backends solve it exactly) or rejects it
    /// with a typed error — nothing panics, nothing wraps.
    #[test]
    fn extreme_magnitudes_never_panic(
        spec in dag(0i64..3, -4i64..5),
        cost_pick in 0usize..4,
        cap_pick in 0usize..3,
        target in 0i64..3,
    ) {
        let huge_cost = [i64::MAX, i64::MAX / 2, i64::MIN + 1, i64::MAX / 4 - 1][cost_pick];
        let huge_cap = [i64::MAX, i64::MAX / 2, 1i64][cap_pick];
        let mut net = FlowNetwork::new();
        let ids = net.add_nodes(spec.0);
        for &(f, t, cap, cost) in &spec.1 {
            net.add_arc(ids[f], ids[t], cap, cost).expect("valid arc");
        }
        // One extreme arc straight across the network.
        net.add_arc(ids[0], ids[spec.0 - 1], huge_cap, huge_cost)
            .expect("valid arc");
        let (s, t) = (ids[0], ids[spec.0 - 1]);
        for (name, result) in solve_everywhere(&net, s, t, target) {
            if let Err(e) = result {
                prop_assert!(
                    is_typed_input_error(&e),
                    "{name}: untyped/unexpected error {e:?}"
                );
            }
        }
    }
}

#[test]
fn single_node_and_foreign_endpoints_are_typed_errors() {
    let mut net = FlowNetwork::new();
    let only = net.add_node();
    for (name, result) in solve_everywhere(&net, only, only, 0) {
        match result {
            Err(NetflowError::InvalidArc { reason }) => {
                assert!(reason.contains("differ"), "{name}: {reason}")
            }
            other => panic!("{name}: expected InvalidArc for s == t, got {other:?}"),
        }
    }
    // A second network's node id is out of range for the first.
    let mut bigger = FlowNetwork::new();
    bigger.add_nodes(5);
    let foreign = bigger.add_node();
    for (name, result) in solve_everywhere(&net, only, foreign, 0) {
        assert!(
            matches!(result, Err(NetflowError::InvalidArc { .. })),
            "{name}: expected InvalidArc for out-of-range sink"
        );
    }
}

#[test]
fn empty_arc_list_feasible_only_at_zero() {
    let mut net = FlowNetwork::new();
    let ids = net.add_nodes(4);
    let (s, t) = (ids[0], ids[3]);
    for (name, result) in solve_everywhere(&net, s, t, 0) {
        let sol = result.unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!((sol.value, sol.cost), (0, 0), "{name}");
    }
    for (name, result) in solve_everywhere(&net, s, t, 1) {
        assert!(
            matches!(result, Err(NetflowError::Infeasible { .. })),
            "{name}: expected Infeasible with no arcs"
        );
    }
}

#[test]
fn negative_target_is_a_typed_error() {
    let mut net = FlowNetwork::new();
    let (s, t) = (net.add_node(), net.add_node());
    net.add_arc(s, t, 3, 1).expect("valid arc");
    for (name, result) in solve_everywhere(&net, s, t, -1) {
        assert!(
            matches!(result, Err(NetflowError::InvalidArc { .. })),
            "{name}: expected InvalidArc for negative target"
        );
    }
}
