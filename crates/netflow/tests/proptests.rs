//! Property tests cross-checking the five independent min-cost flow
//! solvers on random networks (DAGs — the class `lemra-core` generates —
//! plus cyclic networks with negative cycles for the solvers that support
//! them).

use lemra_netflow::{
    max_flow, min_cost_flow, min_cost_flow_cost_scaling, min_cost_flow_cycle_canceling,
    min_cost_flow_network_simplex, min_cost_flow_par_with, min_cost_flow_scaling, validate, ArcId,
    Backend, FlowNetwork, NetflowError, NodeId, Reoptimizer, SolverWorkspace,
};
use proptest::prelude::*;

/// A randomly generated DAG flow network description.
#[derive(Debug, Clone)]
struct RandomDag {
    nodes: usize,
    /// (from, to, lower, cap, cost) with from < to.
    arcs: Vec<(usize, usize, i64, i64, i64)>,
}

fn random_dag(with_lower_bounds: bool) -> impl Strategy<Value = RandomDag> {
    (2usize..10).prop_flat_map(move |nodes| {
        let arc = (0..nodes - 1)
            .prop_flat_map(move |from| (Just(from), from + 1..nodes, 0i64..3, 0i64..5, -12i64..12));
        proptest::collection::vec(arc, 1..24).prop_map(move |raw| RandomDag {
            nodes,
            arcs: raw
                .into_iter()
                .map(|(f, t, lb, extra, cost)| {
                    let lb = if with_lower_bounds { lb } else { 0 };
                    (f, t, lb, lb + extra, cost)
                })
                .collect(),
        })
    })
}

fn build(dag: &RandomDag) -> (FlowNetwork, NodeId, NodeId) {
    let mut net = FlowNetwork::new();
    let ids = net.add_nodes(dag.nodes);
    for &(f, t, lb, cap, cost) in &dag.arcs {
        net.add_arc_bounded(ids[f], ids[t], lb, cap, cost)
            .expect("generated bounds are valid");
    }
    (net, ids[0], ids[dag.nodes - 1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All five solvers agree on feasibility and optimal cost, and every
    /// output validates, for every achievable flow target.
    #[test]
    fn all_solvers_agree(dag in random_dag(false), target in 0i64..8) {
        let (net, s, t) = build(&dag);
        let ssp = min_cost_flow(&net, s, t, target);
        let cc = min_cost_flow_cycle_canceling(&net, s, t, target);
        let sc = min_cost_flow_scaling(&net, s, t, target);
        let nsx = min_cost_flow_network_simplex(&net, s, t, target);
        let gt = min_cost_flow_cost_scaling(&net, s, t, target);
        match (ssp, cc, sc, nsx, gt) {
            (Ok(a), Ok(b), Ok(c), Ok(d), Ok(e)) => {
                validate(&net, s, t, &a).unwrap();
                validate(&net, s, t, &b).unwrap();
                validate(&net, s, t, &c).unwrap();
                validate(&net, s, t, &d).unwrap();
                validate(&net, s, t, &e).unwrap();
                prop_assert_eq!(a.cost, b.cost);
                prop_assert_eq!(a.cost, c.cost);
                prop_assert_eq!(a.cost, d.cost);
                prop_assert_eq!(a.cost, e.cost);
                prop_assert_eq!(a.value, target);
            }
            (
                Err(NetflowError::Infeasible { .. }),
                Err(NetflowError::Infeasible { .. }),
                Err(NetflowError::Infeasible { .. }),
                Err(NetflowError::Infeasible { .. }),
                Err(NetflowError::Infeasible { .. }),
            ) => {}
            (a, b, c, d, e) => {
                prop_assert!(
                    false,
                    "solver disagreement: {a:?} vs {b:?} vs {c:?} vs {d:?} vs {e:?}"
                )
            }
        }
    }

    /// Network simplex, cycle cancelling and cost scaling also agree on
    /// *cyclic* networks with negative cycles, where SSP refuses.
    #[test]
    fn simplex_matches_cycle_canceling_on_cyclic_networks(
        nodes in 3usize..7,
        raw in proptest::collection::vec(
            (0usize..6, 0usize..6, 1i64..4, -9i64..9),
            2..14,
        ),
        target in 0i64..4,
    ) {
        let mut net = FlowNetwork::new();
        let ids = net.add_nodes(nodes);
        for (f, t_, cap, cost) in raw {
            let (f, t_) = (f % nodes, t_ % nodes);
            if f != t_ {
                net.add_arc(ids[f], ids[t_], cap, cost).expect("valid");
            }
        }
        let s = ids[0];
        let t = ids[nodes - 1];
        let cc = min_cost_flow_cycle_canceling(&net, s, t, target);
        let nsx = min_cost_flow_network_simplex(&net, s, t, target);
        let gt = min_cost_flow_cost_scaling(&net, s, t, target);
        match (cc, nsx, gt) {
            (Ok(a), Ok(b), Ok(c)) => {
                validate(&net, s, t, &a).unwrap();
                validate(&net, s, t, &b).unwrap();
                validate(&net, s, t, &c).unwrap();
                prop_assert_eq!(a.cost, b.cost);
                prop_assert_eq!(a.cost, c.cost);
            }
            (
                Err(NetflowError::Infeasible { .. }),
                Err(NetflowError::Infeasible { .. }),
                Err(NetflowError::Infeasible { .. }),
            ) => {}
            (a, b, c) => prop_assert!(false, "disagreement: {a:?} vs {b:?} vs {c:?}"),
        }
    }

    /// With lower bounds the solvers still agree; any returned flow honours
    /// every bound.
    #[test]
    fn lower_bounds_agree(dag in random_dag(true), target in 0i64..8) {
        let (net, s, t) = build(&dag);
        let ssp = min_cost_flow(&net, s, t, target);
        let cc = min_cost_flow_cycle_canceling(&net, s, t, target);
        let nsx = min_cost_flow_network_simplex(&net, s, t, target);
        let gt = min_cost_flow_cost_scaling(&net, s, t, target);
        match (ssp, cc, nsx, gt) {
            (Ok(a), Ok(b), Ok(c), Ok(d)) => {
                validate(&net, s, t, &a).unwrap();
                validate(&net, s, t, &b).unwrap();
                validate(&net, s, t, &c).unwrap();
                validate(&net, s, t, &d).unwrap();
                prop_assert_eq!(a.cost, b.cost);
                prop_assert_eq!(a.cost, c.cost);
                prop_assert_eq!(a.cost, d.cost);
            }
            (
                Err(NetflowError::Infeasible { .. }),
                Err(NetflowError::Infeasible { .. }),
                Err(NetflowError::Infeasible { .. }),
                Err(NetflowError::Infeasible { .. }),
            ) => {}
            (a, b, c, d) => prop_assert!(
                false,
                "solver disagreement: {a:?} vs {b:?} vs {c:?} vs {d:?}"
            ),
        }
    }

    /// The optimal cost is a convex function of the flow target (a classical
    /// property of min-cost flows).
    #[test]
    fn cost_is_convex_in_target(dag in random_dag(false)) {
        let (net, s, t) = build(&dag);
        let cap = max_flow(&net, s, t).unwrap().value;
        let costs: Vec<i64> = (0..=cap)
            .map(|f| min_cost_flow(&net, s, t, f).unwrap().cost)
            .collect();
        for w in costs.windows(3) {
            prop_assert!(w[2] - w[1] >= w[1] - w[0], "non-convex costs: {costs:?}");
        }
    }

    /// Max-flow value bounds min-cost-flow feasibility exactly.
    #[test]
    fn feasible_iff_within_max_flow(dag in random_dag(false), target in 0i64..10) {
        let (net, s, t) = build(&dag);
        let cap = max_flow(&net, s, t).unwrap().value;
        let result = min_cost_flow(&net, s, t, target);
        if target <= cap {
            prop_assert!(result.is_ok());
        } else {
            let infeasible = matches!(result, Err(NetflowError::Infeasible { .. }));
            prop_assert!(infeasible);
        }
    }

    /// Warm-start reoptimisation over a randomized delta sequence: after
    /// every batch of cost/capacity/target deltas, the [`Reoptimizer`]'s
    /// objective and feasibility verdict must match an independent cold
    /// solve, and its flow must validate. Under the `validate` feature this
    /// also re-checks reduced-cost optimality after every delta batch
    /// (inside the warm solver's Dijkstra rounds and final audit).
    #[test]
    fn warm_start_matches_cold_over_delta_sequences(
        dag in random_dag(false),
        steps in proptest::collection::vec(
            // (arc selector, mutate cost?, new cost, mutate cap?, new cap, target)
            (0usize..1024, any::<bool>(), -12i64..12, any::<bool>(), 0i64..6, 0i64..8),
            1..16,
        ),
        first_target in 0i64..6,
    ) {
        let (mut net, s, t) = build(&dag);
        let arcs: Vec<ArcId> = net.arcs().map(|(id, _)| id).collect();
        let mut reopt = Reoptimizer::new();
        let check = |reopt: &mut Reoptimizer, net: &FlowNetwork, f: i64| {
            let warm = reopt.solve(net, s, t, f);
            let cold = min_cost_flow(net, s, t, f);
            match (warm, cold) {
                (Ok(w), Ok(c)) => {
                    validate(net, s, t, &w)?;
                    if w.cost != c.cost {
                        return Err(NetflowError::InvalidSolution {
                            reason: format!("warm cost {} != cold cost {}", w.cost, c.cost),
                        });
                    }
                    Ok(())
                }
                (Err(NetflowError::Infeasible { .. }), Err(NetflowError::Infeasible { .. })) => {
                    Ok(())
                }
                (w, c) => Err(NetflowError::InvalidSolution {
                    reason: format!("warm/cold verdicts diverged: {w:?} vs {c:?}"),
                }),
            }
        };
        prop_assert!(check(&mut reopt, &net, first_target).is_ok());
        for (sel, mutate_cost, cost, mutate_cap, cap, target) in steps {
            let arc = arcs[sel % arcs.len()];
            if mutate_cost {
                net.set_arc_cost(arc, cost);
            }
            if mutate_cap {
                net.set_arc_capacity(arc, cap).expect("lower bounds are zero");
            }
            if let Err(e) = check(&mut reopt, &net, target) {
                prop_assert!(false, "delta step diverged: {e}");
            }
        }
    }

    /// Every [`Backend`] — the five concrete solvers, the `Auto` policy and
    /// the warm [`Reoptimizer`] — agrees on feasibility and optimal
    /// objective, and every returned flow validates.
    #[test]
    fn every_backend_agrees_on_objective(dag in random_dag(false), target in 0i64..8) {
        let (net, s, t) = build(&dag);
        let mut reopt = Reoptimizer::new();
        let mut results: Vec<(&str, Result<_, NetflowError>)> = Backend::ALL
            .iter()
            .map(|b| (b.name(), b.solve(&net, s, t, target)))
            .collect();
        results.push(("auto", Backend::Auto.solve(&net, s, t, target)));
        results.push(("reopt", reopt.solve(&net, s, t, target)));
        let (base_name, base) = &results[0];
        for (name, result) in &results[1..] {
            match (base, result) {
                (Ok(a), Ok(b)) => {
                    validate(&net, s, t, b).unwrap();
                    prop_assert_eq!(
                        a.cost, b.cost,
                        "{} cost {} != {} cost {}", base_name, a.cost, name, b.cost
                    );
                    prop_assert_eq!(b.value, target);
                }
                (Err(NetflowError::Infeasible { .. }), Err(NetflowError::Infeasible { .. })) => {}
                (a, b) => prop_assert!(
                    false,
                    "{base_name} and {name} disagree: {a:?} vs {b:?}"
                ),
            }
        }
    }

    /// On unit-capacity networks whose costs carry distinct power-of-two
    /// offsets the optimal flow is *unique* (the offset sum encodes the used
    /// arc set injectively, as in `lemra-core`'s deterministic tie-breaking)
    /// — so every backend must agree arc-by-arc on the placement, not just
    /// on the objective.
    #[test]
    fn backends_agree_on_placements_when_tie_broken(
        dag in random_dag(false),
        target in 1i64..5,
    ) {
        // Σ 2^i over ≤24 arcs < 2^25, so scaling base costs by 2^25 keeps
        // the base objective dominant and the offsets a pure tie-break.
        let mut net = FlowNetwork::new();
        let ids = net.add_nodes(dag.nodes);
        for (i, &(f, t_, _, _, cost)) in dag.arcs.iter().take(24).enumerate() {
            net.add_arc(ids[f], ids[t_], 1, cost * (1i64 << 25) + (1i64 << i))
                .expect("valid arc");
        }
        let (s, t) = (ids[0], ids[dag.nodes - 1]);
        let mut reopt = Reoptimizer::new();
        let base = Backend::Ssp.solve(&net, s, t, target);
        let mut others: Vec<(&str, Result<_, NetflowError>)> = Backend::ALL[1..]
            .iter()
            .map(|b| (b.name(), b.solve(&net, s, t, target)))
            .collect();
        others.push(("reopt", reopt.solve(&net, s, t, target)));
        for (name, result) in others {
            match (&base, result) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(
                        &a.flows, &b.flows,
                        "ssp and {} placed flow differently", name
                    );
                }
                (Err(NetflowError::Infeasible { .. }), Err(NetflowError::Infeasible { .. })) => {}
                (a, b) => prop_assert!(false, "ssp and {name} disagree: {a:?} vs {b:?}"),
            }
        }
    }

    /// The decomposed parallel solver matches serial SSP at every worker
    /// count, including the degenerate partitions: one region holding the
    /// whole network (`Some(1)`) and one region per node
    /// (`Some(usize::MAX)`, clamped to all-singletons). Same objective and
    /// feasibility verdict on every net; the workspace is reused across
    /// worker counts to exercise arena and scratch recycling.
    #[test]
    fn par_solve_matches_serial_at_every_worker_count(
        dag in random_dag(false),
        target in 0i64..8,
    ) {
        let (net, s, t) = build(&dag);
        let serial = min_cost_flow(&net, s, t, target);
        let mut ws = SolverWorkspace::default();
        for workers in [None, Some(1), Some(2), Some(usize::MAX)] {
            let par = min_cost_flow_par_with(&net, s, t, target, &mut ws, workers);
            match (&serial, par) {
                (Ok(a), Ok(b)) => {
                    validate(&net, s, t, &b).unwrap();
                    prop_assert_eq!(a.cost, b.cost, "workers {:?}", workers);
                    prop_assert_eq!(b.value, target);
                }
                (Err(NetflowError::Infeasible { required, achieved }), Err(
                    NetflowError::Infeasible { required: r2, achieved: a2 },
                )) => {
                    // The parallel path must report the *exact* shortfall,
                    // not just the verdict: its serial continuation runs on
                    // the full residual, never the pruned working set.
                    prop_assert_eq!(*required, r2);
                    prop_assert_eq!(*achieved, a2);
                }
                (a, b) => prop_assert!(
                    false,
                    "serial and par({workers:?}) disagree: {a:?} vs {b:?}"
                ),
            }
        }
    }

    /// On tie-broken nets (unique optimum by power-of-two cost offsets) the
    /// parallel solver must reproduce serial SSP's placement arc-for-arc at
    /// every worker count — the in-process form of the byte-identical
    /// report guarantee `--par-solve` makes.
    #[test]
    fn par_solve_places_identically_when_tie_broken(
        dag in random_dag(false),
        target in 1i64..5,
    ) {
        let mut net = FlowNetwork::new();
        let ids = net.add_nodes(dag.nodes);
        for (i, &(f, t_, _, _, cost)) in dag.arcs.iter().take(24).enumerate() {
            net.add_arc(ids[f], ids[t_], 1, cost * (1i64 << 25) + (1i64 << i))
                .expect("valid arc");
        }
        let (s, t) = (ids[0], ids[dag.nodes - 1]);
        let serial = min_cost_flow(&net, s, t, target);
        let mut ws = SolverWorkspace::default();
        for workers in [Some(1), Some(3), Some(usize::MAX)] {
            let par = min_cost_flow_par_with(&net, s, t, target, &mut ws, workers);
            match (&serial, par) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    &a.flows, &b.flows,
                    "par({:?}) placed flow differently", workers
                ),
                (Err(NetflowError::Infeasible { .. }), Err(NetflowError::Infeasible { .. })) => {}
                (a, b) => prop_assert!(
                    false,
                    "serial and par({workers:?}) disagree: {a:?} vs {b:?}"
                ),
            }
        }
    }

    /// Path decomposition covers the full value and every path runs s -> t.
    #[test]
    fn decomposition_covers_value(dag in random_dag(false), target in 1i64..6) {
        let (net, s, t) = build(&dag);
        if let Ok(sol) = min_cost_flow(&net, s, t, target) {
            let paths = sol.decompose_paths(&net, s, t).unwrap();
            prop_assert_eq!(paths.iter().map(|(_, u)| *u).sum::<i64>(), target);
            for (path, units) in &paths {
                prop_assert!(*units > 0);
                prop_assert_eq!(net.arc(path[0]).from, s);
                prop_assert_eq!(net.arc(*path.last().unwrap()).to, t);
                for pair in path.windows(2) {
                    prop_assert_eq!(net.arc(pair[0]).to, net.arc(pair[1]).from);
                }
            }
        }
    }
}
