//! Byte-driven fuzz harness for network construction and the resilient
//! solve path. `cargo-fuzz` needs a registry (and nightly) this build
//! environment does not have, so the same harness shape runs under
//! proptest instead: arbitrary byte strings decode into construction +
//! solve scripts, and the checked-in seed corpus under `fuzz/corpus/`
//! replays known-interesting shapes on every test run.
//!
//! The invariant fuzzed for: no input bytes may panic the construction
//! API or any backend, and every solver error must be a typed input error
//! — never `InvalidSolution` (a solver bug) and never a contained panic
//! surfacing through the resilience layer as `SolverPanicked`.

use lemra_netflow::{Backend, FlowNetwork, NetflowError, NodeId, ResilientSolver};
use proptest::prelude::*;

/// Decodes a byte string into a flow network plus a solve request.
///
/// Layout: byte 0 is the node count (2–17); the rest is consumed in 7-byte
/// arc records `[from, to, cap_lo, cap_hi, cost_lo, cost_hi, flags]` (a
/// short trailing record is dropped). Flag bits stress the guard rails:
/// bit 0 inflates the capacity to `i64::MAX`, bit 1 the cost, bit 2
/// negates the cost, bit 3 asks for a lower bound of half the capacity.
/// Node indices wrap, so self-loops and repeated arcs occur naturally.
/// The last byte picks the flow target (0–7).
fn decode(data: &[u8]) -> Option<(FlowNetwork, NodeId, NodeId, i64)> {
    let (&first, rest) = data.split_first()?;
    let nodes = 2 + (first as usize % 16);
    let mut net = FlowNetwork::new();
    let ids = net.add_nodes(nodes);
    for rec in rest.chunks_exact(7) {
        let from = ids[rec[0] as usize % nodes];
        let to = ids[rec[1] as usize % nodes];
        let mut cap = i64::from(u16::from_le_bytes([rec[2], rec[3]]));
        let mut cost = i64::from(u16::from_le_bytes([rec[4], rec[5]]));
        let flags = rec[6];
        if flags & 1 != 0 {
            cap = i64::MAX;
        }
        if flags & 2 != 0 {
            cost = i64::MAX / 2;
        }
        if flags & 4 != 0 {
            cost = -cost;
        }
        // Construction may reject (e.g. lower bound above capacity is
        // impossible here, but future guards may appear) — a typed Err from
        // the builder is as valid an outcome as an accepted arc.
        let _ = if flags & 8 != 0 {
            net.add_arc_bounded(from, to, cap / 2, cap, cost)
        } else {
            net.add_arc(from, to, cap, cost)
        };
    }
    let target = i64::from(*data.last()? % 8);
    Some((net, ids[0], ids[nodes - 1], target))
}

/// Runs one fuzz case end to end; panics (failing the test) on any
/// invariant violation.
fn run_case(data: &[u8]) {
    let Some((net, s, t, target)) = decode(data) else {
        return;
    };
    let mut solver = ResilientSolver::new(Backend::Auto);
    match solver.solve(&net, s, t, target) {
        Ok(sol) => assert_eq!(sol.value, target),
        Err(
            NetflowError::Infeasible { .. }
            | NetflowError::InvalidArc { .. }
            | NetflowError::NegativeCycle
            | NetflowError::Overflow { .. },
        ) => {}
        Err(e) => panic!("untyped or buggy outcome for {data:?}: {e:?}"),
    }
    // The resilience layer absorbs backend panics into incidents; a fuzz
    // input must not be able to panic any backend at all.
    for incident in solver.incidents() {
        assert!(
            !incident.error.contains("panicked"),
            "input {data:?} panicked a backend: {}",
            incident.error
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes: construct, solve, and check nothing panics and no
    /// untyped error escapes.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        run_case(&data);
    }
}

/// Replays the checked-in seed corpus — shapes worth keeping permanently:
/// self-loops, extreme magnitudes, dense multigraphs, empty and truncated
/// records.
#[test]
fn corpus_seeds_never_panic() {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus");
    let mut seeds = 0;
    for entry in std::fs::read_dir(&corpus).expect("fuzz/corpus directory is checked in") {
        let path = entry.expect("readable dir entry").path();
        if path.is_file() {
            let data = std::fs::read(&path).expect("readable seed");
            run_case(&data);
            seeds += 1;
        }
    }
    assert!(seeds >= 5, "seed corpus went missing: only {seeds} files");
}
