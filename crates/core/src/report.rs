//! Exact accounting of a solved allocation.
//!
//! Everything the paper's evaluation tables report is derived here from the
//! [event traces](crate::events): memory/register access counts, storage
//! locations, static energy (eq. 1), activity-based energy (eq. 2), the
//! switching totals of Figures 3/4, and per-step port pressure (§7).

use crate::allocator::Allocation;
use crate::events::trace_var_carried;
use crate::problem::{AllocationProblem, CarryIn};
use lemra_energy::{MicroEnergy, RegisterEnergyKind};
use lemra_ir::VarId;
use std::collections::HashMap;

/// # Examples
///
/// ```
/// use lemra_core::{allocate, AllocationProblem, AllocationReport};
/// use lemra_ir::LifetimeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lifetimes = LifetimeTable::from_intervals(4, vec![(1, vec![4], false)])?;
/// let problem = AllocationProblem::new(lifetimes, 0); // everything in memory
/// let report = AllocationReport::new(&problem, &allocate(&problem)?);
/// assert_eq!(report.mem_accesses(), 2); // one write, one read
/// assert_eq!(report.storage_locations, 1);
/// # Ok(())
/// # }
/// ```
/// Measured results of one allocation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AllocationReport {
    /// Memory reads (genuine reads served from memory plus reloads).
    pub mem_reads: u32,
    /// Memory writes.
    pub mem_writes: u32,
    /// Register-file reads.
    pub reg_reads: u32,
    /// Register-file writes.
    pub reg_writes: u32,
    /// Registers the solution uses.
    pub registers_used: u32,
    /// Distinct memory storage locations.
    pub storage_locations: u32,
    /// Total energy under the static model (eq. 1), in energy units.
    pub static_energy: f64,
    /// Total energy under the activity model (eq. 2), in energy units.
    pub activity_energy: f64,
    /// Total Hamming switching inside the register file (incl. the 0.5·word
    /// initial writes the paper assumes).
    pub register_switching: f64,
    /// Total Hamming switching across memory locations (consecutive
    /// residents of the same address) — the quantity Figure 3 compares.
    pub memory_switching: f64,
    /// Worst-case simultaneous memory reads in one control step (the
    /// number of memory read ports the solution needs, §7).
    pub max_reads_per_step: u32,
    /// Worst-case simultaneous memory writes in one control step.
    pub max_writes_per_step: u32,
    /// Worst-case simultaneous register-file reads in one control step
    /// (the register read ports the solution needs — the paper supports
    /// "single port or multiport register files", §2).
    pub max_reg_reads_per_step: u32,
    /// Worst-case simultaneous register-file writes in one control step.
    pub max_reg_writes_per_step: u32,
    /// Static-model energy dissipated per control step, indexed by step
    /// (slot 0 unused; the last slot is the post-block live-out step) — the
    /// storage subsystem's power profile.
    pub energy_per_step: Vec<f64>,
}

impl AllocationReport {
    /// Computes the report for `allocation` solved from `problem`.
    pub fn new(problem: &AllocationProblem, allocation: &Allocation) -> Self {
        let seg = allocation.segmentation();
        let placements = allocation.placements();
        let energy = &problem.energy;

        let mut mem_reads = 0;
        let mut mem_writes = 0;
        let mut reg_reads = 0;
        let mut reg_writes = 0;
        let mut reads_at: HashMap<u32, u32> = HashMap::new();
        let mut writes_at: HashMap<u32, u32> = HashMap::new();
        let mut reg_reads_at: HashMap<u32, u32> = HashMap::new();
        let mut reg_writes_at: HashMap<u32, u32> = HashMap::new();
        let steps = problem.lifetimes.block_len() as usize + 2;
        let mut energy_per_step = vec![0.0; steps];
        let mut charge = |step: u32, amount: lemra_energy::MicroEnergy| {
            let slot = (step as usize).min(steps - 1);
            energy_per_step[slot] += amount.as_units();
        };
        for v in 0..problem.lifetimes.len() {
            let var = VarId(v as u32);
            let t = trace_var_carried(seg, placements, var, problem.carry_of(var));
            mem_reads += t.mem_reads;
            mem_writes += t.mem_writes;
            reg_reads += t.reg_reads;
            reg_writes += t.reg_writes;
            for a in &t.accesses {
                let slot = if a.is_write {
                    &mut writes_at
                } else {
                    &mut reads_at
                };
                *slot.entry(a.step.0).or_insert(0) += 1;
                charge(
                    a.step.0,
                    if a.is_write {
                        energy.e_mem_write()
                    } else {
                        energy.e_mem_read()
                    },
                );
            }
            for a in &t.reg_accesses {
                let slot = if a.is_write {
                    &mut reg_writes_at
                } else {
                    &mut reg_reads_at
                };
                *slot.entry(a.step.0).or_insert(0) += 1;
                charge(
                    a.step.0,
                    if a.is_write {
                        energy.e_reg_write()
                    } else {
                        energy.e_reg_read()
                    },
                );
            }
        }

        // Register switching from the chains: an initial write per register
        // plus one Hamming term per overwrite.
        let mut register_switching = 0.0;
        for chain in allocation.chains() {
            let mut prev: Option<VarId> = None;
            for &sid in chain {
                let segment = seg.segment(sid);
                let var = segment.var;
                match prev {
                    None => {
                        // Register-carried values are already in place: a
                        // chain starting with one switches nothing.
                        let carried =
                            segment.is_first && problem.carry_of(var) == CarryIn::Register;
                        if !carried {
                            register_switching += problem.activity.initial(var);
                        }
                    }
                    Some(p) if p != var => register_switching += problem.activity.hamming(p, var),
                    Some(_) => {}
                }
                prev = Some(var);
            }
        }

        // Memory switching: consecutive residents of each address.
        let mut by_address: HashMap<u32, Vec<VarId>> = HashMap::new();
        let mut vars_by_start: Vec<VarId> = (0..problem.lifetimes.len() as u32)
            .map(VarId)
            .filter(|&v| allocation.memory_address(v).is_some())
            .collect();
        vars_by_start.sort_by_key(|&v| allocation.memory_residency(v).expect("addressed").0);
        for v in vars_by_start {
            by_address
                .entry(allocation.memory_address(v).expect("addressed"))
                .or_default()
                .push(v);
        }
        let mut memory_switching = 0.0;
        for residents in by_address.values() {
            let mut prev: Option<VarId> = None;
            for &v in residents {
                match prev {
                    None => memory_switching += problem.activity.initial(v),
                    Some(p) => memory_switching += problem.activity.hamming(p, v),
                }
                prev = Some(v);
            }
        }

        let mem_energy = energy.e_mem_read().scale(i64::from(mem_reads))
            + energy.e_mem_write().scale(i64::from(mem_writes));
        let static_energy = (mem_energy
            + energy.e_reg_read().scale(i64::from(reg_reads))
            + energy.e_reg_write().scale(i64::from(reg_writes)))
        .as_units();
        let activity_energy = (mem_energy + energy.e_reg_activity(register_switching)).as_units();

        Self {
            mem_reads,
            mem_writes,
            reg_reads,
            reg_writes,
            registers_used: allocation.registers_used(),
            storage_locations: allocation.storage_locations(),
            static_energy,
            activity_energy,
            register_switching,
            memory_switching,
            max_reads_per_step: reads_at.values().copied().max().unwrap_or(0),
            max_writes_per_step: writes_at.values().copied().max().unwrap_or(0),
            max_reg_reads_per_step: reg_reads_at.values().copied().max().unwrap_or(0),
            max_reg_writes_per_step: reg_writes_at.values().copied().max().unwrap_or(0),
            energy_per_step,
        }
    }

    /// The largest per-step energy — the storage subsystem's peak power,
    /// in energy units per control step.
    pub fn peak_step_energy(&self) -> f64 {
        self.energy_per_step.iter().copied().fold(0.0, f64::max)
    }

    /// Total memory accesses (the paper's "# Accesses / Mem" column).
    pub fn mem_accesses(&self) -> u32 {
        self.mem_reads + self.mem_writes
    }

    /// Total register-file accesses ("# Accesses / Reg").
    pub fn reg_accesses(&self) -> u32 {
        self.reg_reads + self.reg_writes
    }

    /// The energy under the model `kind` (convenience selector).
    pub fn energy(&self, kind: RegisterEnergyKind) -> f64 {
        match kind {
            RegisterEnergyKind::Static => self.static_energy,
            RegisterEnergyKind::Activity => self.activity_energy,
        }
    }
}

/// The constant first term of the paper's objective: the energy if every
/// variable lived purely in memory (`Σ_v E^m_w + rlast_v · E^m_r`).
///
/// For placements the local arc model captures exactly,
/// `report.energy(kind) == baseline + allocation.flow_cost()`.
pub fn baseline_energy(problem: &AllocationProblem) -> MicroEnergy {
    problem
        .lifetimes
        .iter()
        .map(|lt| {
            // Memory-carried variables are already stored: the baseline
            // pays no definition write for them.
            let write = match problem.carry_of(lt.var) {
                CarryIn::Memory => MicroEnergy::ZERO,
                _ => problem.energy.e_mem_write(),
            };
            write + problem.energy.e_mem_read().scale(lt.read_count() as i64)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate;
    use lemra_ir::{ActivitySource, LifetimeTable};

    fn table() -> LifetimeTable {
        LifetimeTable::from_intervals(
            6,
            vec![
                (1, vec![3], false),
                (3, vec![6], false),
                (1, vec![6], false),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_memory_report_matches_baseline() {
        let p = AllocationProblem::new(table(), 0);
        let a = allocate(&p).unwrap();
        let r = AllocationReport::new(&p, &a);
        assert_eq!(r.mem_writes, 3);
        assert_eq!(r.mem_reads, 3);
        assert_eq!(r.reg_accesses(), 0);
        assert_eq!(r.static_energy, baseline_energy(&p).as_units());
        assert_eq!(r.registers_used, 0);
    }

    #[test]
    fn static_identity_baseline_plus_flow_cost() {
        for regs in [0, 1, 2, 5] {
            let p = AllocationProblem::new(table(), regs);
            let a = allocate(&p).unwrap();
            let r = AllocationReport::new(&p, &a);
            let expected = (baseline_energy(&p) + a.flow_cost()).as_units();
            assert!(
                (r.static_energy - expected).abs() < 1e-9,
                "R={regs}: report {} vs baseline+flow {expected}",
                r.static_energy
            );
        }
    }

    #[test]
    fn activity_identity_baseline_plus_flow_cost() {
        let p = AllocationProblem::new(table(), 2)
            .with_register_energy(RegisterEnergyKind::Activity)
            .with_activity(ActivitySource::Uniform { hamming: 3.0 });
        let a = allocate(&p).unwrap();
        let r = AllocationReport::new(&p, &a);
        let expected = (baseline_energy(&p) + a.flow_cost()).as_units();
        assert!(
            (r.activity_energy - expected).abs() < 1e-9,
            "report {} vs {expected}",
            r.activity_energy
        );
    }

    #[test]
    fn more_registers_never_increase_energy() {
        let mut prev = f64::INFINITY;
        for regs in 0..4 {
            let p = AllocationProblem::new(table(), regs);
            let a = allocate(&p).unwrap();
            let r = AllocationReport::new(&p, &a);
            assert!(r.static_energy <= prev + 1e-9);
            prev = r.static_energy;
        }
    }

    #[test]
    fn register_port_pressure_counted() {
        // Two variables read at the same step from registers.
        let t = LifetimeTable::from_intervals(4, vec![(1, vec![3], false), (2, vec![3], false)])
            .unwrap();
        let p = AllocationProblem::new(t, 2);
        let a = allocate(&p).unwrap();
        let r = AllocationReport::new(&p, &a);
        assert_eq!(r.max_reg_reads_per_step, 2);
        assert!(r.max_reg_writes_per_step >= 1);
    }

    #[test]
    fn power_profile_sums_to_total_energy() {
        for regs in [0u32, 1, 2, 4] {
            let p = AllocationProblem::new(table(), regs);
            let a = allocate(&p).unwrap();
            let r = AllocationReport::new(&p, &a);
            let sum: f64 = r.energy_per_step.iter().sum();
            assert!(
                (sum - r.static_energy).abs() < 1e-9,
                "R={regs}: profile sums to {sum}, total {}",
                r.static_energy
            );
            assert!(r.peak_step_energy() <= r.static_energy + 1e-9);
            assert!(r.peak_step_energy() > 0.0 || r.static_energy == 0.0);
        }
    }

    #[test]
    fn port_pressure_counted() {
        // Three variables all defined at step 1 and read at step 4, no
        // registers: 3 writes at step 1, 3 reads at step 4.
        let t = LifetimeTable::from_intervals(
            4,
            vec![
                (1, vec![4], false),
                (1, vec![4], false),
                (1, vec![4], false),
            ],
        )
        .unwrap();
        let p = AllocationProblem::new(t, 0);
        let a = allocate(&p).unwrap();
        let r = AllocationReport::new(&p, &a);
        assert_eq!(r.max_writes_per_step, 3);
        assert_eq!(r.max_reads_per_step, 3);
    }

    #[test]
    fn switching_totals_with_pair_table() {
        use lemra_ir::VarId;
        let p = AllocationProblem::new(table(), 1)
            .with_register_energy(RegisterEnergyKind::Activity)
            .with_activity(ActivitySource::from_pairs([(VarId(0), VarId(1), 0.2)]));
        let a = allocate(&p).unwrap();
        let r = AllocationReport::new(&p, &a);
        // One register chain a -> b: initial 0.5 + H(a,b) 0.2.
        assert!((r.register_switching - 0.7).abs() < 1e-9);
        // c alone in memory: initial 0.5.
        assert!((r.memory_switching - 0.5).abs() < 1e-9);
    }
}
