//! Memory segmentation for sleep-mode operation — the ref \[4\] technique the
//! paper's related work highlights ("by using multiple memory modules one
//! could reduce energy dissipation … by entering inactive memory modules
//! into sleep modes", §2).
//!
//! After allocation, every memory-resident variable has an *active window*
//! (first to last memory access step). The variables are segmented across
//! `M` physical modules — each module is its own small array with its own
//! left-edge address space — and a module sleeps whenever none of its
//! residents is inside its window. [`partition_memory_modules`] minimises
//! the summed awake spans with a dynamic program over the start-sorted
//! windows (optimal among start-contiguous partitions, the standard
//! clustering for interval spans).

use crate::allocator::Allocation;
use crate::events::trace_var_carried;
use crate::problem::AllocationProblem;
use lemra_ir::VarId;
use std::collections::HashMap;

/// Result of the sleep partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct SleepPartition {
    /// Module index per memory-resident variable.
    pub module_of: HashMap<VarId, u32>,
    /// Storage locations needed inside each module (its array size).
    pub module_sizes: Vec<u32>,
    /// Modules actually used (≤ the requested count).
    pub modules_used: u32,
    /// Total awake module-steps after partitioning (Σ module spans).
    pub awake_module_steps: u32,
    /// Awake module-steps of the unpartitioned baseline: one monolithic
    /// module awake from the first memory access to the last.
    pub monolithic_awake_steps: u32,
    /// Idle (leakage) energy saved vs the monolithic baseline, in energy
    /// units, at `idle_energy_per_step` per awake step.
    pub idle_energy_saved: f64,
}

/// # Examples
///
/// ```
/// use lemra_core::{allocate, partition_memory_modules, AllocationProblem};
/// use lemra_ir::LifetimeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Activity clustered early and late: two modules sleep the middle.
/// let lifetimes = LifetimeTable::from_intervals(
///     12,
///     vec![(1, vec![2], false), (10, vec![12], false)],
/// )?;
/// let problem = AllocationProblem::new(lifetimes, 0);
/// let allocation = allocate(&problem)?;
/// let sleep = partition_memory_modules(&problem, &allocation, 2, 1.0);
/// assert!(sleep.idle_energy_saved > 0.0);
/// # Ok(())
/// # }
/// ```
///
/// Packs the allocation's memory addresses into at most `modules` sleep-
/// capable memory modules, minimising total awake time.
///
/// `idle_energy_per_step` is the leakage cost of keeping one module awake
/// for one control step (the same energy units as everything else; sleep
/// is modelled as free, matching ref \[4\]).
///
/// Returns a partition with zero savings when nothing resides in memory.
pub fn partition_memory_modules(
    problem: &AllocationProblem,
    allocation: &Allocation,
    modules: u32,
    idle_energy_per_step: f64,
) -> SleepPartition {
    let modules = modules.max(1);
    // Active window per memory-resident variable.
    let mut windows: Vec<(VarId, u32, u32)> = Vec::new();
    for v in 0..problem.lifetimes.len() {
        let var = VarId(v as u32);
        if allocation.memory_address(var).is_none() {
            continue;
        }
        let t = trace_var_carried(
            allocation.segmentation(),
            allocation.placements(),
            var,
            problem.carry_of(var),
        );
        let lo = t.accesses.iter().map(|a| a.step.0).min();
        let hi = t.accesses.iter().map(|a| a.step.0).max();
        if let (Some(lo), Some(hi)) = (lo, hi) {
            windows.push((var, lo, hi));
        }
    }
    if windows.is_empty() {
        return SleepPartition {
            module_of: HashMap::new(),
            module_sizes: Vec::new(),
            modules_used: 0,
            awake_module_steps: 0,
            monolithic_awake_steps: 0,
            idle_energy_saved: 0.0,
        };
    }
    windows.sort_by_key(|&(_, lo, _)| lo);

    let monolithic = {
        let lo = windows
            .iter()
            .map(|&(_, lo, _)| lo)
            .min()
            .expect("non-empty");
        let hi = windows
            .iter()
            .map(|&(_, _, hi)| hi)
            .max()
            .expect("non-empty");
        hi - lo + 1
    };

    // DP over start-contiguous groups: cost of grouping windows i..j into
    // one module = span(max end - min start + 1).
    let n = windows.len();
    let m = (modules as usize).min(n);
    let span = |i: usize, j: usize| -> u32 {
        // windows sorted by start, so min start is windows[i].
        let lo = windows[i].1;
        let hi = windows[i..=j]
            .iter()
            .map(|&(_, _, h)| h)
            .max()
            .expect("non-empty");
        hi - lo + 1
    };
    const INF: u32 = u32::MAX / 2;
    // best[k][j]: min total span covering windows 0..j with k+1 modules.
    let mut best = vec![vec![INF; n]; m];
    let mut cut = vec![vec![0usize; n]; m];
    for (j, slot) in best[0].iter_mut().enumerate() {
        *slot = span(0, j);
    }
    for k in 1..m {
        for j in 0..n {
            for i in 0..=j {
                let prev = if i == 0 { 0 } else { best[k - 1][i - 1] };
                if prev == INF {
                    continue;
                }
                let candidate = prev + span(i, j);
                if candidate < best[k][j] {
                    best[k][j] = candidate;
                    cut[k][j] = i;
                }
            }
        }
    }
    // Best module count ≤ m (more modules never hurt span, but report the
    // minimal-awake configuration).
    let (best_k, &awake) = (0..m)
        .map(|k| &best[k][n - 1])
        .enumerate()
        .min_by_key(|&(_, c)| c)
        .expect("non-empty");

    // Reconstruct the partition.
    let mut module_of: HashMap<VarId, u32> = HashMap::new();
    let mut j = n - 1;
    let mut k = best_k;
    let mut module = best_k as u32;
    loop {
        let i = if k == 0 { 0 } else { cut[k][j] };
        for &(var, _, _) in &windows[i..=j] {
            module_of.insert(var, module);
        }
        if k == 0 {
            break;
        }
        j = i - 1;
        k -= 1;
        module -= 1;
    }

    // Each module is its own array: size it by left-edge over the
    // residency intervals of its variables.
    let mut module_sizes = vec![0u32; best_k + 1];
    for (m, size) in module_sizes.iter_mut().enumerate() {
        let mut intervals: Vec<(lemra_ir::Tick, lemra_ir::Tick)> = module_of
            .iter()
            .filter(|&(_, &mm)| mm == m as u32)
            .filter_map(|(&v, _)| allocation.memory_residency(v))
            .collect();
        intervals.sort();
        let mut ends: Vec<lemra_ir::Tick> = Vec::new();
        for (start, end) in intervals {
            match ends.iter_mut().find(|e| **e < start) {
                Some(slot) => *slot = end,
                None => ends.push(end),
            }
        }
        *size = ends.len() as u32;
    }

    SleepPartition {
        module_of,
        module_sizes,
        modules_used: best_k as u32 + 1,
        awake_module_steps: awake,
        monolithic_awake_steps: monolithic,
        idle_energy_saved: f64::from(monolithic.saturating_sub(awake)) * idle_energy_per_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allocate, AllocationProblem};
    use lemra_ir::LifetimeTable;

    /// Two clusters of memory activity far apart in time.
    fn bimodal() -> (AllocationProblem, Allocation) {
        let t = LifetimeTable::from_intervals(
            20,
            vec![
                (1, vec![3], false),   // early
                (2, vec![4], false),   // early
                (16, vec![18], false), // late
                (17, vec![19], false), // late
            ],
        )
        .unwrap();
        let p = AllocationProblem::new(t, 0); // everything in memory
        let a = allocate(&p).unwrap();
        (p, a)
    }

    #[test]
    fn one_module_matches_monolithic() {
        let (p, a) = bimodal();
        let s = partition_memory_modules(&p, &a, 1, 1.0);
        assert_eq!(s.modules_used, 1);
        assert_eq!(s.awake_module_steps, s.monolithic_awake_steps);
        assert_eq!(s.idle_energy_saved, 0.0);
    }

    #[test]
    fn two_modules_split_the_clusters() {
        let (p, a) = bimodal();
        let s = partition_memory_modules(&p, &a, 2, 1.0);
        assert_eq!(s.modules_used, 2);
        // Early cluster awake ~steps 1-4, late cluster ~16-19: the long
        // silent middle is slept through.
        assert!(s.awake_module_steps < s.monolithic_awake_steps / 2);
        assert!(s.idle_energy_saved > 0.0);
        // The two early variables share a module, the two late ones the
        // other; each module needs two locations.
        let m = |v: u32| s.module_of[&VarId(v)];
        assert_eq!(m(0), m(1));
        assert_eq!(m(2), m(3));
        assert_ne!(m(0), m(2));
        assert_eq!(s.module_sizes, vec![2, 2]);
        let _ = &a;
    }

    #[test]
    fn savings_monotone_in_module_count() {
        let (p, a) = bimodal();
        let mut prev = -1.0;
        for m in 1..5 {
            let s = partition_memory_modules(&p, &a, m, 1.0);
            assert!(s.idle_energy_saved >= prev, "m={m}");
            prev = s.idle_energy_saved;
        }
    }

    #[test]
    fn empty_memory_sleeps_forever() {
        let t = LifetimeTable::from_intervals(4, vec![(1, vec![3], false)]).unwrap();
        let p = AllocationProblem::new(t, 2);
        let a = allocate(&p).unwrap();
        let s = partition_memory_modules(&p, &a, 2, 1.0);
        assert_eq!(s.modules_used, 0);
        assert_eq!(s.awake_module_steps, 0);
    }
}
