//! Arc costs: equations (3)–(10) of the paper, generalised.
//!
//! All costs are *deltas* against the "everything lives in memory" baseline
//! (the constant first term of the paper's objective, which "we can remove
//! … in our minimization problem"):
//!
//! * baseline per variable: one memory write at its definition plus one
//!   memory read per genuine read (`E^m_w + rlast_v · E^m_r`).
//!
//! Each arc then carries the energy consequences of the placement decision
//! it encodes:
//!
//! * **segment arc** `w_i(v) → r_i(v)`: cost 0 — eq. (3);
//! * **chain arc** `r_i(v) → w_{i+1}(v)` (value stays in its register):
//!   refunds the boundary memory read if the boundary is a genuine read —
//!   eq. (9);
//! * **hand-off arc** `r_i(v1) → w_j(v2)` (v2 takes over v1's register):
//!   `exit(v1, i) + enter(v2, j) + transition(v1, v2)` — this reproduces
//!   eqs. (4), (6), (8), (10) exactly and corrects eq. (7), which drops the
//!   `−E^m_r(v1)` refund its siblings carry (documented in DESIGN.md);
//! * **source/sink arcs** carry the enter/exit halves so that totals match
//!   eq. (1)/(2) exactly — the paper leaves these implicit.
//!
//! The static model (eq. 1) adds `E^r_w` on every register entry and `E^r_r`
//! on every read served from a register; the activity model (eq. 2) instead
//! charges `H(v1, v2) · C^r_rw · Vr²` per register overwrite, with register
//! reads free.

use crate::problem::CarryIn;
use crate::segment::{Boundary, Segment};
use lemra_energy::{EnergyModel, MicroEnergy, RegisterEnergyKind};
use lemra_ir::{ActivitySource, VarId};

/// Computes arc costs for one allocation problem.
#[derive(Debug)]
pub(crate) struct CostCalculator<'a> {
    energy: &'a EnergyModel,
    kind: RegisterEnergyKind,
    activity: &'a ActivitySource,
    carried_memory: &'a [VarId],
    carried_register: &'a [VarId],
}

impl<'a> CostCalculator<'a> {
    pub fn new(
        energy: &'a EnergyModel,
        kind: RegisterEnergyKind,
        activity: &'a ActivitySource,
        carried_memory: &'a [VarId],
        carried_register: &'a [VarId],
    ) -> Self {
        Self {
            energy,
            kind,
            activity,
            carried_memory,
            carried_register,
        }
    }

    fn carry_of(&self, var: VarId) -> CarryIn {
        if self.carried_memory.contains(&var) {
            CarryIn::Memory
        } else if self.carried_register.contains(&var) {
            CarryIn::Register
        } else {
            CarryIn::Defined
        }
    }

    /// Delta for serving a boundary read from the register file instead of
    /// memory: `−E^m_r` (+`E^r_r` under the static model).
    fn read_from_register(&self) -> MicroEnergy {
        let refund = -self.energy.e_mem_read();
        match self.kind {
            RegisterEnergyKind::Static => refund + self.energy.e_reg_read(),
            RegisterEnergyKind::Activity => refund,
        }
    }

    /// Static-model register write charge (the activity model charges the
    /// Hamming term on the transition instead).
    fn register_write(&self) -> MicroEnergy {
        match self.kind {
            RegisterEnergyKind::Static => self.energy.e_reg_write(),
            RegisterEnergyKind::Activity => MicroEnergy::ZERO,
        }
    }

    /// Cost of the chain arc out of `seg` into the variable's next segment
    /// (same register, value untouched) — eq. (9).
    pub fn chain(&self, seg: &Segment) -> MicroEnergy {
        if seg.end_kind == Boundary::Read {
            self.read_from_register()
        } else {
            MicroEnergy::ZERO
        }
    }

    /// Exit half of a hand-off / sink arc: `seg`'s register is given up at
    /// its end boundary.
    pub fn exit(&self, seg: &Segment) -> MicroEnergy {
        let mut cost = MicroEnergy::ZERO;
        if seg.end_kind == Boundary::Read {
            // The boundary read is served from the register before it is
            // overwritten (reads happen on the read tick, writes after).
            cost += self.read_from_register();
        }
        if !seg.is_last {
            // The variable still has uses ahead but loses its register: it
            // must be written back to memory — the `+E^m_w(v1)` of eq. (6).
            cost += self.energy.e_mem_write();
        }
        cost
    }

    /// Enter half of a hand-off / source arc: `seg` moves into a register
    /// at its start boundary.
    pub fn enter(&self, seg: &Segment) -> MicroEnergy {
        let mut cost = MicroEnergy::ZERO;
        let mut needs_register_write = true;
        if seg.is_first {
            match self.carry_of(seg.var) {
                // Defined straight into the register: the baseline memory
                // write never happens — the `−E^m_w(v2)` of eqs. (4), (6),
                // (10).
                CarryIn::Defined => cost -= self.energy.e_mem_write(),
                // Already in memory at block entry: registering it is a
                // fetch, not a saved write.
                CarryIn::Memory => cost += self.energy.e_mem_read(),
                // Already sitting in a register: staying there avoids the
                // baseline boundary spill and needs no register write.
                CarryIn::Register => {
                    cost -= self.energy.e_mem_write();
                    needs_register_write = false;
                }
            }
        } else if seg.start_kind == Boundary::Split {
            // Mid-lifetime entry at a cut that is not a genuine read: the
            // value must be fetched from memory.
            cost += self.energy.e_mem_read();
        }
        // (A mid-lifetime entry at a genuine read reuses that read's value.)
        if needs_register_write {
            cost + self.register_write()
        } else {
            cost
        }
    }

    /// Hamming transition term for `to_var` overwriting `from_var`'s
    /// register (activity model only).
    pub fn transition(&self, from: &Segment, to: &Segment) -> MicroEnergy {
        match self.kind {
            RegisterEnergyKind::Static => MicroEnergy::ZERO,
            RegisterEnergyKind::Activity => self
                .energy
                .e_reg_activity(self.activity.hamming(from.var, to.var)),
        }
    }

    /// Full hand-off arc cost `r_i(v1) → w_j(v2)` — eqs. (4)/(6)/(7)/(8)/(10).
    pub fn handoff(&self, from: &Segment, to: &Segment) -> MicroEnergy {
        self.exit(from) + self.enter(to) + self.transition(from, to)
    }

    /// Source arc cost `s → w_j(v)`: enter plus the initial register write
    /// switching (the paper "assume[s] that 0.5 of the bits change at time
    /// 0"). Register-carried variables switch nothing — the value is
    /// already in place.
    pub fn source(&self, to: &Segment) -> MicroEnergy {
        let carried_register = to.is_first && self.carry_of(to.var) == CarryIn::Register;
        let initial = match self.kind {
            RegisterEnergyKind::Activity if !carried_register => {
                self.energy.e_reg_activity(self.activity.initial(to.var))
            }
            _ => MicroEnergy::ZERO,
        };
        self.enter(to) + initial
    }

    /// Sink arc cost `r_i(v) → t`: the exit half only.
    pub fn sink(&self, from: &Segment) -> MicroEnergy {
        self.exit(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemra_ir::{Step, VarId};

    fn seg(var: u32, first: bool, last: bool, start: Boundary, end: Boundary) -> Segment {
        Segment {
            var: VarId(var),
            index: usize::from(!first),
            start_step: Step(1),
            end_step: Step(3),
            start_kind: start,
            end_kind: end,
            forced_register: false,
            is_first: first,
            is_last: last,
        }
    }

    fn whole(var: u32) -> Segment {
        seg(var, true, true, Boundary::Def, Boundary::Read)
    }

    #[test]
    fn eq10_last_read_to_first_write_static() {
        // e = E^r_w + E^r_r − E^m_w − E^m_r  (the static analogue of (10)).
        let m = EnergyModel::default_16bit();
        let a = ActivitySource::Uniform { hamming: 8.0 };
        let c = CostCalculator::new(&m, RegisterEnergyKind::Static, &a, &[], &[]);
        let cost = c.handoff(&whole(0), &whole(1));
        let expected = m.e_reg_write() + m.e_reg_read() - m.e_mem_write() - m.e_mem_read();
        assert_eq!(cost, expected);
    }

    #[test]
    fn eq10_activity() {
        // e = H(v1,v2)·C − E^m_w − E^m_r  (eq. 10 / eq. 5).
        let m = EnergyModel::default_16bit();
        let a = ActivitySource::Uniform { hamming: 8.0 };
        let c = CostCalculator::new(&m, RegisterEnergyKind::Activity, &a, &[], &[]);
        let cost = c.handoff(&whole(0), &whole(1));
        let expected = m.e_reg_activity(8.0) - m.e_mem_write() - m.e_mem_read();
        assert_eq!(cost, expected);
    }

    #[test]
    fn eq6_midlife_exit_adds_writeback() {
        // ri(v1) with i < last → w1(v2):
        // e = −E^m_r(v1) − E^m_w(v2) + E^m_w(v1) + H·C   (eq. 6)
        let m = EnergyModel::default_16bit();
        let a = ActivitySource::Uniform { hamming: 4.0 };
        let c = CostCalculator::new(&m, RegisterEnergyKind::Activity, &a, &[], &[]);
        let from = seg(0, true, false, Boundary::Def, Boundary::Read);
        let to = whole(1);
        let cost = c.handoff(&from, &to);
        let expected = -m.e_mem_read() - m.e_mem_write() + m.e_mem_write() + m.e_reg_activity(4.0);
        assert_eq!(cost, expected);
    }

    #[test]
    fn eq8_last_read_to_midlife_write() {
        // rlast(v1) → wi(v2), i > 1, boundary a genuine read of v2:
        // e = −E^m_r(v1) + H·C   (eq. 8)
        let m = EnergyModel::default_16bit();
        let a = ActivitySource::Uniform { hamming: 4.0 };
        let c = CostCalculator::new(&m, RegisterEnergyKind::Activity, &a, &[], &[]);
        let from = whole(0);
        let to = seg(1, false, true, Boundary::Read, Boundary::Read);
        let cost = c.handoff(&from, &to);
        let expected = -m.e_mem_read() + m.e_reg_activity(4.0);
        assert_eq!(cost, expected);
    }

    #[test]
    fn eq9_chain_refunds_read_only_at_genuine_reads() {
        let m = EnergyModel::default_16bit();
        let a = ActivitySource::Uniform { hamming: 4.0 };
        let c = CostCalculator::new(&m, RegisterEnergyKind::Activity, &a, &[], &[]);
        let read_end = seg(0, true, false, Boundary::Def, Boundary::Read);
        assert_eq!(c.chain(&read_end), -m.e_mem_read());
        let split_end = seg(0, true, false, Boundary::Def, Boundary::Split);
        assert_eq!(c.chain(&split_end), MicroEnergy::ZERO);
    }

    #[test]
    fn midlife_split_entry_pays_fetch() {
        let m = EnergyModel::default_16bit();
        let a = ActivitySource::Uniform { hamming: 4.0 };
        let c = CostCalculator::new(&m, RegisterEnergyKind::Static, &a, &[], &[]);
        let to = seg(1, false, true, Boundary::Split, Boundary::Read);
        assert_eq!(c.enter(&to), m.e_mem_read() + m.e_reg_write());
    }

    #[test]
    fn source_and_sink_halves_sum_to_whole_variable_delta() {
        // A single-segment variable placed in a register via s → w → r → t
        // saves its full memory roundtrip and pays register accesses.
        let m = EnergyModel::default_16bit();
        let a = ActivitySource::Uniform { hamming: 4.0 };
        let c = CostCalculator::new(&m, RegisterEnergyKind::Static, &a, &[], &[]);
        let v = whole(0);
        let total = c.source(&v) + c.sink(&v);
        let expected = m.e_reg_write() + m.e_reg_read() - m.e_mem_write() - m.e_mem_read();
        assert_eq!(total, expected);
        // Placing a variable in a register is beneficial under the default
        // model — the premise of the whole approach.
        assert!(total < MicroEnergy::ZERO);
    }
}
