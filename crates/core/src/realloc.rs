//! Second-stage memory re-allocation (§5 methodology, last paragraph).
//!
//! "The lifetimes of data variables assigned to memory are then used to form
//! another network flow graph. The minimum cost network flow is then solved
//! on this graph to reallocate memory using an activity based energy model."
//!
//! Supporting an activity model for memory *simultaneously* with the main
//! problem would need two-commodity flow, which is NP-complete (§7); the
//! paper therefore re-allocates memory in a second, separate flow pass: the
//! memory-resident lifetimes are matched to storage locations so that the
//! total Hamming switching between consecutive residents of each address is
//! minimal.

use crate::allocator::Allocation;
use crate::problem::AllocationProblem;
use crate::CoreError;
use lemra_ir::{ActivitySource, Tick, VarId};
use lemra_netflow::{min_cost_flow, ArcId, FlowNetwork, NetflowError};
use std::collections::HashMap;

/// Result of the second-stage memory re-allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryReallocation {
    /// New address per memory-resident variable.
    pub address_of: HashMap<VarId, u32>,
    /// Locations used (equals the first stage's count — the pass reshuffles
    /// residents, it does not add storage).
    pub locations: u32,
    /// Total Hamming switching across addresses after re-allocation.
    pub switching: f64,
}

/// # Examples
///
/// ```
/// use lemra_core::{allocate, reallocate_memory, AllocationProblem};
/// use lemra_ir::LifetimeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lifetimes =
///     LifetimeTable::from_intervals(6, vec![(1, vec![3], false), (4, vec![6], false)])?;
/// let problem = AllocationProblem::new(lifetimes, 0);
/// let allocation = allocate(&problem)?;
/// let addressing = reallocate_memory(&problem, &allocation)?;
/// assert_eq!(addressing.locations, allocation.storage_locations());
/// # Ok(())
/// # }
/// ```
///
/// Re-assigns memory addresses to minimise address-line switching, keeping
/// the location count of `allocation`.
///
/// Costs are the activity source's Hamming terms scaled to micro-units; the
/// optimum is exact over the given residency intervals.
///
/// # Errors
///
/// Returns [`CoreError::Flow`] if the internal flow problem fails (cannot
/// happen for well-formed allocations; the interval family always admits a
/// matching with `locations` addresses).
#[allow(clippy::needless_range_loop)] // index drives parallel lookups
pub fn reallocate_memory(
    problem: &AllocationProblem,
    allocation: &Allocation,
) -> Result<MemoryReallocation, CoreError> {
    let residents: Vec<(VarId, (Tick, Tick))> = (0..problem.lifetimes.len() as u32)
        .map(VarId)
        .filter_map(|v| allocation.memory_residency(v).map(|r| (v, r)))
        .collect();
    let locations = allocation.storage_locations();
    if residents.is_empty() {
        return Ok(MemoryReallocation {
            address_of: HashMap::new(),
            locations: 0,
            switching: 0.0,
        });
    }

    // One w/r node pair per resident; every resident must be assigned, so
    // its arc has lower bound 1. Hand-offs between all non-overlapping
    // residents; costs are pure Hamming terms (scaled ×10⁶ for integrality).
    const SCALE: f64 = 1e6;
    let mut net = FlowNetwork::new();
    let s = net.add_node();
    let t = net.add_node();
    let mut seg_arc: Vec<ArcId> = Vec::with_capacity(residents.len());
    let mut nodes = Vec::with_capacity(residents.len());
    for _ in &residents {
        let w = net.add_node();
        let r = net.add_node();
        nodes.push((w, r));
        seg_arc.push(
            net.add_arc_bounded(w, r, 1, 1, 0)
                .map_err(CoreError::Flow)?,
        );
    }
    let quant = |h: f64| (h * SCALE).round() as i64;
    let mut handoffs: Vec<(ArcId, usize, usize)> = Vec::new();
    for (i, (v1, (_, end1))) in residents.iter().enumerate() {
        net.add_arc(s, nodes[i].0, 1, quant(initial_of(&problem.activity, *v1)))
            .map_err(CoreError::Flow)?;
        net.add_arc(nodes[i].1, t, 1, 0).map_err(CoreError::Flow)?;
        for (j, (v2, (start2, _))) in residents.iter().enumerate() {
            if i == j || *end1 >= *start2 {
                continue;
            }
            let arc = net
                .add_arc(
                    nodes[i].1,
                    nodes[j].0,
                    1,
                    quant(problem.activity.hamming(*v1, *v2)),
                )
                .map_err(CoreError::Flow)?;
            handoffs.push((arc, i, j));
        }
    }
    net.add_arc(s, t, i64::from(locations), 0)
        .map_err(CoreError::Flow)?;

    let sol = min_cost_flow(&net, s, t, i64::from(locations)).map_err(|e| match e {
        NetflowError::Infeasible { required, achieved } => CoreError::TooFewRegisters {
            registers: locations,
            shortfall: required - achieved,
        },
        other => CoreError::Flow(other),
    })?;

    // Extract chains: successor per resident.
    let mut successor: Vec<Option<usize>> = vec![None; residents.len()];
    let mut has_predecessor = vec![false; residents.len()];
    for &(arc, i, j) in &handoffs {
        if sol.flow(arc) == 1 {
            successor[i] = Some(j);
            has_predecessor[j] = true;
        }
    }
    let mut address_of = HashMap::new();
    let mut switching = 0.0;
    let mut next_addr = 0u32;
    for start in 0..residents.len() {
        if has_predecessor[start] {
            continue;
        }
        let addr = next_addr;
        next_addr += 1;
        let mut cur = Some(start);
        let mut prev_var: Option<VarId> = None;
        while let Some(i) = cur {
            let v = residents[i].0;
            address_of.insert(v, addr);
            switching += match prev_var {
                None => initial_of(&problem.activity, v),
                Some(p) => problem.activity.hamming(p, v),
            };
            prev_var = Some(v);
            cur = successor[i];
        }
    }

    Ok(MemoryReallocation {
        address_of,
        locations: next_addr,
        switching,
    })
}

fn initial_of(activity: &ActivitySource, v: VarId) -> f64 {
    activity.initial(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allocate, AllocationProblem, AllocationReport};
    use lemra_ir::LifetimeTable;

    fn memory_only_problem() -> AllocationProblem {
        // Four sequential variables, pairwise-compatible, no registers.
        let t = LifetimeTable::from_intervals(
            9,
            vec![
                (1, vec![3], false),
                (2, vec![4], false),
                (4, vec![6], false),
                (5, vec![9], false),
            ],
        )
        .unwrap();
        AllocationProblem::new(t, 0).with_activity(ActivitySource::from_pairs([
            (VarId(0), VarId(2), 0.1),
            (VarId(0), VarId(3), 0.9),
            (VarId(1), VarId(2), 0.9),
            (VarId(1), VarId(3), 0.1),
        ]))
    }

    #[test]
    fn realloc_picks_low_switching_pairing() {
        let p = memory_only_problem();
        let a = allocate(&p).unwrap();
        assert_eq!(a.storage_locations(), 2);
        let r = reallocate_memory(&p, &a).unwrap();
        assert_eq!(r.locations, 2);
        // Optimal pairing: 0→2 (0.1) and 1→3 (0.1) plus two initials (0.5).
        assert!(
            (r.switching - 1.2).abs() < 1e-9,
            "switching {}",
            r.switching
        );
        assert_eq!(r.address_of[&VarId(0)], r.address_of[&VarId(2)]);
        assert_eq!(r.address_of[&VarId(1)], r.address_of[&VarId(3)]);
    }

    #[test]
    fn realloc_never_worse_than_left_edge() {
        let p = memory_only_problem();
        let a = allocate(&p).unwrap();
        let first_stage = AllocationReport::new(&p, &a).memory_switching;
        let r = reallocate_memory(&p, &a).unwrap();
        assert!(r.switching <= first_stage + 1e-9);
    }

    #[test]
    fn empty_memory_is_trivial() {
        let t = LifetimeTable::from_intervals(3, vec![(1, vec![3], false)]).unwrap();
        let p = AllocationProblem::new(t, 4);
        let a = allocate(&p).unwrap();
        let r = reallocate_memory(&p, &a).unwrap();
        assert_eq!(r.locations, 0);
        assert!(r.address_of.is_empty());
    }
}
