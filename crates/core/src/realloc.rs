//! Second-stage memory re-allocation (§5 methodology, last paragraph).
//!
//! "The lifetimes of data variables assigned to memory are then used to form
//! another network flow graph. The minimum cost network flow is then solved
//! on this graph to reallocate memory using an activity based energy model."
//!
//! Supporting an activity model for memory *simultaneously* with the main
//! problem would need two-commodity flow, which is NP-complete (§7); the
//! paper therefore re-allocates memory in a second, separate flow pass: the
//! memory-resident lifetimes are matched to storage locations so that the
//! total Hamming switching between consecutive residents of each address is
//! minimal.

use crate::allocator::Allocation;
use crate::pipeline::{solve_chain_flow, ChainFlowSpec, PipelineCx};
use crate::problem::AllocationProblem;
use crate::CoreError;
use lemra_ir::{ActivitySource, Tick, VarId};
use std::collections::HashMap;

/// Result of the second-stage memory re-allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryReallocation {
    /// New address per memory-resident variable.
    pub address_of: HashMap<VarId, u32>,
    /// Locations used (equals the first stage's count — the pass reshuffles
    /// residents, it does not add storage).
    pub locations: u32,
    /// Total Hamming switching across addresses after re-allocation.
    pub switching: f64,
}

/// # Examples
///
/// ```
/// use lemra_core::{allocate, reallocate_memory, AllocationProblem};
/// use lemra_ir::LifetimeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lifetimes =
///     LifetimeTable::from_intervals(6, vec![(1, vec![3], false), (4, vec![6], false)])?;
/// let problem = AllocationProblem::new(lifetimes, 0);
/// let allocation = allocate(&problem)?;
/// let addressing = reallocate_memory(&problem, &allocation)?;
/// assert_eq!(addressing.locations, allocation.storage_locations());
/// # Ok(())
/// # }
/// ```
///
/// Re-assigns memory addresses to minimise address-line switching, keeping
/// the location count of `allocation`.
///
/// Costs are the activity source's Hamming terms scaled to micro-units; the
/// optimum is exact over the given residency intervals.
///
/// # Errors
///
/// Returns [`CoreError::Flow`] if the internal flow problem fails (cannot
/// happen for well-formed allocations; the interval family always admits a
/// matching with `locations` addresses).
pub fn reallocate_memory(
    problem: &AllocationProblem,
    allocation: &Allocation,
) -> Result<MemoryReallocation, CoreError> {
    reallocate_memory_with(&mut PipelineCx::new(), problem, allocation)
}

/// [`reallocate_memory`] composed onto an existing [`PipelineCx`] (shared
/// backend, cumulative counters).
pub(crate) fn reallocate_memory_with(
    cx: &mut PipelineCx,
    problem: &AllocationProblem,
    allocation: &Allocation,
) -> Result<MemoryReallocation, CoreError> {
    let residents: Vec<(VarId, (Tick, Tick))> = (0..problem.lifetimes.len() as u32)
        .map(VarId)
        .filter_map(|v| allocation.memory_residency(v).map(|r| (v, r)))
        .collect();
    let locations = allocation.storage_locations();
    if residents.is_empty() {
        return Ok(MemoryReallocation {
            address_of: HashMap::new(),
            locations: 0,
            switching: 0.0,
        });
    }

    // One w/r node pair per resident; every resident must be assigned, so
    // its arc has lower bound 1. Hand-offs between all non-overlapping
    // residents; costs are pure Hamming terms (scaled ×10⁶ for integrality).
    const SCALE: f64 = 1e6;
    let quant = |h: f64| (h * SCALE).round() as i64;
    let intervals: Vec<(Tick, Tick)> = residents.iter().map(|&(_, r)| r).collect();
    let item_cost = vec![0i64; residents.len()];
    let source_cost: Vec<i64> = residents
        .iter()
        .map(|&(v, _)| quant(initial_of(&problem.activity, v)))
        .collect();
    let handoff_cost =
        |i: usize, j: usize| quant(problem.activity.hamming(residents[i].0, residents[j].0));
    let outcome = solve_chain_flow(
        cx,
        &ChainFlowSpec {
            intervals: &intervals,
            item_cost: &item_cost,
            source_cost: &source_cost,
            handoff_cost: &handoff_cost,
            required: true,
            capacity: locations,
        },
    )?;

    // Each chain is one address; replay it for the exact (unquantised)
    // switching total.
    let mut address_of = HashMap::new();
    let mut switching = 0.0;
    for (addr, chain) in outcome.chains.iter().enumerate() {
        let mut prev_var: Option<VarId> = None;
        for &i in chain {
            let v = residents[i].0;
            address_of.insert(v, addr as u32);
            switching += match prev_var {
                None => initial_of(&problem.activity, v),
                Some(p) => problem.activity.hamming(p, v),
            };
            prev_var = Some(v);
        }
    }

    Ok(MemoryReallocation {
        address_of,
        locations: outcome.chains.len() as u32,
        switching,
    })
}

fn initial_of(activity: &ActivitySource, v: VarId) -> f64 {
    activity.initial(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allocate, AllocationProblem, AllocationReport};
    use lemra_ir::LifetimeTable;

    fn memory_only_problem() -> AllocationProblem {
        // Four sequential variables, pairwise-compatible, no registers.
        let t = LifetimeTable::from_intervals(
            9,
            vec![
                (1, vec![3], false),
                (2, vec![4], false),
                (4, vec![6], false),
                (5, vec![9], false),
            ],
        )
        .unwrap();
        AllocationProblem::new(t, 0).with_activity(ActivitySource::from_pairs([
            (VarId(0), VarId(2), 0.1),
            (VarId(0), VarId(3), 0.9),
            (VarId(1), VarId(2), 0.9),
            (VarId(1), VarId(3), 0.1),
        ]))
    }

    #[test]
    fn realloc_picks_low_switching_pairing() {
        let p = memory_only_problem();
        let a = allocate(&p).unwrap();
        assert_eq!(a.storage_locations(), 2);
        let r = reallocate_memory(&p, &a).unwrap();
        assert_eq!(r.locations, 2);
        // Optimal pairing: 0→2 (0.1) and 1→3 (0.1) plus two initials (0.5).
        assert!(
            (r.switching - 1.2).abs() < 1e-9,
            "switching {}",
            r.switching
        );
        assert_eq!(r.address_of[&VarId(0)], r.address_of[&VarId(2)]);
        assert_eq!(r.address_of[&VarId(1)], r.address_of[&VarId(3)]);
    }

    #[test]
    fn realloc_never_worse_than_left_edge() {
        let p = memory_only_problem();
        let a = allocate(&p).unwrap();
        let first_stage = AllocationReport::new(&p, &a).memory_switching;
        let r = reallocate_memory(&p, &a).unwrap();
        assert!(r.switching <= first_stage + 1e-9);
    }

    #[test]
    fn empty_memory_is_trivial() {
        let t = LifetimeTable::from_intervals(3, vec![(1, vec![3], false)]).unwrap();
        let p = AllocationProblem::new(t, 4);
        let a = allocate(&p).unwrap();
        let r = reallocate_memory(&p, &a).unwrap();
        assert_eq!(r.locations, 0);
        assert!(r.address_of.is_empty());
    }
}
