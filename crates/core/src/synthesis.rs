//! The complete §5 methodology in one call.
//!
//! "First an algorithm is selected … The algorithm is represented as a task
//! flow graph. … Transformations are performed within each task such as
//! data regeneration … detailed scheduling of computations within each task
//! is performed. Finally the minimum cost network flow approach is applied
//! to each basic block … The lifetimes of data variables assigned to memory
//! are then used to form another network flow graph [for] an activity based
//! energy model. After this stage … detailed instruction mapping and data
//! layout (for example adding loads and stores …) is completed."
//!
//! [`synthesize`] runs exactly that pipeline over a sequence of data-flow
//! blocks: optional data regeneration, resource-constrained list
//! scheduling, lifetime extraction, chained flow-based allocation with
//! boundary threading, second-stage memory re-allocation, and storage code
//! generation.

use crate::codegen::{storage_plan, StoragePlan};
use crate::multiblock::{allocate_chain_with, BlockChain, ChainAllocation};
use crate::pipeline::PipelineCx;
use crate::problem::{AllocationProblem, GraphStyle};
use crate::realloc::{reallocate_memory_with, MemoryReallocation};
use crate::CoreError;
use lemra_energy::{EnergyModel, RegisterEnergyKind};
use lemra_ir::{
    list_schedule, regenerate, ActivitySource, BasicBlock, IrError, LifetimeTable, RegenConfig,
    ResourceSet, VarId,
};

/// Configuration of the synthesis pipeline.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Register-file size `R`.
    pub registers: u32,
    /// Functional units for the list scheduler.
    pub resources: ResourceSet,
    /// Memory-access period `c` (1 = unrestricted).
    pub access_period: u32,
    /// Energy model.
    pub energy: EnergyModel,
    /// Register accounting model.
    pub register_energy: RegisterEnergyKind,
    /// Graph construction style.
    pub style: GraphStyle,
    /// Data-regeneration pre-pass; `None` disables it.
    pub regeneration: Option<RegenConfig>,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            registers: 8,
            resources: ResourceSet::new(2, 1),
            access_period: 1,
            energy: EnergyModel::default_16bit(),
            register_energy: RegisterEnergyKind::Static,
            style: GraphStyle::Regions,
            regeneration: Some(RegenConfig::default()),
        }
    }
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The (possibly regeneration-transformed) blocks actually synthesised.
    pub blocks: Vec<BasicBlock>,
    /// Schedule length per block.
    pub schedule_lengths: Vec<u32>,
    /// The chained allocation with per-block reports.
    pub chain: ChainAllocation,
    /// Second-stage memory re-allocations, one per block.
    pub reallocations: Vec<MemoryReallocation>,
    /// Storage instructions (loads/stores/operands), one plan per block.
    pub plans: Vec<StoragePlan>,
    /// Values regenerated instead of stored, per block.
    pub regenerated: Vec<usize>,
}

impl SynthesisResult {
    /// Total static energy across the chain.
    pub fn total_static_energy(&self) -> f64 {
        self.chain.total_static_energy()
    }

    /// Total memory accesses across the chain.
    pub fn total_mem_accesses(&self) -> u32 {
        self.chain.total_mem_accesses()
    }
}

/// Errors of the synthesis pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// A block failed validation, scheduling, or lifetime extraction.
    Ir(IrError),
    /// Allocation failed.
    Core(CoreError),
    /// A boundary link names an unknown variable.
    UnknownLink {
        /// Index of the earlier block of the failing link.
        block: usize,
        /// The variable name that did not resolve.
        name: String,
    },
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::Ir(e) => write!(f, "synthesis ir: {e}"),
            SynthesisError::Core(e) => write!(f, "synthesis allocation: {e}"),
            SynthesisError::UnknownLink { block, name } => {
                write!(f, "link at block {block}: no variable named `{name}`")
            }
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Ir(e) => Some(e),
            SynthesisError::Core(e) => Some(e),
            SynthesisError::UnknownLink { .. } => None,
        }
    }
}

impl From<IrError> for SynthesisError {
    fn from(e: IrError) -> Self {
        SynthesisError::Ir(e)
    }
}

impl From<CoreError> for SynthesisError {
    fn from(e: CoreError) -> Self {
        SynthesisError::Core(e)
    }
}

/// # Examples
///
/// ```
/// use lemra_core::{synthesize, SynthesisConfig};
/// use lemra_ir::{BasicBlock, OpKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bb = BasicBlock::new("axpy");
/// let a = bb.input("a");
/// let x = bb.input("x");
/// let y = bb.input("y");
/// let ax = bb.op(OpKind::Mul, &[a, x], "ax")?;
/// let r = bb.op(OpKind::Add, &[ax, y], "r")?;
/// bb.output(r)?;
/// let result = synthesize(&[bb], &[], &[], &SynthesisConfig::default())?;
/// assert_eq!(result.total_mem_accesses(), 0); // fits in 8 registers
/// # Ok(())
/// # }
/// ```
///
/// Runs the §5 pipeline over `blocks` executed in order. `links[i]` names
/// `(producer, consumer)` variable pairs connecting block `i` to block
/// `i + 1` **by name** (names survive the regeneration transform, variable
/// ids do not). `activities` supplies the Hamming source per block.
///
/// # Errors
///
/// Returns [`SynthesisError`] for invalid blocks, unresolvable links, or
/// infeasible allocations (e.g. forced segments exceeding `R`).
pub fn synthesize(
    blocks: &[BasicBlock],
    links: &[Vec<(String, String)>],
    activities: &[ActivitySource],
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthesisError> {
    // 1. Transformations (data regeneration).
    let mut transformed = Vec::with_capacity(blocks.len());
    let mut regenerated = Vec::with_capacity(blocks.len());
    for block in blocks {
        match &config.regeneration {
            Some(cfg) => {
                let r = regenerate(block, cfg)?;
                regenerated.push(r.regenerated.len());
                transformed.push(r.block);
            }
            None => {
                regenerated.push(0);
                transformed.push(block.clone());
            }
        }
    }

    // 2. Detailed scheduling + lifetime extraction.
    let mut problems = Vec::with_capacity(transformed.len());
    let mut schedule_lengths = Vec::with_capacity(transformed.len());
    for (i, block) in transformed.iter().enumerate() {
        let schedule = list_schedule(block, config.resources)?;
        schedule_lengths.push(schedule.length());
        let table = LifetimeTable::from_schedule(block, &schedule)?;
        let activity = activities
            .get(i)
            .cloned()
            .unwrap_or(ActivitySource::Uniform { hamming: 8.0 });
        problems.push(
            AllocationProblem::new(table, config.registers)
                .with_energy(config.energy.clone())
                .with_register_energy(config.register_energy)
                .with_style(config.style)
                .with_access_period(config.access_period)
                .with_activity(activity),
        );
    }

    // 3. Resolve name links to variable ids.
    let var_by_name = |block: &BasicBlock, name: &str| -> Option<VarId> {
        block.vars().find(|(_, v)| v.name == name).map(|(id, _)| id)
    };
    let mut id_links = Vec::with_capacity(links.len());
    for (i, block_links) in links.iter().enumerate() {
        let mut resolved = Vec::with_capacity(block_links.len());
        for (out_name, in_name) in block_links {
            let out = var_by_name(&transformed[i], out_name).ok_or_else(|| {
                SynthesisError::UnknownLink {
                    block: i,
                    name: out_name.clone(),
                }
            })?;
            let inv = var_by_name(&transformed[i + 1], in_name).ok_or_else(|| {
                SynthesisError::UnknownLink {
                    block: i,
                    name: in_name.clone(),
                }
            })?;
            resolved.push((out, inv));
        }
        id_links.push(resolved);
    }

    // 4. Chained flow allocation with boundary threading. One pipeline
    // context carries the configured backend and per-stage counters across
    // every block and the second-stage flow passes below.
    let mut cx = PipelineCx::new();
    let chain = allocate_chain_with(
        &mut cx,
        &BlockChain {
            blocks: problems,
            links: id_links,
        },
    )?;

    // 5. Second-stage memory re-allocation and 6. instruction mapping.
    let mut reallocations = Vec::with_capacity(chain.allocations.len());
    let mut plans = Vec::with_capacity(chain.allocations.len());
    for (problem, allocation) in chain.problems.iter().zip(&chain.allocations) {
        reallocations.push(reallocate_memory_with(&mut cx, problem, allocation)?);
        plans.push(storage_plan(problem, allocation));
    }

    Ok(SynthesisResult {
        blocks: transformed,
        schedule_lengths,
        chain,
        reallocations,
        plans,
        regenerated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemra_ir::OpKind;

    fn producer() -> BasicBlock {
        let mut bb = BasicBlock::new("producer");
        let x = bb.input("x");
        let y = bb.input("y");
        let sum = bb.op(OpKind::Add, &[x, y], "sum").unwrap();
        let sq = bb.op(OpKind::Mul, &[sum, sum], "sq").unwrap();
        bb.output(sum).unwrap();
        bb.output(sq).unwrap();
        bb
    }

    fn consumer() -> BasicBlock {
        let mut bb = BasicBlock::new("consumer");
        let sum = bb.input("sum_in");
        let sq = bb.input("sq_in");
        let d = bb.op(OpKind::Add, &[sq, sum], "d").unwrap();
        let out = bb.op(OpKind::Logic, &[d], "out").unwrap();
        bb.output(out).unwrap();
        bb
    }

    fn name_links() -> Vec<Vec<(String, String)>> {
        vec![vec![
            ("sum".to_owned(), "sum_in".to_owned()),
            ("sq".to_owned(), "sq_in".to_owned()),
        ]]
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let blocks = vec![producer(), consumer()];
        let r = synthesize(&blocks, &name_links(), &[], &SynthesisConfig::default()).unwrap();
        assert_eq!(r.chain.allocations.len(), 2);
        assert_eq!(r.plans.len(), 2);
        assert_eq!(r.reallocations.len(), 2);
        assert!(r.schedule_lengths.iter().all(|&l| l >= 2));
        // Ample registers: no memory traffic anywhere.
        assert_eq!(r.total_mem_accesses(), 0);
        // Boundary threading happened.
        assert_eq!(r.chain.problems[1].carried_in_register.len(), 2);
    }

    #[test]
    fn zero_registers_spill_across_the_boundary() {
        let blocks = vec![producer(), consumer()];
        let config = SynthesisConfig {
            registers: 0,
            ..SynthesisConfig::default()
        };
        let r = synthesize(&blocks, &name_links(), &[], &config).unwrap();
        assert!(r.total_mem_accesses() > 0);
        assert_eq!(r.chain.problems[1].carried_in_memory.len(), 2);
        // The storage plans reconcile with the reports in every block.
        for (plan, report) in r.plans.iter().zip(&r.chain.reports) {
            assert_eq!(plan.stores() as u32, report.mem_writes);
            assert_eq!(
                plan.loads() + plan.memory_operand_reads(),
                report.mem_reads as usize
            );
        }
    }

    #[test]
    fn bad_links_are_named() {
        let blocks = vec![producer(), consumer()];
        let links = vec![vec![("nope".to_owned(), "sum_in".to_owned())]];
        let err = synthesize(&blocks, &links, &[], &SynthesisConfig::default()).unwrap_err();
        assert!(matches!(err, SynthesisError::UnknownLink { .. }));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn regeneration_is_applied_when_enabled() {
        // A block with a regeneration candidate: cheap value used late.
        let mut bb = BasicBlock::new("regen");
        let a = bb.input("a");
        let b = bb.input("b");
        let sum = bb.op(OpKind::Add, &[a, b], "sum").unwrap();
        let mut chainv = sum;
        for i in 0..5 {
            chainv = bb.op(OpKind::Logic, &[chainv], format!("c{i}")).unwrap();
        }
        let late = bb.op(OpKind::Add, &[chainv, sum], "late").unwrap();
        bb.output(late).unwrap();

        let with = synthesize(&[bb.clone()], &[], &[], &SynthesisConfig::default()).unwrap();
        assert!(with.regenerated[0] >= 1);
        let without = synthesize(
            &[bb],
            &[],
            &[],
            &SynthesisConfig {
                regeneration: None,
                ..SynthesisConfig::default()
            },
        )
        .unwrap();
        assert_eq!(without.regenerated[0], 0);
    }
}
