//! Off-chip memory tier assignment (§7: "Significantly larger savings in
//! energy are expected when this network flow technique is applied to
//! offchip memory, where energy dissipation of memory accesses is several
//! orders of magnitude higher … than the onchip memory accesses").
//!
//! Given a solved allocation, the memory-resident variables are partitioned
//! between a **capacity-limited on-chip memory** and an unbounded off-chip
//! memory — again as a min-cost flow: one unit of flow is one on-chip
//! storage location, variables chained along a flow path time-share that
//! location, and each variable's arc carries the (negative) energy delta of
//! serving its memory traffic on-chip instead of off-chip. The optimum
//! simultaneously selects *which* variables come on-chip and *where* they
//! live — the same shape as the paper's core formulation, one level down
//! the hierarchy.

use crate::allocator::Allocation;
use crate::events::trace_var_carried;
use crate::pipeline::{solve_chain_flow, ChainFlowSpec, PipelineCx};
use crate::problem::AllocationProblem;
use crate::CoreError;
use lemra_energy::MicroEnergy;
use lemra_ir::{Tick, VarId};
use std::collections::HashMap;

/// Per-access energies of the off-chip memory, in the same units as
/// [`EnergyModel`](lemra_energy::EnergyModel) (one 16-bit add = 1).
///
/// Defaults follow the published ordering — ref \[14\] measured an off-chip
/// *transfer* alone at 11 units on top of the access itself, and refs
/// \[2, 19\] put full off-chip accesses one to two orders of magnitude above
/// on-chip — modelled here as 30/60 units (read/write).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffchipModel {
    /// Off-chip read energy.
    pub read: f64,
    /// Off-chip write energy.
    pub write: f64,
}

impl Default for OffchipModel {
    fn default() -> Self {
        Self {
            read: 30.0,
            write: 60.0,
        }
    }
}

/// Result of the tier assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredAssignment {
    /// On-chip address per variable that won a slot.
    pub onchip: HashMap<VarId, u32>,
    /// Variables relegated to off-chip memory.
    pub offchip: Vec<VarId>,
    /// On-chip locations actually used (≤ the given capacity).
    pub onchip_locations: u32,
    /// Total static energy with the tiering applied (register traffic plus
    /// per-tier memory traffic).
    pub tiered_static_energy: f64,
    /// Static energy if *all* memory traffic went off-chip (the no-on-chip
    /// baseline this assignment is measured against).
    pub all_offchip_energy: f64,
}

impl TieredAssignment {
    /// Energy saved by the on-chip tier relative to all-off-chip.
    pub fn energy_saved(&self) -> f64 {
        self.all_offchip_energy - self.tiered_static_energy
    }
}

/// # Examples
///
/// ```
/// use lemra_core::{allocate, assign_memory_tiers, AllocationProblem, OffchipModel};
/// use lemra_ir::LifetimeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lifetimes = LifetimeTable::from_intervals(4, vec![(1, vec![4], false)])?;
/// let problem = AllocationProblem::new(lifetimes, 0);
/// let allocation = allocate(&problem)?;
/// let tiers = assign_memory_tiers(&problem, &allocation, 1, &OffchipModel::default())?;
/// assert!(tiers.energy_saved() > 0.0); // the one variable fits on-chip
/// # Ok(())
/// # }
/// ```
///
/// Assigns the memory-resident variables of `allocation` to an on-chip
/// memory with `onchip_capacity` storage locations; everything else goes
/// off-chip.
///
/// # Errors
///
/// Returns [`CoreError::Flow`] on internal solver failures (the formulation
/// is always feasible: zero flow sends everything off-chip).
pub fn assign_memory_tiers(
    problem: &AllocationProblem,
    allocation: &Allocation,
    onchip_capacity: u32,
    offchip: &OffchipModel,
) -> Result<TieredAssignment, CoreError> {
    assign_memory_tiers_with(
        &mut PipelineCx::new(),
        problem,
        allocation,
        onchip_capacity,
        offchip,
    )
}

/// [`assign_memory_tiers`] composed onto an existing [`PipelineCx`] (shared
/// backend, cumulative counters).
pub(crate) fn assign_memory_tiers_with(
    cx: &mut PipelineCx,
    problem: &AllocationProblem,
    allocation: &Allocation,
    onchip_capacity: u32,
    offchip: &OffchipModel,
) -> Result<TieredAssignment, CoreError> {
    let seg = allocation.segmentation();
    // Memory residents with their traffic and residency intervals.
    struct Resident {
        var: VarId,
        reads: u32,
        writes: u32,
        interval: (Tick, Tick),
    }
    let mut residents: Vec<Resident> = Vec::new();
    let mut reg_energy = MicroEnergy::ZERO;
    for v in 0..problem.lifetimes.len() {
        let var = VarId(v as u32);
        let t = trace_var_carried(seg, allocation.placements(), var, problem.carry_of(var));
        reg_energy += problem.energy.e_reg_read().scale(i64::from(t.reg_reads))
            + problem.energy.e_reg_write().scale(i64::from(t.reg_writes));
        if let Some(interval) = t.memory_residency {
            residents.push(Resident {
                var,
                reads: t.mem_reads,
                writes: t.mem_writes,
                interval,
            });
        }
    }

    let onchip_read = problem.energy.e_mem_read().as_units();
    let onchip_write = problem.energy.e_mem_write().as_units();
    let traffic_energy = |r: &Resident, read: f64, write: f64| {
        f64::from(r.reads) * read + f64::from(r.writes) * write
    };
    let all_offchip_energy = reg_energy.as_units()
        + residents
            .iter()
            .map(|r| traffic_energy(r, offchip.read, offchip.write))
            .sum::<f64>();

    if residents.is_empty() || onchip_capacity == 0 {
        return Ok(TieredAssignment {
            onchip: HashMap::new(),
            offchip: residents.iter().map(|r| r.var).collect(),
            onchip_locations: 0,
            tiered_static_energy: all_offchip_energy,
            all_offchip_energy,
        });
    }

    // Min-cost flow: one flow unit = one on-chip location. Bringing a
    // variable on-chip saves the off-chip premium, so its arc carries the
    // negated saving.
    let intervals: Vec<(Tick, Tick)> = residents.iter().map(|r| r.interval).collect();
    let item_cost: Vec<i64> = residents
        .iter()
        .map(|r| {
            let saving = traffic_energy(r, offchip.read, offchip.write)
                - traffic_energy(r, onchip_read, onchip_write);
            MicroEnergy::from_units(-saving).raw()
        })
        .collect();
    let source_cost = vec![0i64; residents.len()];
    let outcome = solve_chain_flow(
        cx,
        &ChainFlowSpec {
            intervals: &intervals,
            item_cost: &item_cost,
            source_cost: &source_cost,
            handoff_cost: &|_, _| 0,
            required: false,
            capacity: onchip_capacity,
        },
    )?;

    // On-chip chains = on-chip addresses.
    let mut onchip = HashMap::new();
    for (addr, chain) in outcome.chains.iter().enumerate() {
        for &i in chain {
            onchip.insert(residents[i].var, addr as u32);
        }
    }
    let next_addr = outcome.chains.len() as u32;

    let mut tiered = reg_energy.as_units();
    let mut offchip_vars = Vec::new();
    for r in &residents {
        if onchip.contains_key(&r.var) {
            tiered += traffic_energy(r, onchip_read, onchip_write);
        } else {
            tiered += traffic_energy(r, offchip.read, offchip.write);
            offchip_vars.push(r.var);
        }
    }

    Ok(TieredAssignment {
        onchip,
        offchip: offchip_vars,
        onchip_locations: next_addr,
        tiered_static_energy: tiered,
        all_offchip_energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allocate, AllocationProblem};
    use lemra_ir::LifetimeTable;

    fn memory_heavy_problem() -> (AllocationProblem, Allocation) {
        // Zero registers: everything is memory-resident.
        let table = LifetimeTable::from_intervals(
            10,
            vec![
                (1, vec![3, 5], false), // 3 accesses
                (2, vec![4], false),    // 2 accesses
                (5, vec![9], false),    // 2 accesses, reuses a slot after v0
                (6, vec![10], false),   // 2 accesses
            ],
        )
        .unwrap();
        let p = AllocationProblem::new(table, 0);
        let a = allocate(&p).unwrap();
        (p, a)
    }

    #[test]
    fn zero_capacity_sends_everything_offchip() {
        let (p, a) = memory_heavy_problem();
        let t = assign_memory_tiers(&p, &a, 0, &OffchipModel::default()).unwrap();
        assert!(t.onchip.is_empty());
        assert_eq!(t.offchip.len(), 4);
        assert_eq!(t.energy_saved(), 0.0);
    }

    #[test]
    fn ample_capacity_brings_everything_onchip() {
        let (p, a) = memory_heavy_problem();
        let t = assign_memory_tiers(&p, &a, 8, &OffchipModel::default()).unwrap();
        assert_eq!(t.onchip.len(), 4);
        assert!(t.offchip.is_empty());
        assert!(t.onchip_locations <= a.storage_locations());
        assert!(t.energy_saved() > 0.0);
    }

    #[test]
    fn one_location_prefers_the_heaviest_chain() {
        let (p, a) = memory_heavy_problem();
        let t = assign_memory_tiers(&p, &a, 1, &OffchipModel::default()).unwrap();
        // One location can chain compatible variables: v0 [1,5] then v3
        // [6,10] (or v2 [5,9] — overlaps v0's final read? v0 ends 5r, v2
        // starts 5w: compatible). The chain with the most traffic wins.
        assert!(!t.onchip.is_empty());
        assert_eq!(t.onchip_locations, 1);
        // All on-chip residents share the single address without overlap.
        let addrs: Vec<u32> = t.onchip.values().copied().collect();
        assert!(addrs.iter().all(|&x| x == 0));
        assert!(t.energy_saved() > 0.0);
    }

    #[test]
    fn savings_monotone_in_capacity() {
        let (p, a) = memory_heavy_problem();
        let mut prev = -1.0;
        for cap in 0..5 {
            let t = assign_memory_tiers(&p, &a, cap, &OffchipModel::default()).unwrap();
            assert!(
                t.energy_saved() >= prev - 1e-9,
                "capacity {cap} saved less than {prev}"
            );
            prev = t.energy_saved();
        }
    }

    #[test]
    fn onchip_chains_never_overlap() {
        let (p, a) = memory_heavy_problem();
        let t = assign_memory_tiers(&p, &a, 2, &OffchipModel::default()).unwrap();
        let mut by_addr: HashMap<u32, Vec<(Tick, Tick)>> = HashMap::new();
        for (&v, &addr) in &t.onchip {
            by_addr
                .entry(addr)
                .or_default()
                .push(a.memory_residency(v).expect("resident"));
        }
        for intervals in by_addr.values_mut() {
            intervals.sort();
            for w in intervals.windows(2) {
                assert!(w[1].0 > w[0].1, "overlapping on-chip residents");
            }
        }
    }
}
