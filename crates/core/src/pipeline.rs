//! The staged allocation pipeline.
//!
//! Every flow-backed computation in this crate is the same seven steps:
//!
//! ```text
//! Segment → Profile → BuildNetwork → Canon → Solve → Bind → Validate
//! ```
//!
//! lifetimes are segmented (§5.2), the maximum-density regions are profiled
//! (§5.1/§7), the flow network is emitted, a min-cost flow of the target
//! value is solved, the flow is bound back to domain objects (register
//! chains, placements, addresses), and the result is structurally audited
//! (under the `validate` feature). [`PipelineCx`] runs those stages with one
//! owned context: the configured [`Backend`], the warm-start
//! [`Reoptimizer`] and its retained network for sweeps, and per-stage
//! timing/flow counters. The free functions ([`allocate`](crate::allocate),
//! [`assign_memory_tiers`](crate::assign_memory_tiers),
//! [`reallocate_memory`](crate::reallocate_memory),
//! [`allocate_chain`](crate::allocate_chain),
//! [`synthesize`](crate::synthesize)) are thin wrappers that run a fresh
//! context; [`SweepAllocator`](crate::SweepAllocator) is a context with a
//! retained Solve stage.
//!
//! Counters are collected only when [`LemraConfig::timings`] is set (the
//! `--timings` flag of the drivers): the default path takes zero `Instant`
//! reads per solve, keeping the hot benchmarks unperturbed. Timed contexts
//! flush into a process-wide registry on drop; [`pipeline_stats`] reads the
//! aggregate for reports.

use crate::allocator::{extract_allocation, flow_error, Allocation};
use crate::build::{build_with_regions, profile_regions, refresh, BuiltNetwork};
use crate::problem::{AllocationProblem, GraphStyle};
use crate::segment::{Segmentation, SplitOptions};
use crate::CoreError;
use lemra_energy::RegisterEnergyKind;
use lemra_ir::{Tick, TickRange, VarId};
use lemra_netflow::{
    canonicalize, thread_solver_stats, Backend, CacheMode, CacheStamp, CanonicalInstance,
    FlowNetwork, FlowSolution, LemraConfig, NetflowError, NodeId, Reoptimizer, ResilientSolver,
    SolveBudget, SolverIncident, SolverStats,
};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One stage of the allocation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Lifetime segmentation (§5.2): split at multiple reads, restricted
    /// access times and manual cut points.
    Segment,
    /// Density profiling: the maximum-lifetime-density regions that gate
    /// hand-off arcs (§5.1/§7).
    Profile,
    /// Flow-network construction (§5.1), including re-pricing a retained
    /// network on warm sweep points.
    Build,
    /// Canonicalization of the built instance (content fingerprints +
    /// cross-request cache lookups); skipped (zero-cost) when
    /// [`LemraConfig::cache`] is off.
    Canon,
    /// The min-cost-flow solve itself.
    Solve,
    /// Binding the flow back to domain objects: path decomposition into
    /// chains, placements, left-edge addresses.
    Bind,
    /// Structural audit of the bound result (`validate` feature only;
    /// otherwise a no-op recorded at zero cost).
    Validate,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Segment,
        Stage::Profile,
        Stage::Build,
        Stage::Canon,
        Stage::Solve,
        Stage::Bind,
        Stage::Validate,
    ];

    /// Stable lower-case stage name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Segment => "segment",
            Stage::Profile => "profile",
            Stage::Build => "build",
            Stage::Canon => "canon",
            Stage::Solve => "solve",
            Stage::Bind => "bind",
            Stage::Validate => "validate",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated wall time, run count and peak heap footprint of one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTiming {
    /// Total nanoseconds spent in the stage.
    pub nanos: u64,
    /// Times the stage ran.
    pub runs: u64,
    /// Largest heap footprint (bytes, charged at buffer capacity) any one
    /// run of the stage retained — currently reported by the Build stage,
    /// whose counted two-pass construction makes capacity equal the exact
    /// result size. Zero for stages that don't report, and always zero when
    /// [`LemraConfig::timings`] is off.
    pub bytes: u64,
}

impl StageTiming {
    const ZERO: StageTiming = StageTiming {
        nanos: 0,
        runs: 0,
        bytes: 0,
    };
}

/// Per-stage timings plus solver counters of one pipeline context (or, via
/// [`pipeline_stats`], of every timed context the process has dropped).
///
/// Populated only when [`LemraConfig::timings`] is on; otherwise every field
/// stays zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    stages: [StageTiming; 7],
    /// Dijkstra rounds run and flow units pushed by the SSP-family solvers.
    pub solver: SolverStats,
    /// Solves answered from the reoptimizer's retained residual state.
    pub warm_solves: u64,
    /// Solves that (re)built solver state from scratch — cold pipeline
    /// solves and reoptimizer rebuilds alike.
    pub cold_solves: u64,
}

impl PipelineStats {
    const ZERO: PipelineStats = PipelineStats {
        stages: [StageTiming::ZERO; 7],
        solver: SolverStats {
            dijkstra_rounds: 0,
            pushed_units: 0,
            incidents: 0,
        },
        warm_solves: 0,
        cold_solves: 0,
    };

    /// Timing of one stage.
    pub fn stage(&self, stage: Stage) -> StageTiming {
        self.stages[stage.index()]
    }

    /// Total wall time across all stages, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    fn merge(&mut self, other: &PipelineStats) {
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            mine.nanos += theirs.nanos;
            mine.runs += theirs.runs;
            // Peak, not sum: the merged figure answers "how big did any one
            // build get", the same question a single context's counter does.
            mine.bytes = mine.bytes.max(theirs.bytes);
        }
        self.solver = self.solver + other.solver;
        self.warm_solves += other.warm_solves;
        self.cold_solves += other.cold_solves;
    }
}

static GLOBAL_STATS: Mutex<PipelineStats> = Mutex::new(PipelineStats::ZERO);

/// The process-wide aggregate of every dropped timed [`PipelineCx`] — what
/// the drivers print behind their `--timings` flag. All zeros unless
/// [`LemraConfig::timings`] was set before the work ran.
pub fn pipeline_stats() -> PipelineStats {
    *GLOBAL_STATS.lock().expect("stats registry poisoned")
}

/// The retained network of a warm pipeline plus the problem fields it is
/// valid for. Only *topology-affecting* fields participate in the match:
/// lifetimes and split determine the segmentation, style and relief arcs
/// select the arc set, and register-carried variables gate their first
/// segments' hand-offs and source hooks. Registers, energies and activity
/// only move costs and the bypass capacity, which [`refresh`] re-prices.
#[derive(Debug)]
struct RetainedNetwork {
    lifetimes: lemra_ir::LifetimeTable,
    split: SplitOptions,
    style: GraphStyle,
    relief_arcs: bool,
    carried_in_register: Vec<VarId>,
    segmentation: Segmentation,
    built: BuiltNetwork,
}

impl RetainedNetwork {
    fn covers(&self, problem: &AllocationProblem) -> bool {
        self.lifetimes == problem.lifetimes
            && self.split == problem.split
            && self.style == problem.style
            && self.relief_arcs == problem.relief_arcs
            && self.carried_in_register == problem.carried_in_register
    }
}

/// One run of the staged allocation pipeline: owns the backend choice, the
/// warm-start state and the per-stage counters.
///
/// A fresh context is cheap (no allocation until a stage runs); the plain
/// entry points create one per call. Hold a context across calls to get
/// warm-start reuse ([`PipelineCx::allocate_warm`]) and cumulative stats.
///
/// # Examples
///
/// ```
/// use lemra_core::{AllocationProblem, PipelineCx};
/// use lemra_ir::LifetimeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lifetimes =
///     LifetimeTable::from_intervals(5, vec![(1, vec![3], false), (3, vec![5], false)])?;
/// let mut cx = PipelineCx::new();
/// let allocation = cx.allocate(&AllocationProblem::new(lifetimes, 1))?;
/// assert_eq!(allocation.registers_used(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PipelineCx {
    backend: Backend,
    force_cold: bool,
    timings_on: bool,
    reopt: Reoptimizer,
    resilient: ResilientSolver,
    /// `(cost_scale, cost_unit, raw memory-read energy, raw register
    /// energy)` of the previous warm point: when the tie-break encoding or
    /// an operating point shifts between points, the reoptimizer's retained
    /// potentials are rescaled per arc class so they track the new costs'
    /// magnitudes instead of certifying last point's. Memory and register
    /// terms derate independently (distinct supply voltages), hence the two
    /// energy entries.
    prev_basis: Option<(i64, i64, i64, i64)>,
    cache: Option<RetainedNetwork>,
    stats: PipelineStats,
    /// Cross-request cache mode this context runs under (a snapshot of
    /// [`LemraConfig::cache`] unless a constructor overrode it).
    cache_mode: CacheMode,
    /// Structural class of the retained-network sweep state, set by
    /// [`Self::allocate_warm`]: the key under which [`Drop`] donates this
    /// context's reoptimizer back to the process-wide cache.
    warm_class: Option<lemra_netflow::Fingerprint>,
    /// Whether `reopt` holds state adopted from the cache that has not yet
    /// answered a solve (the first post-adoption warm solve is the one
    /// counted as a cross-request warm hit).
    adopted_pending: bool,
    /// Solves this context answered by exact-hit replay (live counter).
    exact_hits: u64,
    /// Solves this context answered by adopted warm state (live counter).
    warm_hits: u64,
}

impl Default for PipelineCx {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for PipelineCx {
    fn drop(&mut self) {
        // Sweep state outlives the context: donate the reoptimizer to its
        // structural class so the next sweep over the same topology starts
        // warm. The adopter's own snapshot diff re-verifies compatibility.
        if self.cache_mode == CacheMode::Warm && !self.force_cold && self.reopt.is_warm() {
            if let Some(class) = self.warm_class {
                crate::cache::donate_warm(class, std::mem::take(&mut self.reopt));
            }
        }
        if self.timings_on && self.stats != PipelineStats::ZERO {
            GLOBAL_STATS
                .lock()
                .expect("stats registry poisoned")
                .merge(&self.stats);
        }
    }
}

impl PipelineCx {
    /// A context configured from the process-wide [`LemraConfig`] snapshot
    /// (backend, cold-sweep override, timings).
    pub fn new() -> Self {
        let cfg = LemraConfig::get();
        Self::configured(cfg.backend, cfg.cold, cfg.timings, cfg.cache)
    }

    /// A context with an explicit backend; everything else from
    /// [`LemraConfig`].
    pub fn with_backend(backend: Backend) -> Self {
        let cfg = LemraConfig::get();
        Self::configured(backend, cfg.cold, cfg.timings, cfg.cache)
    }

    /// A context with an explicit cross-request cache mode; everything else
    /// from [`LemraConfig`]. Tests use this to exercise the cache without
    /// mutating the process-wide config snapshot.
    pub fn with_cache_mode(mode: CacheMode) -> Self {
        let cfg = LemraConfig::get();
        Self::configured(cfg.backend, cfg.cold, cfg.timings, mode)
    }

    /// A context with both an explicit backend and cache mode.
    pub fn with_backend_cache(backend: Backend, mode: CacheMode) -> Self {
        let cfg = LemraConfig::get();
        Self::configured(backend, cfg.cold, cfg.timings, mode)
    }

    fn configured(
        backend: Backend,
        force_cold: bool,
        timings_on: bool,
        cache_mode: CacheMode,
    ) -> Self {
        Self {
            backend,
            force_cold,
            timings_on,
            reopt: Reoptimizer::new(),
            resilient: ResilientSolver::new(backend),
            prev_basis: None,
            cache: None,
            stats: PipelineStats::ZERO,
            cache_mode,
            warm_class: None,
            adopted_pending: false,
            exact_hits: 0,
            warm_hits: 0,
        }
    }

    /// The backend this context solves with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// A fresh context with this one's configuration (backend, cold
    /// override, timings, cache mode) but none of its state — what the
    /// parallel block pipeline hands each worker thread, so speculative
    /// per-block solves run under exactly the settings the joining context
    /// would have used. The worker's counters flush to the process-wide
    /// registry when it drops, like any other timed context. The
    /// allocation server forks one context per worker thread the same way
    /// (and re-forks after containing a panicked request).
    pub fn fork(&self) -> Self {
        Self::configured(
            self.backend,
            self.force_cold,
            self.timings_on,
            self.cache_mode,
        )
    }

    /// This context's accumulated stage timings and solver counters (all
    /// zero unless [`LemraConfig::timings`] is on).
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Warm-start solves answered from retained residual state.
    pub fn warm_solves(&self) -> u64 {
        self.reopt.warm_solves()
    }

    /// Solves this context answered by replaying a cached solution from an
    /// exact fingerprint hit (live even without [`LemraConfig::timings`]).
    pub fn cache_exact_hits(&self) -> u64 {
        self.exact_hits
    }

    /// Solves this context answered by warm-repairing reoptimizer state
    /// adopted from the process-wide cache (live even without
    /// [`LemraConfig::timings`]).
    pub fn cache_warm_hits(&self) -> u64 {
        self.warm_hits
    }

    /// Warm-path solves that had to (re)build solver state from scratch.
    pub fn cold_solves(&self) -> u64 {
        self.reopt.cold_solves()
    }

    /// Cumulative effort counters of the warm-start engine's retained
    /// workspace (unlike [`Self::stats`], live even without
    /// [`LemraConfig::timings`]), with this context's absorbed-incident
    /// count folded into [`SolverStats::incidents`]. Diff snapshots to
    /// scope them: the `pushed_units` delta across a run of warm points is
    /// the flow the repairs actually moved — drained excess plus cancelled
    /// cycles.
    pub fn solver_stats(&self) -> SolverStats {
        let mut stats = self.reopt.stats();
        stats.incidents += self.resilient.incident_count();
        stats
    }

    /// Every solver failure this context absorbed via its fallback chain,
    /// oldest first (live even without [`LemraConfig::timings`]).
    pub fn incidents(&self) -> &[SolverIncident] {
        self.resilient.incidents()
    }

    /// Number of solver failures absorbed via the fallback chain.
    pub fn incident_count(&self) -> u64 {
        self.resilient.incident_count()
    }

    /// Installs a [`SolveBudget`] applied to every subsequent solve attempt
    /// (each link of the fallback chain gets the full budget), returning
    /// the previous one.
    pub fn set_solve_budget(&mut self, budget: SolveBudget) -> SolveBudget {
        self.resilient.set_budget(budget)
    }

    fn clock(&self) -> Option<Instant> {
        self.timings_on.then(Instant::now)
    }

    fn record(&mut self, stage: Stage, started: Option<Instant>) {
        if let Some(t0) = started {
            let slot = &mut self.stats.stages[stage.index()];
            slot.nanos += t0.elapsed().as_nanos() as u64;
            slot.runs += 1;
        }
    }

    /// Folds one run's retained heap footprint into the stage's peak-bytes
    /// counter. Free when timings are off: callers compute `bytes` from
    /// buffer capacities (no allocator interrogation), and the max-fold is
    /// skipped entirely.
    fn record_bytes(&mut self, stage: Stage, bytes: usize) {
        if self.timings_on {
            let slot = &mut self.stats.stages[stage.index()];
            slot.bytes = slot.bytes.max(bytes as u64);
        }
    }

    // ---- the individual stages -------------------------------------------

    /// Segment stage: lifetime segmentation per §5.2.
    pub(crate) fn segment(&mut self, problem: &AllocationProblem) -> Segmentation {
        let t0 = self.clock();
        let segmentation = Segmentation::new(&problem.lifetimes, &problem.split);
        self.record(Stage::Segment, t0);
        segmentation
    }

    /// Profile stage: maximum-density regions for the hand-off rule.
    pub(crate) fn profile(
        &mut self,
        problem: &AllocationProblem,
        segmentation: &Segmentation,
    ) -> Vec<TickRange> {
        let t0 = self.clock();
        let regions = profile_regions(problem, segmentation);
        self.record(Stage::Profile, t0);
        regions
    }

    /// BuildNetwork stage: emit the §5.1 network.
    pub(crate) fn build(
        &mut self,
        problem: &AllocationProblem,
        segmentation: &Segmentation,
        regions: &[TickRange],
    ) -> Result<BuiltNetwork, CoreError> {
        let t0 = self.clock();
        let built = build_with_regions(problem, segmentation, regions);
        self.record(Stage::Build, t0);
        if let Ok(b) = &built {
            self.record_bytes(Stage::Build, b.heap_bytes());
        }
        built
    }

    /// Solve stage, cold: route exactly `target` units `s → t` through the
    /// configured backend's fallback chain, on the calling thread's shared
    /// workspace.
    pub(crate) fn solve(
        &mut self,
        net: &FlowNetwork,
        s: lemra_netflow::NodeId,
        t: lemra_netflow::NodeId,
        target: i64,
    ) -> Result<FlowSolution, NetflowError> {
        let t0 = self.clock();
        let before = self
            .timings_on
            .then(|| (thread_solver_stats(), self.resilient.incident_count()));
        let solution = self.resilient.solve(net, s, t, target);
        if let Some((stats, incidents)) = before {
            self.stats.solver = self.stats.solver + (thread_solver_stats() - stats);
            self.stats.solver.incidents += self.resilient.incident_count() - incidents;
            self.stats.cold_solves += 1;
        }
        self.record(Stage::Solve, t0);
        solution
    }

    /// Validate stage: structural audit under the `validate` feature; a
    /// no-op otherwise.
    #[cfg_attr(not(feature = "validate"), allow(unused_variables))]
    pub(crate) fn validate(
        &mut self,
        problem: &AllocationProblem,
        allocation: &Allocation,
    ) -> Result<(), CoreError> {
        #[cfg(feature = "validate")]
        {
            let t0 = self.clock();
            crate::validate(problem, allocation)?;
            self.record(Stage::Validate, t0);
        }
        Ok(())
    }

    /// Canon stage: canonicalize the built instance for the cross-request
    /// cache. `None` (and zero recorded cost) when caching is off or the
    /// cold override is set — the default path is byte-identical to the
    /// pre-cache pipeline by construction.
    ///
    /// The result is memoized under the network's identity [`CacheStamp`]:
    /// re-solving the same unmutated network object (repeated requests over
    /// a shared built instance, the redundant-traffic shape) skips the
    /// `O(E log E)` canonicalization entirely. Any mutation bumps the
    /// network's version, so a stale memo entry can never be returned.
    fn canon_stage(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
    ) -> Option<Arc<CanonicalInstance>> {
        if self.cache_mode == CacheMode::Off || self.force_cold {
            return None;
        }
        let t0 = self.clock();
        let stamp = CacheStamp::of(net, s, t);
        let canon = crate::cache::lookup_canon(stamp, target).unwrap_or_else(|| {
            let canon = Arc::new(canonicalize(net, s, t, target));
            crate::cache::insert_canon(stamp, target, Arc::clone(&canon));
            canon
        });
        self.record(Stage::Canon, t0);
        Some(canon)
    }

    /// Solve stage with the cross-request cache in front: exact hits replay
    /// the cached optimum, warm mode additionally adopts (and returns)
    /// per-class reoptimizer state, misses fall through to [`Self::solve`]
    /// and populate the cache. The context's own sweep reoptimizer is never
    /// touched — adoption here runs through a checked-out instance, so
    /// [`Self::allocate_warm`]'s intra-sweep state cannot be clobbered by
    /// an unrelated chain-flow or block solve.
    ///
    /// Public so callers holding a raw built network (the benches, external
    /// drivers composing their own Build stage) can route a solve through
    /// the same cache front the composed runs use.
    ///
    /// # Errors
    ///
    /// Same as a cold solve through the configured backend's fallback
    /// chain: infeasibility, invalid endpoints, budget exhaustion.
    pub fn cached_solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
    ) -> Result<FlowSolution, NetflowError> {
        let Some(canon) = self.canon_stage(net, s, t, target) else {
            return self.solve(net, s, t, target);
        };
        if let Some((flows, value)) = crate::cache::lookup_exact(canon.fingerprint) {
            if let Some(sol) = replay_exact(net, s, t, &canon, &flows, value) {
                self.exact_hits += 1;
                crate::cache::note_exact_hit();
                return Ok(sol);
            }
        }
        let solution = if self.cache_mode == CacheMode::Warm {
            let mut reopt = crate::cache::adopt_warm(canon.class).unwrap_or_default();
            let adopted = reopt.is_warm();
            let warm_before = reopt.warm_solves();
            let t0 = self.clock();
            let before = self
                .timings_on
                .then(|| (reopt.stats(), reopt.warm_solves(), reopt.cold_solves()));
            let incidents_before = self.resilient.incident_count();
            #[cfg(feature = "fault-inject")]
            let result = {
                let mut primary = InjectOnAdopted {
                    inner: &mut reopt,
                    armed: adopted,
                };
                self.resilient
                    .solve_with_fallback(&mut primary, net, s, t, target)
            };
            #[cfg(not(feature = "fault-inject"))]
            let result = self
                .resilient
                .solve_with_fallback(&mut reopt, net, s, t, target);
            if self.resilient.incident_count() > incidents_before {
                // The (possibly adopted) warm primary failed mid-solve:
                // its residual may be mid-mutation, so drop the state
                // rather than donate it. The returned solution, if any,
                // came from a stateless fallback backend.
                reopt.reset();
            }
            if let Some((stats, warm, cold)) = before {
                self.stats.solver = self.stats.solver + (reopt.stats() - stats);
                self.stats.solver.incidents += self.resilient.incident_count() - incidents_before;
                self.stats.warm_solves += reopt.warm_solves() - warm;
                self.stats.cold_solves += reopt.cold_solves() - cold;
            }
            if adopted && reopt.warm_solves() > warm_before {
                self.warm_hits += 1;
                crate::cache::note_warm_hit();
            } else {
                crate::cache::note_miss();
            }
            crate::cache::donate_warm(canon.class, reopt);
            self.record(Stage::Solve, t0);
            result?
        } else {
            crate::cache::note_miss();
            self.solve(net, s, t, target)?
        };
        crate::cache::insert_exact(
            canon.fingerprint,
            canon.to_canonical_order(&solution.flows),
            solution.value,
        );
        Ok(solution)
    }

    // ---- composed runs ---------------------------------------------------

    /// Runs the full cold pipeline for one problem — exactly what the free
    /// [`allocate`](crate::allocate) does, with this context's backend and
    /// counters.
    ///
    /// # Errors
    ///
    /// Same as [`allocate`](crate::allocate).
    pub fn allocate(&mut self, problem: &AllocationProblem) -> Result<Allocation, CoreError> {
        let segmentation = self.segment(problem);
        let regions = self.profile(problem, &segmentation);
        let built = self.build(problem, &segmentation, &regions)?;
        // Variable boundaries in the node numbering are where the parallel
        // solver should cut regions, if it runs.
        self.resilient
            .set_region_hints(Some(built.region_hints.clone()));
        let solution = self
            .cached_solve(&built.net, built.s, built.t, i64::from(problem.registers))
            .map_err(|e| flow_error(problem, e))?;
        let t0 = self.clock();
        let allocation = extract_allocation(problem, segmentation, &built, &solution)?;
        self.record(Stage::Bind, t0);
        self.validate(problem, &allocation)?;
        Ok(allocation)
    }

    /// Runs the pipeline with a **retained** Solve stage: successive calls
    /// over topology-identical problems re-price the retained network in
    /// place and repair the previous optimum instead of re-solving —
    /// [`SweepAllocator`](crate::SweepAllocator)'s engine. Points whose
    /// topology changes, and every point when [`LemraConfig::cold`] is set,
    /// silently fall back to the cold pipeline.
    ///
    /// # Errors
    ///
    /// Same as [`allocate`](crate::allocate).
    pub fn allocate_warm(&mut self, problem: &AllocationProblem) -> Result<Allocation, CoreError> {
        if self.force_cold {
            return self.allocate(problem);
        }
        // Re-price the retained network in place when the topology carries
        // over from the previous point; rebuild (and recache) otherwise.
        let covered = self.cache.as_ref().is_some_and(|c| c.covers(problem));
        if covered {
            let t0 = self.clock();
            let cache = self.cache.as_mut().expect("covered implies cached");
            refresh(problem, &cache.segmentation, &mut cache.built)?;
            let bytes = cache.built.heap_bytes();
            self.record(Stage::Build, t0);
            self.record_bytes(Stage::Build, bytes);
        } else {
            let segmentation = self.segment(problem);
            let regions = self.profile(problem, &segmentation);
            let built = self.build(problem, &segmentation, &regions)?;
            self.cache = Some(RetainedNetwork {
                lifetimes: problem.lifetimes.clone(),
                split: problem.split.clone(),
                style: problem.style,
                relief_arcs: problem.relief_arcs,
                carried_in_register: problem.carried_in_register.clone(),
                segmentation,
                built,
            });
        }

        let canon = {
            // Detach the retained network for the stage call: `canon_stage`
            // needs `&mut self` for its clock while borrowing the net.
            let retained = self.cache.take().expect("cache populated above");
            let built = &retained.built;
            let canon =
                self.canon_stage(&built.net, built.s, built.t, i64::from(problem.registers));
            self.cache = Some(retained);
            if let Some(c) = &canon {
                // The Drop donation key: this context's reoptimizer state
                // certifies (an instance of) this structural class.
                self.warm_class = Some(c.class);
            }
            canon
        };
        if let Some(c) = &canon {
            let mut replayed = None;
            if let Some((flows, value)) = crate::cache::lookup_exact(c.fingerprint) {
                let cache = self.cache.as_ref().expect("cache populated above");
                let built = &cache.built;
                replayed = replay_exact(&built.net, built.s, built.t, c, &flows, value);
            }
            if let Some(solution) = replayed {
                // Exact hit: skip the solve entirely. The reoptimizer and
                // the rescale basis still describe the point it last
                // solved, so the next miss repairs from there as usual.
                self.exact_hits += 1;
                crate::cache::note_exact_hit();
                let t0 = self.clock();
                let cache = self.cache.as_ref().expect("cache populated above");
                let allocation = extract_allocation(
                    problem,
                    cache.segmentation.clone(),
                    &cache.built,
                    &solution,
                )?;
                self.record(Stage::Bind, t0);
                self.validate(problem, &allocation)?;
                return Ok(allocation);
            }
            // Cross-request adoption: a context that has not yet built
            // sweep state of its own starts from the class's donated
            // reoptimizer (intra-sweep warmth always wins over adoption).
            if self.cache_mode == CacheMode::Warm && !self.reopt.is_warm() {
                if let Some(adopted) = crate::cache::adopt_warm(c.class) {
                    self.reopt = adopted;
                    self.adopted_pending = true;
                }
            }
        }

        let t0 = self.clock();
        let reopt_before = self.timings_on.then(|| {
            (
                self.reopt.stats(),
                self.reopt.warm_solves(),
                self.reopt.cold_solves(),
            )
        });
        let cache = self.cache.as_ref().expect("cache populated above");
        let built = &cache.built;
        let target = i64::from(problem.registers);
        // Solver-unit costs are raw energies times scale/unit. The raw
        // energies split by arc class: chain, sink, segment and bypass
        // costs are pure memory-access deltas that derate with the memory
        // voltage, while hand-off and source arcs also carry the register
        // (Hamming or static access) term, which follows the register
        // voltage instead. When any factor moves between points, hint the
        // reoptimizer with a per-class ratio so its retained potentials
        // jump with their local costs, keeping the repair incremental; the
        // repair absorbs whatever residue the class approximation leaves.
        let mem = problem.energy.e_mem_read().raw();
        let reg = match problem.register_energy {
            // Half the bits of the 16-bit word switch — the paper's own
            // time-zero assumption — as the representative overwrite.
            RegisterEnergyKind::Activity => problem.energy.e_reg_activity(8.0).raw(),
            RegisterEnergyKind::Static => {
                (problem.energy.e_reg_write() + problem.energy.e_reg_read()).raw()
            }
        };
        let basis = (built.cost_scale, built.cost_unit, mem, reg);
        if let Some((prev_scale, prev_unit, prev_mem, prev_reg)) = self.prev_basis.replace(basis) {
            if (prev_scale, prev_unit, prev_mem, prev_reg) != basis && prev_mem > 0 && mem > 0 {
                let base = (built.cost_scale as f64 * prev_unit as f64)
                    / (prev_scale as f64 * built.cost_unit as f64);
                let mem_ratio = base * mem as f64 / prev_mem as f64;
                let reg_ratio = if prev_reg > 0 && reg > 0 {
                    base * reg as f64 / prev_reg as f64
                } else {
                    mem_ratio
                };
                // Mixed-class arcs blend the two ratios by the energy
                // magnitudes behind each part: roughly two memory terms
                // (exit + enter) against one register term.
                let mixed = (2.0 * prev_mem as f64 * mem_ratio + prev_reg as f64 * reg_ratio)
                    / (2.0 * prev_mem as f64 + prev_reg as f64);
                let mut ratio = vec![mem_ratio; built.net.arc_count()];
                for &(arc, _, _) in &built.handoff_of {
                    ratio[arc.index()] = mixed;
                }
                for &(arc, _) in &built.source_of {
                    ratio[arc.index()] = mixed;
                }
                // The reoptimizer queries by *snapshot* arc index; after a
                // topology change its retained snapshot can be larger than
                // the current network (the solve below falls back cold),
                // so out-of-table arcs get an unusable entry rather than a
                // panic.
                self.reopt
                    .costs_rescaled_per_arc(|i| ratio.get(i).copied().unwrap_or(f64::NAN));
            }
        }
        self.resilient
            .set_region_hints(Some(built.region_hints.clone()));
        let incidents_before = self.resilient.incident_count();
        let warm_solves_before = self.reopt.warm_solves();
        let solution = self.resilient.solve_with_fallback(
            &mut self.reopt,
            &built.net,
            built.s,
            built.t,
            target,
        );
        if self.resilient.incident_count() > incidents_before {
            // The warm primary failed mid-solve (possibly mid-mutation
            // after a contained panic): drop its retained residual state
            // and the rescale basis so the next point rebuilds cleanly.
            // The returned solution, if any, came from a stateless fallback
            // backend and is unaffected.
            self.reopt.reset();
            self.prev_basis = None;
        }
        let solution = solution.map_err(|e| flow_error(problem, e))?;
        #[cfg(feature = "validate")]
        {
            let cold = self
                .backend
                .solve(&built.net, built.s, built.t, target)
                .map_err(|e| flow_error(problem, e))?;
            assert_eq!(
                solution.cost, cold.cost,
                "warm-start objective diverged from cold solve"
            );
            assert_eq!(solution.value, cold.value);
        }
        if let Some((stats, warm, cold)) = reopt_before {
            self.stats.solver = self.stats.solver + (self.reopt.stats() - stats);
            self.stats.solver.incidents += self.resilient.incident_count() - incidents_before;
            self.stats.warm_solves += self.reopt.warm_solves() - warm;
            self.stats.cold_solves += self.reopt.cold_solves() - cold;
        }
        if let Some(c) = &canon {
            if self.adopted_pending && self.reopt.warm_solves() > warm_solves_before {
                self.warm_hits += 1;
                crate::cache::note_warm_hit();
            } else {
                crate::cache::note_miss();
            }
            crate::cache::insert_exact(
                c.fingerprint,
                c.to_canonical_order(&solution.flows),
                solution.value,
            );
        }
        self.adopted_pending = false;
        self.record(Stage::Solve, t0);

        let t0 = self.clock();
        let cache = self.cache.as_ref().expect("cache populated above");
        let allocation =
            extract_allocation(problem, cache.segmentation.clone(), &cache.built, &solution)?;
        self.record(Stage::Bind, t0);
        self.validate(problem, &allocation)?;
        Ok(allocation)
    }
}

// ---- the shared interval-chain flow --------------------------------------

/// A family of time-intervaled items to be chained through storage
/// locations by a min-cost flow — the shape shared by the off-chip tier
/// assignment ([`assign_memory_tiers`](crate::assign_memory_tiers)) and the
/// second-stage memory re-allocation
/// ([`reallocate_memory`](crate::reallocate_memory)): one `w → r` node pair
/// per item, hand-off arcs between temporally compatible items, a zero-cost
/// bypass, and a flow of exactly `capacity` units.
pub(crate) struct ChainFlowSpec<'a> {
    /// Residency interval per item; item `i` can hand its location to `j`
    /// iff `intervals[i].1 < intervals[j].0`.
    pub intervals: &'a [(Tick, Tick)],
    /// Cost on item `i`'s `w → r` arc (e.g. the negated on-chip saving).
    pub item_cost: &'a [i64],
    /// Cost of starting a chain at item `i` (the `s → w` hook-up).
    pub source_cost: &'a [i64],
    /// Cost of handing a location from item `i` to item `j`.
    pub handoff_cost: &'a dyn Fn(usize, usize) -> i64,
    /// When true, every item *must* be chained (unit lower bound on its
    /// arc); when false, the flow selects the profitable subset.
    pub required: bool,
    /// Locations available: the flow value and the bypass capacity.
    pub capacity: u32,
}

/// Chains extracted from a solved [`ChainFlowSpec`].
pub(crate) struct ChainFlowOutcome {
    /// Items per chain, in hand-off order; the chain index is the storage
    /// address. Items absent from every chain were left unselected.
    pub chains: Vec<Vec<usize>>,
}

/// Builds, solves and binds one interval-chain flow on `cx`.
pub(crate) fn solve_chain_flow(
    cx: &mut PipelineCx,
    spec: &ChainFlowSpec<'_>,
) -> Result<ChainFlowOutcome, CoreError> {
    let n = spec.intervals.len();
    debug_assert_eq!(spec.item_cost.len(), n);
    debug_assert_eq!(spec.source_cost.len(), n);

    let t0 = cx.clock();
    // Enumerate hand-off pairs up front: their count sets the tie-break
    // scale below.
    let mut pairs: Vec<(usize, usize, i64)> = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && spec.intervals[i].1 < spec.intervals[j].0 {
                pairs.push((i, j, (spec.handoff_cost)(i, j)));
            }
        }
    }
    // Equal-raw-cost optima must resolve the same way on every backend —
    // and toward maximal chaining (fewest storage locations), like the main
    // network's preferred-arc bias: scale raw costs by one more than the
    // total available hand-off bonus and discount each hand-off arc by one.
    // A one-quantum raw gap then still dominates any bonus sum. Skipped
    // (scale 1, no bias) if the scaled cost mass could overflow.
    let raw_mass = spec
        .item_cost
        .iter()
        .chain(spec.source_cost)
        .map(|c| c.abs())
        .chain(pairs.iter().map(|&(_, _, c)| c.abs()))
        .fold(0i64, i64::saturating_add);
    let candidate = pairs.len() as i64 + 1;
    let scale = match raw_mass.checked_mul(candidate) {
        Some(mass) if mass < i64::MAX / 8 => candidate,
        _ => 1,
    };
    let bias = i64::from(scale > 1);

    let mut net = FlowNetwork::new();
    let s = net.add_node();
    let t = net.add_node();
    let mut item_arc = Vec::with_capacity(n);
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let w = net.add_node();
        let r = net.add_node();
        item_arc.push(net.add_arc_bounded(
            w,
            r,
            i64::from(spec.required),
            1,
            spec.item_cost[i] * scale,
        )?);
        net.add_arc(s, w, 1, spec.source_cost[i] * scale)?;
        net.add_arc(r, t, 1, 0)?;
        nodes.push((w, r));
    }
    let mut handoffs: Vec<(lemra_netflow::ArcId, usize, usize)> = Vec::new();
    for &(i, j, cost) in &pairs {
        let arc = net.add_arc(nodes[i].1, nodes[j].0, 1, cost * scale - bias)?;
        handoffs.push((arc, i, j));
    }
    net.add_arc(s, t, i64::from(spec.capacity), 0)?;
    cx.record(Stage::Build, t0);
    cx.record_bytes(Stage::Build, net.heap_bytes());

    // This network's node numbering has nothing to do with any previously
    // installed allocation-network hints; drop them rather than let the
    // parallel solver cut at stale boundaries.
    cx.resilient.set_region_hints(None);
    let sol = cx
        .cached_solve(&net, s, t, i64::from(spec.capacity))
        .map_err(|e| match e {
            NetflowError::Infeasible { required, achieved } => CoreError::TooFewRegisters {
                registers: spec.capacity,
                shortfall: required - achieved,
            },
            other => CoreError::Flow(other),
        })?;

    let t0 = cx.clock();
    let mut successor: Vec<Option<usize>> = vec![None; n];
    let mut has_pred = vec![false; n];
    for &(arc, i, j) in &handoffs {
        if sol.flow(arc) == 1 {
            successor[i] = Some(j);
            has_pred[j] = true;
        }
    }
    let selected: Vec<bool> = item_arc.iter().map(|&a| sol.flow(a) == 1).collect();
    let mut chains = Vec::new();
    for start in 0..n {
        if !selected[start] || has_pred[start] {
            continue;
        }
        let mut chain = Vec::new();
        let mut cur = Some(start);
        while let Some(i) = cur {
            debug_assert!(selected[i], "flow chains only visit selected items");
            chain.push(i);
            cur = successor[i];
        }
        chains.push(chain);
    }
    cx.record(Stage::Bind, t0);
    Ok(ChainFlowOutcome { chains })
}

/// Fault-injection-only primary wrapper for the warm cache path: a planned
/// `cache`-qualified panic (`LEMRA_FAULT=panic@0:cache`) fires inside the
/// **adopted** (cache-hit) solve attempt, within the resilient chain's own
/// per-attempt containment — so the injected failure exercises the genuine
/// degradation path: incident recorded, stateless fallback re-solves cold,
/// and [`PipelineCx::cached_solve`] drops the poisoned adopted state
/// instead of donating it back. Non-adopted (miss) solves never consult
/// the plan, keeping the fault aimed at a real cache hit.
#[cfg(feature = "fault-inject")]
struct InjectOnAdopted<'a> {
    inner: &'a mut Reoptimizer,
    armed: bool,
}

#[cfg(feature = "fault-inject")]
impl lemra_netflow::McfSolver for InjectOnAdopted<'_> {
    fn name(&self) -> &'static str {
        lemra_netflow::McfSolver::name(self.inner)
    }

    fn solve(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut lemra_netflow::SolverWorkspace,
    ) -> Result<FlowSolution, NetflowError> {
        if self.armed && lemra_netflow::maybe_inject_cache() {
            panic!("injected fault: panic in adopted cache-hit solve");
        }
        lemra_netflow::McfSolver::solve(self.inner, net, s, t, target, ws)
    }

    fn solve_budgeted(
        &mut self,
        net: &FlowNetwork,
        s: NodeId,
        t: NodeId,
        target: i64,
        ws: &mut lemra_netflow::SolverWorkspace,
        budget: SolveBudget,
    ) -> Result<FlowSolution, NetflowError> {
        if self.armed && lemra_netflow::maybe_inject_cache() {
            panic!("injected fault: panic in adopted cache-hit solve");
        }
        lemra_netflow::McfSolver::solve_budgeted(self.inner, net, s, t, target, ws, budget)
    }
}

/// Replays a cached canonical-order flow onto `net` through `canon`'s
/// permutation and re-validates the result against the live network, so a
/// fingerprint collision (or corrupted entry) degrades to a miss, never to
/// a wrong answer. Panics inside the replay — the fault-injection hook, or
/// a permutation/length bug — are contained here and also degrade to a
/// miss, which sends the caller down the ordinary cold path.
fn replay_exact(
    net: &FlowNetwork,
    s: NodeId,
    t: NodeId,
    canon: &CanonicalInstance,
    canonical_flows: &[i64],
    value: i64,
) -> Option<FlowSolution> {
    if canonical_flows.len() != canon.arc_count() {
        return None;
    }
    let replay = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        #[cfg(feature = "fault-inject")]
        if lemra_netflow::maybe_inject_cache() {
            panic!("injected fault: cache-hit replay");
        }
        let flows = canon.from_canonical_order(canonical_flows);
        let mut sol = FlowSolution {
            flows,
            value,
            cost: 0,
        };
        sol.cost = sol.recompute_cost(net);
        sol
    }));
    let sol = replay.ok()?;
    lemra_netflow::validate(net, s, t, &sol).ok()?;
    Some(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemra_ir::LifetimeTable;

    fn problem() -> AllocationProblem {
        let table =
            LifetimeTable::from_intervals(6, vec![(1, vec![3], false), (3, vec![6], false)])
                .unwrap();
        AllocationProblem::new(table, 1)
    }

    #[test]
    fn staged_run_matches_free_allocate() {
        let p = problem();
        let mut cx = PipelineCx::new();
        let staged = cx.allocate(&p).unwrap();
        let free = crate::allocate(&p).unwrap();
        assert_eq!(staged.placements(), free.placements());
        assert_eq!(staged.flow_cost(), free.flow_cost());
    }

    #[test]
    fn every_backend_allocates_identically() {
        // The tie-break transform makes the optimum unique, so all four
        // algorithms must commit the same placements, not just the same
        // objective.
        let p = problem();
        let reference = crate::allocate(&p).unwrap();
        for backend in Backend::ALL.into_iter().chain([Backend::Auto]) {
            let mut cx = PipelineCx::with_backend(backend);
            assert_eq!(cx.backend(), backend);
            let a = cx.allocate(&p).unwrap();
            assert_eq!(a.placements(), reference.placements(), "{backend}");
            assert_eq!(a.chains(), reference.chains(), "{backend}");
            assert_eq!(a.flow_cost(), reference.flow_cost(), "{backend}");
        }
    }

    #[test]
    fn warm_context_matches_cold_across_points() {
        use lemra_energy::EnergyModel;
        let table =
            LifetimeTable::from_intervals(6, vec![(1, vec![3], false), (3, vec![6], false)])
                .unwrap();
        let mut cx = PipelineCx::new();
        for (volts, regs) in [(3.3, 1u32), (2.4, 1), (1.8, 2)] {
            let p = AllocationProblem::new(table.clone(), regs)
                .with_energy(EnergyModel::default_16bit().with_memory_voltage(volts));
            let warm = cx.allocate_warm(&p).unwrap();
            let cold = crate::allocate(&p).unwrap();
            assert_eq!(warm.placements(), cold.placements());
            assert_eq!(warm.flow_cost(), cold.flow_cost());
        }
        assert!(cx.warm_solves() >= 1);
    }

    #[test]
    fn stats_stay_zero_without_timings() {
        // The default config has timings off: no Instant reads, no counter
        // traffic, nothing flushed to the registry.
        let p = problem();
        let mut cx = PipelineCx::new();
        cx.allocate(&p).unwrap();
        assert_eq!(cx.stats(), PipelineStats::ZERO);
        assert_eq!(cx.stats().stage(Stage::Solve).runs, 0);
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["segment", "profile", "build", "canon", "solve", "bind", "validate"]
        );
        assert_eq!(Stage::Solve.to_string(), "solve");
    }

    #[test]
    fn exact_hits_replay_byte_identical_reports_across_backends() {
        // A lifetime shape used by no other test, so the first solve below
        // is the process-wide cache's first sight of the instance.
        let table = LifetimeTable::from_intervals(
            11,
            vec![
                (1, vec![4], false),
                (2, vec![7, 9], false),
                (5, vec![11], false),
            ],
        )
        .unwrap();
        let p = AllocationProblem::new(table, 2);
        let cold = crate::allocate(&p).unwrap();
        for backend in Backend::ALL.into_iter().chain([Backend::Auto]) {
            let mut seed = PipelineCx::with_backend_cache(backend, CacheMode::Exact);
            let first = seed.allocate(&p).unwrap();
            assert_eq!(first.placements(), cold.placements(), "{backend}");
            let mut cx = PipelineCx::with_backend_cache(backend, CacheMode::Exact);
            let hit = cx.allocate(&p).unwrap();
            assert_eq!(cx.cache_exact_hits(), 1, "{backend} must replay, not solve");
            assert_eq!(hit.placements(), cold.placements(), "{backend}");
            assert_eq!(hit.chains(), cold.chains(), "{backend}");
            assert_eq!(hit.flow_cost(), cold.flow_cost(), "{backend}");
            for v in 0..3 {
                let v = lemra_ir::VarId(v);
                assert_eq!(hit.memory_address(v), cold.memory_address(v), "{backend}");
            }
        }
    }

    #[test]
    fn warm_hits_adopt_cross_request_state_and_match_cold_across_backends() {
        use lemra_energy::EnergyModel;
        let table = LifetimeTable::from_intervals(
            10,
            vec![
                (1, vec![3, 6], false),
                (2, vec![8], false),
                (4, vec![10], false),
            ],
        )
        .unwrap();
        for (i, backend) in Backend::ALL.into_iter().enumerate() {
            // Distinct voltages per backend keep every instance's *exact*
            // fingerprint fresh (forcing the solve) while the structural
            // class — and therefore the warm adoption path — is shared.
            let volts = 3.3 - 0.07 * i as f64;
            let base = AllocationProblem::new(table.clone(), 2)
                .with_energy(EnergyModel::default_16bit().with_memory_voltage(volts));
            let shifted = AllocationProblem::new(table.clone(), 2)
                .with_energy(EnergyModel::default_16bit().with_memory_voltage(volts - 0.5));
            {
                // The donor context solves and returns its reoptimizer to
                // the class slot via the immediate donate in cached_solve.
                let mut donor = PipelineCx::with_backend_cache(backend, CacheMode::Warm);
                donor.allocate(&base).unwrap();
            }
            let mut cx = PipelineCx::with_backend_cache(backend, CacheMode::Warm);
            let warm = cx.allocate(&shifted).unwrap();
            assert_eq!(
                cx.cache_warm_hits(),
                1,
                "{backend} must repair adopted state"
            );
            let cold = crate::allocate(&shifted).unwrap();
            assert_eq!(warm.placements(), cold.placements(), "{backend}");
            assert_eq!(warm.chains(), cold.chains(), "{backend}");
            assert_eq!(warm.flow_cost(), cold.flow_cost(), "{backend}");
        }
    }

    #[test]
    fn warm_sweep_second_pass_replays_exact_hits() {
        use lemra_energy::EnergyModel;
        let table = LifetimeTable::from_intervals(
            12,
            vec![
                (1, vec![5], false),
                (3, vec![9], false),
                (6, vec![12], false),
            ],
        )
        .unwrap();
        let points = [(3.2f64, 1u32), (2.6, 1), (2.0, 2)];
        let run = || {
            let mut cx = PipelineCx::with_cache_mode(CacheMode::Warm);
            let mut out = Vec::new();
            for (volts, regs) in points {
                let p = AllocationProblem::new(table.clone(), regs)
                    .with_energy(EnergyModel::default_16bit().with_memory_voltage(volts));
                out.push(cx.allocate_warm(&p).unwrap());
            }
            (cx.cache_exact_hits(), out)
        };
        let (_, first) = run();
        let (hits, second) = run();
        assert_eq!(hits, 3, "the repeat sweep must be answered from cache");
        for ((a, b), (volts, regs)) in first.iter().zip(&second).zip(points) {
            assert_eq!(a.placements(), b.placements());
            assert_eq!(a.flow_cost(), b.flow_cost());
            let p = AllocationProblem::new(table.clone(), regs)
                .with_energy(EnergyModel::default_16bit().with_memory_voltage(volts));
            let cold = crate::allocate(&p).unwrap();
            assert_eq!(b.placements(), cold.placements());
            assert_eq!(b.flow_cost(), cold.flow_cost());
        }
    }

    #[test]
    fn cache_off_contexts_never_touch_the_cache() {
        let p = problem();
        let mut cx = PipelineCx::with_cache_mode(CacheMode::Off);
        cx.allocate(&p).unwrap();
        cx.allocate_warm(&p).unwrap();
        assert_eq!(cx.cache_exact_hits(), 0);
        assert_eq!(cx.cache_warm_hits(), 0);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn replay_panic_degrades_to_a_byte_identical_cold_solve() {
        use lemra_netflow::FaultPlan;
        let table = LifetimeTable::from_intervals(
            13,
            vec![
                (2, vec![6], false),
                (4, vec![10], false),
                (7, vec![13], false),
            ],
        )
        .unwrap();
        let p = AllocationProblem::new(table, 2);
        let cold = crate::allocate(&p).unwrap();
        let mut seed = PipelineCx::with_cache_mode(CacheMode::Exact);
        seed.allocate(&p).unwrap();
        // Arm a panic inside the next cache-hit replay; the hit must
        // degrade to a miss and the cold path must commit the same bytes.
        let plan: FaultPlan = "panic@0:cache".parse().unwrap();
        plan.install();
        let mut cx = PipelineCx::with_cache_mode(CacheMode::Exact);
        let recovered = cx.allocate(&p).unwrap();
        FaultPlan::clear();
        assert_eq!(cx.cache_exact_hits(), 0, "the poisoned replay is not a hit");
        assert_eq!(recovered.placements(), cold.placements());
        assert_eq!(recovered.chains(), cold.chains());
        assert_eq!(recovered.flow_cost(), cold.flow_cost());
        // The fault fired once; a fresh context replays cleanly again.
        let mut cx = PipelineCx::with_cache_mode(CacheMode::Exact);
        let replayed = cx.allocate(&p).unwrap();
        assert_eq!(cx.cache_exact_hits(), 1);
        assert_eq!(replayed.placements(), cold.placements());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn adopted_warm_solve_panic_falls_back_cold_byte_identically() {
        use lemra_energy::EnergyModel;
        use lemra_netflow::FaultPlan;
        let table = LifetimeTable::from_intervals(
            14,
            vec![
                (1, vec![4], false),
                (3, vec![9], false),
                (6, vec![12], false),
                (8, vec![14], false),
            ],
        )
        .unwrap();
        let base = AllocationProblem::new(table.clone(), 2)
            .with_energy(EnergyModel::default_16bit().with_memory_voltage(2.9));
        let shifted = AllocationProblem::new(table, 2)
            .with_energy(EnergyModel::default_16bit().with_memory_voltage(2.3));
        let cold = crate::allocate(&shifted).unwrap();
        {
            // Donor populates the class slot the next context will adopt.
            let mut donor = PipelineCx::with_cache_mode(CacheMode::Warm);
            donor.allocate(&base).unwrap();
        }
        // Arm a panic inside the next adopted (cache-hit) solve: the
        // resilient chain must contain it, re-solve cold via a stateless
        // fallback, drop the poisoned state, and commit the same bytes.
        let plan: FaultPlan = "panic@0:cache".parse().unwrap();
        plan.install();
        let mut cx = PipelineCx::with_cache_mode(CacheMode::Warm);
        let recovered = cx.allocate(&shifted).unwrap();
        FaultPlan::clear();
        assert_eq!(cx.cache_warm_hits(), 0, "the panicked adoption is a miss");
        assert_eq!(recovered.placements(), cold.placements());
        assert_eq!(recovered.chains(), cold.chains());
        assert_eq!(recovered.flow_cost(), cold.flow_cost());
    }

    #[test]
    fn chain_flow_chains_compatible_items() {
        // Three items: 0 ends before 2 starts, 1 overlaps both ends.
        let intervals = [(Tick(1), Tick(3)), (Tick(2), Tick(6)), (Tick(4), Tick(7))];
        let zero = [0i64; 3];
        let outcome = solve_chain_flow(
            &mut PipelineCx::new(),
            &ChainFlowSpec {
                intervals: &intervals,
                item_cost: &[-10, -10, -10], // everything profitable
                source_cost: &zero,
                handoff_cost: &|_, _| 0,
                required: false,
                capacity: 2,
            },
        )
        .unwrap();
        assert_eq!(outcome.chains.len(), 2);
        let mut items: Vec<usize> = outcome.chains.iter().flatten().copied().collect();
        items.sort_unstable();
        assert_eq!(items, [0, 1, 2]);
        // 0 → 2 share a location; 1 rides alone.
        assert!(outcome.chains.iter().any(|c| c == &[0, 2]));
    }
}
